//! Quickstart: run the price-theory power manager on a TC2 big.LITTLE chip
//! with two tasks and watch the market settle.
//!
//! ```sh
//! cargo run --release -p ppm --example quickstart
//! ```

use ppm::core::config::PpmConfig;
use ppm::core::manager::tc2_ppm_system;
use ppm::platform::units::SimDuration;
use ppm::sched::Simulation;
use ppm::workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
use ppm::workload::task::{Priority, Task, TaskId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two applications with heartbeat QoS goals: a video encoder and an
    // option-pricing batch job.
    let tasks = vec![
        Task::new(
            TaskId(0),
            BenchmarkSpec::of(Benchmark::X264, Input::Large)?,
            Priority(2),
        ),
        Task::new(
            TaskId(1),
            BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large)?,
            Priority(1),
        ),
    ];

    // A TC2 chip (3×A7 + 2×A15) managed by the paper's PPM framework.
    let (sys, mgr) = tc2_ppm_system(tasks, PpmConfig::tc2());
    let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(2));

    println!("t[s]  power[W]  A7-level  A15  x264-hr  blackscholes-hr");
    for step in 1..=15 {
        sim.run_for(SimDuration::from_secs(2));
        let s = sim.system();
        let levels: Vec<String> = s
            .chip()
            .clusters()
            .iter()
            .map(|c| {
                if c.is_off() {
                    "off".to_string()
                } else {
                    format!("{}", c.point().frequency)
                }
            })
            .collect();
        println!(
            "{:>4}  {:>8.2}  {:>8}  {:>4}  {:>7.2}  {:>15.2}",
            step * 2,
            s.chip_power().value(),
            levels[0],
            levels[1],
            s.task(TaskId(0)).normalized_heart_rate(),
            s.task(TaskId(1)).normalized_heart_rate(),
        );
    }

    let m = sim.metrics();
    println!("\naverage power: {}", m.average_power());
    println!(
        "x264 QoS misses: {:.1}% of time",
        m.task(TaskId(0)).map_or(0.0, |t| t.miss_fraction()) * 100.0
    );
    println!(
        "market: {} (both tasks fit the LITTLE cluster, so the big cluster \
         stays power-gated)",
        sim.manager().market()
    );
    Ok(())
}
