//! A phone-like scenario: a video-call pipeline (encoder + motion tracking)
//! sharing the chip with background compute, under a battery-saver power
//! cap. The market migrates the heavy stages to the big cluster only when
//! the LITTLE cluster cannot hold them, and the TDP mechanism keeps the
//! chip inside the 4 W budget.
//!
//! ```sh
//! cargo run --release -p ppm --example video_pipeline
//! ```

use ppm::core::config::PpmConfig;
use ppm::core::manager::tc2_ppm_system;
use ppm::platform::core::CoreClass;
use ppm::platform::units::{SimDuration, Watts};
use ppm::sched::Simulation;
use ppm::workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
use ppm::workload::task::{Priority, Task, TaskId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The interactive pipeline runs at high priority; background jobs at 1.
    let tasks = vec![
        Task::new(
            TaskId(0),
            BenchmarkSpec::of(Benchmark::X264, Input::Native)?, // encoder
            Priority(4),
        ),
        Task::new(
            TaskId(1),
            BenchmarkSpec::of(Benchmark::Tracking, Input::FullHd)?, // tracker
            Priority(4),
        ),
        Task::new(
            TaskId(2),
            BenchmarkSpec::of(Benchmark::Blackscholes, Input::Native)?, // batch
            Priority(1),
        ),
        Task::new(
            TaskId(3),
            BenchmarkSpec::of(Benchmark::Swaptions, Input::Large)?, // batch
            Priority(1),
        ),
    ];

    let budget = Watts(4.0);
    let (sys, mgr) = tc2_ppm_system(tasks, PpmConfig::tc2_with_tdp(budget));
    let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
    sim.run_for(SimDuration::from_secs(60));

    let s = sim.system();
    println!("task placement after 60 s:");
    for id in s.task_ids() {
        let core = s.core_of(id);
        println!(
            "  {:<22} -> {} ({})",
            s.task(id).label(),
            core,
            s.chip().core(core).class()
        );
    }
    let on_big = s
        .task_ids()
        .iter()
        .filter(|&&t| s.chip().core(s.core_of(t)).class() == CoreClass::Big)
        .count();
    println!("\n{} of 4 tasks migrated to the big cluster", on_big);

    let m = sim.metrics();
    println!("average power: {} (budget {})", m.average_power(), budget);
    println!(
        "time above budget: {:.1}%",
        m.time_above_tdp.as_secs_f64() / m.total_time().as_secs_f64() * 100.0
    );
    for id in s.task_ids() {
        println!(
            "  {:<22} misses QoS {:>5.1}% of time (priority {})",
            s.task(id).label(),
            m.task(id).map_or(0.0, |t| t.miss_fraction()) * 100.0,
            s.task(id).priority().value()
        );
    }
    println!(
        "\nThe high-priority pipeline keeps its heart-rate goal; the \
         low-priority batch jobs absorb the scarcity under the cap."
    );
    Ok(())
}
