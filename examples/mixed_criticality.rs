//! Mixed criticality on one core: the §5.4 priority study as a runnable
//! demo. Two demanding tasks are pinned to a single LITTLE core (no load
//! balancing or migration), first at equal priority, then with one task
//! boosted — showing how allowances steer QoS under contention.
//!
//! ```sh
//! cargo run --release -p ppm --example mixed_criticality
//! ```

use ppm::core::config::PpmConfig;
use ppm::core::manager::PpmManager;
use ppm::platform::chip::Chip;
use ppm::platform::core::CoreId;
use ppm::platform::units::SimDuration;
use ppm::sched::{AllocationPolicy, Simulation, System};
use ppm::workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
use ppm::workload::task::{Priority, Task, TaskId};

fn run(swaptions_priority: u32) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut sys = System::new(Chip::tc2(), AllocationPolicy::Market);
    sys.add_task(
        Task::new(
            TaskId(0),
            BenchmarkSpec::of(Benchmark::Swaptions, Input::Native)?,
            Priority(swaptions_priority),
        ),
        CoreId(0),
    );
    sys.add_task(
        Task::new(
            TaskId(1),
            BenchmarkSpec::of(Benchmark::Bodytrack, Input::Native)?,
            Priority(1),
        ),
        CoreId(0),
    );
    let mgr = PpmManager::new(PpmConfig::tc2().without_lbt());
    let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
    sim.run_for(SimDuration::from_secs(120));
    let m = sim.metrics();
    Ok((
        m.task(TaskId(0)).map_or(0.0, |t| t.out_of_range_fraction()),
        m.task(TaskId(1)).map_or(0.0, |t| t.out_of_range_fraction()),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("swaptions + bodytrack pinned to one Cortex-A7, LBT disabled\n");
    println!("| priorities (swap:body) | swaptions outside goal | bodytrack outside goal |");
    println!("|---|---|---|");
    for prio in [1, 7] {
        let (swap, body) = run(prio)?;
        println!("| {prio}:1 | {:.1}% | {:.1}% |", swap * 100.0, body * 100.0);
    }
    println!(
        "\nWith equal priorities both tasks share the shortfall; boosting \
         swaptions to priority 7 multiplies its allowance, its bids win the \
         contested cycles, and bodytrack absorbs the misses — Figure 7 of \
         the paper."
    );
    Ok(())
}
