//! Thermal budget demo: the same heavy workload in a cool chassis and a
//! hot one, with the market enforcing a junction-temperature limit through
//! its money supply (the thermal extension over the paper's TDP proxy).
//!
//! ```sh
//! cargo run --release -p ppm --example thermal_budget
//! ```

use ppm::core::config::PpmConfig;
use ppm::core::manager::tc2_ppm_system;
use ppm::platform::thermal::{Celsius, ThermalModel, ThermalParams};
use ppm::platform::units::SimDuration;
use ppm::sched::Simulation;
use ppm::workload::sets::set_by_name;
use ppm::workload::task::Priority;

fn run(limit: bool) -> (f64, f64, f64) {
    let set = set_by_name("h1").expect("h1 exists");
    let config = if limit {
        PpmConfig::tc2().with_thermal_limit(Celsius(75.0), Celsius(82.0))
    } else {
        PpmConfig::tc2()
    };
    let (mut sys, mgr) = tc2_ppm_system(set.spawn(0, Priority::NORMAL), config);
    // A throttling phone chassis: high thermal resistance, fast response.
    sys.attach_thermal(ThermalModel::new(
        vec![
            ThermalParams {
                resistance: 18.0,
                time_constant: 3.0,
            };
            2
        ],
        Celsius(40.0),
        Celsius(100.0),
    ));
    let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
    sim.run_for(SimDuration::from_secs(90));
    let peak = sim.system().thermal().expect("attached").peak().value();
    let m = sim.metrics();
    (
        peak,
        m.average_power().value(),
        m.any_miss_fraction() * 100.0,
    )
}

fn main() {
    println!("heavy workload h1 in a hot chassis (ambient 40C, 18 C/W)\n");
    println!("| junction limit | peak temp | avg power | any-task miss |");
    println!("|---|---|---|---|");
    for limit in [false, true] {
        let (peak, power, miss) = run(limit);
        println!(
            "| {} | {peak:.1} C | {power:.2} W | {miss:.1}% |",
            if limit { "75/82 C" } else { "none" }
        );
    }
    println!(
        "\nWith the limit enabled the chip agent treats temperature\n\
         excursions exactly like TDP excursions: the money supply shrinks,\n\
         bids deflate, clusters step down, and the junction cools — at the\n\
         QoS price any thermal throttle exacts."
    );
}
