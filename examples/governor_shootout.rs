//! Governor shoot-out: PPM vs HPM vs HL on one workload set, printing the
//! paper's two headline metrics (QoS miss time and average power) side by
//! side. Pass a Table 6 set name (`l1`..`h3`) as the first argument.
//!
//! ```sh
//! cargo run --release -p ppm --example governor_shootout -- m1
//! ```

use ppm::baselines::hl::{HlConfig, HlManager};
use ppm::baselines::hpm::{HpmConfig, HpmManager};
use ppm::core::config::PpmConfig;
use ppm::core::manager::{place_on_little, PpmManager};
use ppm::platform::chip::Chip;
use ppm::platform::core::CoreId;
use ppm::platform::units::SimDuration;
use ppm::sched::{AllocationPolicy, PowerManager, RunMetrics, Simulation, System};
use ppm::workload::sets::{set_by_name, WorkloadSet};
use ppm::workload::task::Priority;

fn run<M: PowerManager>(set: &WorkloadSet, policy: AllocationPolicy, mgr: M) -> RunMetrics {
    let mut sys = System::new(Chip::tc2(), policy);
    for t in set.spawn(0, Priority::NORMAL) {
        sys.add_task(t, CoreId(0));
    }
    place_on_little(&mut sys);
    let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
    sim.run_for(SimDuration::from_secs(60));
    sim.into_system().into_metrics()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m1".to_string());
    let Some(set) = set_by_name(&name) else {
        eprintln!("unknown workload set `{name}` (try l1..l3, m1..m3, h1..h3)");
        std::process::exit(1);
    };
    println!("workload {set}\n");
    println!("| scheme | any-task miss | avg power | migrations (intra/inter) |");
    println!("|---|---|---|---|");
    let rows: Vec<(&str, RunMetrics)> = vec![
        (
            "PPM",
            run(
                &set,
                AllocationPolicy::Market,
                PpmManager::new(PpmConfig::tc2()),
            ),
        ),
        (
            "HPM",
            run(
                &set,
                AllocationPolicy::Market,
                HpmManager::new(HpmConfig::new()),
            ),
        ),
        (
            "HL",
            run(
                &set,
                AllocationPolicy::FairWeights,
                HlManager::new(HlConfig::new()),
            ),
        ),
    ];
    for (name, m) in rows {
        println!(
            "| {name} | {:.1}% | {} | {}/{} |",
            m.any_miss_fraction() * 100.0,
            m.average_power(),
            m.migrations_intra,
            m.migrations_inter
        );
    }
    println!(
        "\nThe shapes to look for (paper §5.3): HL burns the most power \
         everywhere and only wins QoS on light sets; PPM leads on medium \
         and heavy sets at a fraction of HL's power."
    );
}
