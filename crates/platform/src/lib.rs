//! # ppm-platform — big.LITTLE hardware substrate
//!
//! A software model of the ARM big.LITTLE evaluation platform used by
//! *"Price Theory Based Power Management for Heterogeneous Multi-Cores"*
//! (ASPLOS 2014): heterogeneous clusters behind per-cluster V-F regulators,
//! a calibrated power model with `hwmon`-style sensors, and the paper's
//! measured migration-cost ranges.
//!
//! The higher layers (`ppm-sched`, `ppm-core`, `ppm-baselines`) only interact
//! with hardware through the observables this crate provides — supply (MHz),
//! cluster power, and migration latency — which is exactly the interface the
//! paper's kernel-module agents had on the real TC2 board.
//!
//! ## Quick start
//!
//! ```
//! use ppm_platform::chip::Chip;
//! use ppm_platform::cluster::ClusterId;
//! use ppm_platform::units::SimTime;
//! use ppm_platform::vf::VfLevel;
//!
//! let mut chip = Chip::tc2();
//! // Ask the LITTLE cluster for its top frequency...
//! let top = chip.cluster(ClusterId(0)).table().max_level();
//! chip.cluster_mut(ClusterId(0)).request_level(top, SimTime::ZERO);
//! // ...the regulator takes a little while.
//! chip.tick(SimTime::from_millis(1));
//! assert_eq!(chip.cluster(ClusterId(0)).level(), top);
//! ```

#![warn(missing_docs)]

pub mod chip;
pub mod cluster;
pub mod core;
pub mod faults;
pub mod migration;
pub mod power;
pub mod thermal;
pub mod units;
pub mod vf;

pub use crate::chip::{Chip, ChipBuilder};
pub use crate::cluster::{Cluster, ClusterId, ClusterPowerState};
pub use crate::core::{CoreClass, CoreDescriptor, CoreId};
pub use crate::faults::{ActuationOutcome, FaultConfig, FaultPlan, FaultStats};
pub use crate::migration::MigrationModel;
pub use crate::power::{EnergyMeter, PowerModel};
pub use crate::thermal::{Celsius, ThermalModel, ThermalParams};
pub use crate::units::{
    Cycles, Joules, MegaHertz, MilliVolts, Money, Price, ProcessingUnits, SimDuration, SimTime,
    Watts,
};
pub use crate::vf::{VfLevel, VfPoint, VfTable};
