//! Strongly-typed quantities used throughout the platform model.
//!
//! The paper trades *Processing Units* (PU): one PU is one million processor
//! cycles per second, so a core clocked at 1000 MHz supplies 1000 PU. Time is
//! simulated at microsecond granularity. All quantities are newtypes
//! (C-NEWTYPE) so that, e.g., a power value can never be passed where a
//! frequency is expected.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Computational resource supply/demand in Processing Units.
///
/// One PU equals one million processor cycles per second; a core running at
/// `f` MHz supplies exactly `f` PU (see §2 *Supply Model* of the paper).
///
/// ```
/// use ppm_platform::units::{MegaHertz, ProcessingUnits};
/// let supply = ProcessingUnits::from(MegaHertz(1000));
/// assert_eq!(supply, ProcessingUnits(1000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ProcessingUnits(pub f64);

impl ProcessingUnits {
    /// Zero PU.
    pub const ZERO: ProcessingUnits = ProcessingUnits(0.0);

    /// Raw value in PU (million cycles per second).
    pub fn value(self) -> f64 {
        self.0
    }

    /// Cycles delivered over `d` at this sustained rate.
    ///
    /// ```
    /// use ppm_platform::units::{Cycles, ProcessingUnits, SimDuration};
    /// let c = ProcessingUnits(1000.0).cycles_over(SimDuration::from_millis(1));
    /// assert_eq!(c, Cycles(1_000_000.0));
    /// ```
    pub fn cycles_over(self, d: SimDuration) -> Cycles {
        Cycles(self.0 * d.as_micros() as f64)
    }

    /// The larger of two supplies.
    pub fn max(self, other: ProcessingUnits) -> ProcessingUnits {
        ProcessingUnits(self.0.max(other.0))
    }

    /// The smaller of two supplies.
    pub fn min(self, other: ProcessingUnits) -> ProcessingUnits {
        ProcessingUnits(self.0.min(other.0))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: ProcessingUnits, hi: ProcessingUnits) -> ProcessingUnits {
        ProcessingUnits(self.0.clamp(lo.0, hi.0))
    }

    /// True when the value is meaningfully positive (above float noise).
    pub fn is_positive(self) -> bool {
        self.0 > 1e-9
    }
}

impl From<MegaHertz> for ProcessingUnits {
    fn from(f: MegaHertz) -> Self {
        ProcessingUnits(f.0 as f64)
    }
}

impl fmt::Display for ProcessingUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}PU", self.0)
    }
}

impl Add for ProcessingUnits {
    type Output = ProcessingUnits;
    fn add(self, rhs: ProcessingUnits) -> ProcessingUnits {
        ProcessingUnits(self.0 + rhs.0)
    }
}

impl AddAssign for ProcessingUnits {
    fn add_assign(&mut self, rhs: ProcessingUnits) {
        self.0 += rhs.0;
    }
}

impl Sub for ProcessingUnits {
    type Output = ProcessingUnits;
    fn sub(self, rhs: ProcessingUnits) -> ProcessingUnits {
        ProcessingUnits(self.0 - rhs.0)
    }
}

impl SubAssign for ProcessingUnits {
    fn sub_assign(&mut self, rhs: ProcessingUnits) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for ProcessingUnits {
    type Output = ProcessingUnits;
    fn mul(self, rhs: f64) -> ProcessingUnits {
        ProcessingUnits(self.0 * rhs)
    }
}

impl Div<f64> for ProcessingUnits {
    type Output = ProcessingUnits;
    fn div(self, rhs: f64) -> ProcessingUnits {
        ProcessingUnits(self.0 / rhs)
    }
}

impl Div for ProcessingUnits {
    /// Ratio of two supplies (e.g. the supply/demand ratio used by `perf(M)`).
    type Output = f64;
    fn div(self, rhs: ProcessingUnits) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for ProcessingUnits {
    fn sum<I: Iterator<Item = ProcessingUnits>>(iter: I) -> ProcessingUnits {
        ProcessingUnits(iter.map(|p| p.0).sum())
    }
}

/// Clock frequency in MHz. Discrete V-F tables store these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MegaHertz(pub u32);

impl MegaHertz {
    /// Raw MHz value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

/// Supply voltage in millivolts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MilliVolts(pub u32);

impl MilliVolts {
    /// Voltage in volts as a float.
    pub fn volts(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for MilliVolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Raw value in watts.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Energy dissipated over `d` at this sustained power.
    pub fn energy_over(self, d: SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }

    /// The larger of two power values.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

/// Energy in joules, accumulated by [`crate::power::EnergyMeter`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Raw value in joules.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

/// Processor work in cycles.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cycles(pub f64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0.0);

    /// Raw cycle count.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The smaller of two cycle counts.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<f64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: f64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

/// Virtual money used in the market (§3 of the paper).
///
/// Money is created by the chip agent as *allowance* and spent by task agents
/// as *bids*. It is a plain real-valued quantity; negative balances are
/// forbidden by the agents, not by the type.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Money(pub f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Raw amount in virtual dollars.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Money, hi: Money) -> Money {
        Money(self.0.clamp(lo.0, hi.0))
    }

    /// True when the amount is meaningfully positive.
    pub fn is_positive(self) -> bool {
        self.0 > 1e-12
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}", self.0)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

/// Price per Processing Unit, in virtual dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Price(pub f64);

impl Price {
    /// Zero price.
    pub const ZERO: Price = Price(0.0);

    /// Price from total bids and supply: `P = Σb / S`.
    ///
    /// Returns [`Price::ZERO`] when supply is not positive.
    pub fn discover(total_bids: Money, supply: ProcessingUnits) -> Price {
        if supply.is_positive() {
            Price(total_bids.0 / supply.0)
        } else {
            Price::ZERO
        }
    }

    /// Raw dollars-per-PU value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Supply purchasable with `bid` at this price.
    ///
    /// Returns zero PU when the price is zero (an empty market).
    pub fn purchase(self, bid: Money) -> ProcessingUnits {
        if self.0 > 0.0 {
            ProcessingUnits(bid.0 / self.0)
        } else {
            ProcessingUnits::ZERO
        }
    }

    /// Grow by the tolerance factor: `P·(1+δ)` — Eq. 2 of the paper.
    pub fn inflated_by(self, delta: f64) -> Price {
        Price(self.0 * (1.0 + delta))
    }

    /// Shrink by the tolerance factor: `P·(1−δ)`.
    pub fn deflated_by(self, delta: f64) -> Price {
        Price(self.0 * (1.0 - delta))
    }

    /// True when the price is meaningfully positive.
    pub fn is_positive(self) -> bool {
        self.0 > 1e-15
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}/PU", self.0)
    }
}

impl Mul<ProcessingUnits> for Price {
    /// Cost of buying `rhs` PU at this price.
    type Output = Money;
    fn mul(self, rhs: ProcessingUnits) -> Money {
        Money(self.0 * rhs.0)
    }
}

/// Absolute simulated time since boot, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (boot).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since boot.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Length in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero-length duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pu_from_frequency_matches_paper_definition() {
        // "a core running at 1000MHz (or 350MHz) produces a supply of
        //  1000PUs (or 350PUs)"
        assert_eq!(ProcessingUnits::from(MegaHertz(1000)).value(), 1000.0);
        assert_eq!(ProcessingUnits::from(MegaHertz(350)).value(), 350.0);
    }

    #[test]
    fn pu_cycles_over_duration() {
        let pu = ProcessingUnits(500.0); // 500 M cycles/s
        let c = pu.cycles_over(SimDuration::from_millis(10));
        assert!((c.value() - 5_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn price_discovery_table1_round1() {
        // Table 1 round 1: bids $1 + $1, supply 300 PU -> P = 0.0066..
        let p = Price::discover(Money(2.0), ProcessingUnits(300.0));
        assert!((p.value() - 2.0 / 300.0).abs() < 1e-12);
        // each task purchases 150 PU
        let s = p.purchase(Money(1.0));
        assert!((s.value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn price_discovery_zero_supply_is_zero() {
        assert_eq!(
            Price::discover(Money(5.0), ProcessingUnits::ZERO),
            Price::ZERO
        );
        assert_eq!(Price::ZERO.purchase(Money(1.0)), ProcessingUnits::ZERO);
    }

    #[test]
    fn price_recursion_eq2_example() {
        // Paper: P=$10, delta=0.02, 3 levels -> $10.612
        let mut p = Price(10.0);
        for _ in 0..3 {
            p = p.inflated_by(0.02);
        }
        assert!((p.value() - 10.612_08).abs() < 1e-4);
    }

    #[test]
    fn power_energy_integration() {
        let e = Watts(2.0).energy_over(SimDuration::from_secs(3));
        assert_eq!(e, Joules(6.0));
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_micros(500);
        assert_eq!(t.as_micros(), 100_500);
        assert_eq!(
            t.since(SimTime::from_millis(100)),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn money_clamping() {
        let m = Money(5.0).clamp(Money(1.0), Money(3.0));
        assert_eq!(m, Money(3.0));
        assert!(Money(0.1).is_positive());
        assert!(!Money::ZERO.is_positive());
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn pu_sum_and_ratio() {
        let total: ProcessingUnits = [ProcessingUnits(100.0), ProcessingUnits(250.0)]
            .into_iter()
            .sum();
        assert_eq!(total, ProcessingUnits(350.0));
        assert!((ProcessingUnits(300.0) / ProcessingUnits(600.0) - 0.5).abs() < 1e-12);
    }
}
