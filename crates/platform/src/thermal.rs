//! Lumped RC thermal model.
//!
//! The paper manages a *thermal design power* budget — power is the proxy
//! the chip agent actuates on — and justifies the tolerance factor δ by the
//! cost of thermal cycling [Rosing et al.]. This module closes that loop
//! with the standard first-order lumped model used in such work:
//!
//! ```text
//! τ · dT/dt = T_amb + P · R_th − T
//! ```
//!
//! Each cluster is one RC node heated by its own power. Steady state is
//! `T_amb + P·R_th`; with the TC2 calibration the 8 W chip TDP corresponds
//! to roughly the 85 °C throttling point of contemporary mobile silicon,
//! making the power budget and the thermal limit consistent.

use std::fmt;

use crate::cluster::ClusterId;
use crate::units::{SimDuration, Watts};

/// Degrees Celsius.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl Celsius {
    /// Raw value in °C.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two temperatures.
    pub fn max(self, other: Celsius) -> Celsius {
        Celsius(self.0.max(other.0))
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}C", self.0)
    }
}

/// RC parameters of one thermal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance in °C/W.
    pub resistance: f64,
    /// Thermal time constant in seconds.
    pub time_constant: f64,
}

impl ThermalParams {
    /// Mobile-SoC-flavoured defaults: a cluster sustaining 4 W sits ~40 °C
    /// above ambient and settles within a few seconds.
    pub fn mobile() -> ThermalParams {
        ThermalParams {
            resistance: 10.0,
            time_constant: 4.0,
        }
    }
}

/// One first-order thermal node.
#[derive(Debug, Clone, Copy)]
struct Node {
    params: ThermalParams,
    temperature: Celsius,
}

/// Per-cluster lumped thermal model with a shared ambient.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    ambient: Celsius,
    critical: Celsius,
    nodes: Vec<Node>,
    peak: Celsius,
    time_above_critical: SimDuration,
}

impl ThermalModel {
    /// Default ambient temperature inside a phone chassis.
    pub const DEFAULT_AMBIENT: Celsius = Celsius(35.0);
    /// Default junction throttling point.
    pub const DEFAULT_CRITICAL: Celsius = Celsius(85.0);

    /// A model with `clusters` identical mobile nodes at ambient.
    pub fn mobile(clusters: usize) -> ThermalModel {
        ThermalModel::new(
            vec![ThermalParams::mobile(); clusters],
            Self::DEFAULT_AMBIENT,
            Self::DEFAULT_CRITICAL,
        )
    }

    /// A model with explicit per-cluster parameters.
    pub fn new(params: Vec<ThermalParams>, ambient: Celsius, critical: Celsius) -> ThermalModel {
        ThermalModel {
            ambient,
            critical,
            nodes: params
                .into_iter()
                .map(|p| Node {
                    params: p,
                    temperature: ambient,
                })
                .collect(),
            peak: ambient,
            time_above_critical: SimDuration::ZERO,
        }
    }

    /// Number of thermal nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are modelled.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// The throttling point.
    pub fn critical(&self) -> Celsius {
        self.critical
    }

    /// Advance all nodes by `dt` with the given per-cluster powers.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `powers.len()` differs from the node
    /// count.
    pub fn step(&mut self, powers: &[Watts], dt: SimDuration) {
        debug_assert_eq!(powers.len(), self.nodes.len());
        let dts = dt.as_secs_f64();
        let mut any_critical = false;
        for (node, &p) in self.nodes.iter_mut().zip(powers) {
            let steady = self.ambient.0 + p.value() * node.params.resistance;
            // Exact first-order response over the step (unconditionally
            // stable, unlike forward Euler for large dt/τ).
            let alpha = 1.0 - (-dts / node.params.time_constant).exp();
            node.temperature = Celsius(node.temperature.0 + alpha * (steady - node.temperature.0));
            self.peak = self.peak.max(node.temperature);
            any_critical |= node.temperature > self.critical;
        }
        if any_critical {
            self.time_above_critical += dt;
        }
    }

    /// Temperature of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no thermal node.
    pub fn temperature(&self, cluster: ClusterId) -> Celsius {
        self.nodes[cluster.0].temperature
    }

    /// Hottest node right now.
    pub fn hottest(&self) -> Celsius {
        self.nodes
            .iter()
            .map(|n| n.temperature)
            .fold(self.ambient, Celsius::max)
    }

    /// Highest temperature ever observed.
    pub fn peak(&self) -> Celsius {
        self.peak
    }

    /// Cumulative time any node spent above the critical point.
    pub fn time_above_critical(&self) -> SimDuration {
        self.time_above_critical
    }

    /// True when some node is above the throttling point.
    pub fn throttling(&self) -> bool {
        self.nodes.iter().any(|n| n.temperature > self.critical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heats_towards_the_steady_state() {
        let mut m = ThermalModel::mobile(1);
        // 4 W sustained: steady state 35 + 4*10 = 75 C.
        for _ in 0..100 {
            m.step(&[Watts(4.0)], SimDuration::from_millis(500));
        }
        let t = m.temperature(ClusterId(0));
        assert!((t.value() - 75.0).abs() < 0.5, "{t}");
        assert!(!m.throttling());
    }

    #[test]
    fn cools_back_to_ambient() {
        let mut m = ThermalModel::mobile(1);
        for _ in 0..100 {
            m.step(&[Watts(6.0)], SimDuration::from_millis(500));
        }
        for _ in 0..100 {
            m.step(&[Watts(0.0)], SimDuration::from_millis(500));
        }
        let t = m.temperature(ClusterId(0));
        assert!((t.value() - 35.0).abs() < 0.5, "{t}");
    }

    #[test]
    fn time_constant_sets_the_response_speed() {
        let mut m = ThermalModel::mobile(1);
        // After exactly one time constant (4 s), ~63% of the way there.
        m.step(&[Watts(4.0)], SimDuration::from_secs(4));
        let t = m.temperature(ClusterId(0));
        let expected = 35.0 + 0.632 * 40.0;
        assert!((t.value() - expected).abs() < 0.5, "{t}");
    }

    #[test]
    fn exceeding_critical_is_accounted() {
        let mut m = ThermalModel::new(vec![ThermalParams::mobile()], Celsius(35.0), Celsius(60.0));
        for _ in 0..40 {
            m.step(&[Watts(6.0)], SimDuration::from_secs(1));
        }
        assert!(m.throttling());
        assert!(m.time_above_critical() > SimDuration::from_secs(10));
        assert!(m.peak().value() > 90.0);
    }

    #[test]
    fn nodes_are_independent() {
        let mut m = ThermalModel::mobile(2);
        for _ in 0..50 {
            m.step(&[Watts(6.0), Watts(1.0)], SimDuration::from_secs(1));
        }
        assert!(m.temperature(ClusterId(0)) > m.temperature(ClusterId(1)));
        assert_eq!(m.hottest(), m.temperature(ClusterId(0)));
    }

    #[test]
    fn large_steps_are_stable() {
        // The exact exponential update must not overshoot even with
        // dt >> tau.
        let mut m = ThermalModel::mobile(1);
        m.step(&[Watts(4.0)], SimDuration::from_secs(1000));
        let t = m.temperature(ClusterId(0));
        assert!((t.value() - 75.0).abs() < 1e-6, "{t}");
    }
}
