//! Power model, power sensors and energy meters.
//!
//! The evaluation platform in the paper exposes per-cluster power sensors
//! through Linux `hwmon`; we reproduce the same observable — instantaneous
//! cluster power — from a classic CMOS model:
//!
//! ```text
//! P_core    = C_dyn · V² · f · u  +  k_leak · V          (while online)
//! P_cluster = Σ P_core  +  P_uncore                      (0 when gated)
//! ```
//!
//! where `u` is the core's utilization in `[0, 1]`. The default coefficients
//! are calibrated so the TC2 preset matches the paper's observations: the A7
//! cluster peaks at 2 W, the A15 cluster at 6 W, and the chip TDP is 8 W.

use std::fmt;

use crate::cluster::Cluster;
use crate::core::CoreClass;
use crate::units::{Joules, SimDuration, SimTime, Watts};
use crate::vf::VfPoint;

/// Per-class electrical coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerParams {
    /// Dynamic coefficient in W / (MHz · V²).
    pub dynamic_coeff: f64,
    /// Leakage coefficient in W / V (per core, while the cluster is online).
    pub leakage_coeff: f64,
}

/// Chip-level power model: per-class core coefficients plus per-class uncore
/// (interconnect, L2) static power.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    little: CorePowerParams,
    big: CorePowerParams,
    /// Static uncore power of an online LITTLE cluster.
    little_uncore: Watts,
    /// Static uncore power of an online big cluster.
    big_uncore: Watts,
}

impl PowerModel {
    /// Coefficients calibrated to the TC2 board of the paper (A7 cluster
    /// ≤ 2 W with three cores, A15 cluster ≤ 6 W with two cores).
    pub fn tc2() -> PowerModel {
        PowerModel {
            little: CorePowerParams {
                dynamic_coeff: 0.0004,
                leakage_coeff: 0.020,
            },
            big: CorePowerParams {
                dynamic_coeff: 0.0015,
                leakage_coeff: 0.100,
            },
            little_uncore: Watts(0.050),
            big_uncore: Watts(0.125),
        }
    }

    /// Build a custom model.
    pub fn new(
        little: CorePowerParams,
        big: CorePowerParams,
        little_uncore: Watts,
        big_uncore: Watts,
    ) -> PowerModel {
        PowerModel {
            little,
            big,
            little_uncore,
            big_uncore,
        }
    }

    /// Coefficients for `class`.
    pub fn params(&self, class: CoreClass) -> CorePowerParams {
        match class {
            CoreClass::Little => self.little,
            CoreClass::Big => self.big,
        }
    }

    /// Uncore static power of an online cluster of `class`.
    pub fn uncore(&self, class: CoreClass) -> Watts {
        match class {
            CoreClass::Little => self.little_uncore,
            CoreClass::Big => self.big_uncore,
        }
    }

    /// Instantaneous power of one online core of `class` at operating point
    /// `point` with utilization `util ∈ [0, 1]`.
    pub fn core_power(&self, class: CoreClass, point: VfPoint, util: f64) -> Watts {
        let p = self.params(class);
        let v = point.voltage.volts();
        let f = point.frequency.value() as f64;
        let dynamic = p.dynamic_coeff * v * v * f * util.clamp(0.0, 1.0);
        let leakage = p.leakage_coeff * v;
        Watts(dynamic + leakage)
    }

    /// Instantaneous power of a cluster given per-core utilizations.
    ///
    /// `utils` must have one entry per core of the cluster; a powered-off
    /// cluster draws nothing regardless of `utils`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `utils.len()` differs from the cluster's
    /// core count.
    pub fn cluster_power(&self, cluster: &Cluster, utils: &[f64]) -> Watts {
        debug_assert_eq!(
            utils.len(),
            cluster.core_count(),
            "one utilization per core"
        );
        if cluster.is_off() {
            return Watts::ZERO;
        }
        let point = cluster.point();
        let cores: Watts = utils
            .iter()
            .map(|&u| self.core_power(cluster.class(), point, u))
            .sum();
        cores + self.uncore(cluster.class())
    }

    /// Peak power of a cluster: all cores fully utilized at the top level.
    pub fn cluster_peak(&self, cluster: &Cluster) -> Watts {
        let top = cluster.table().max();
        let core = self.core_power(cluster.class(), top, 1.0);
        core * cluster.core_count() as f64 + self.uncore(cluster.class())
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::tc2()
    }
}

/// A sampled power reading, as a `hwmon`-style sensor would report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReading {
    /// Sample timestamp.
    pub at: SimTime,
    /// Instantaneous power.
    pub power: Watts,
}

impl fmt::Display for PowerReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.power, self.at)
    }
}

/// Integrates power over time into energy and tracks the running average.
///
/// ```
/// use ppm_platform::power::EnergyMeter;
/// use ppm_platform::units::{SimDuration, Watts};
///
/// let mut m = EnergyMeter::new();
/// m.record(Watts(2.0), SimDuration::from_secs(1));
/// m.record(Watts(4.0), SimDuration::from_secs(1));
/// assert_eq!(m.energy().value(), 6.0);
/// assert_eq!(m.average_power().value(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    energy: Joules,
    elapsed: SimDuration,
    peak: Watts,
}

impl EnergyMeter {
    /// A meter with no accumulated energy.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Accumulate `power` sustained for `dt`.
    pub fn record(&mut self, power: Watts, dt: SimDuration) {
        self.energy += power.energy_over(dt);
        self.elapsed += dt;
        self.peak = self.peak.max(power);
    }

    /// Total accumulated energy.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total integration time.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Energy divided by elapsed time; zero before any sample.
    pub fn average_power(&self) -> Watts {
        if self.elapsed.is_zero() {
            Watts::ZERO
        } else {
            Watts(self.energy.value() / self.elapsed.as_secs_f64())
        }
    }

    /// Highest instantaneous power observed.
    pub fn peak_power(&self) -> Watts {
        self.peak
    }

    /// Reset to the freshly-constructed state.
    pub fn reset(&mut self) {
        *self = EnergyMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;
    use crate::core::CoreId;
    use crate::units::{MegaHertz, MilliVolts};
    use crate::vf::{linear_table, VfLevel};

    fn a7_cluster() -> Cluster {
        Cluster::new(
            ClusterId(0),
            CoreClass::Little,
            vec![CoreId(0), CoreId(1), CoreId(2)],
            linear_table(MegaHertz(350), MegaHertz(1000), 8),
        )
    }

    fn a15_cluster() -> Cluster {
        Cluster::new(
            ClusterId(1),
            CoreClass::Big,
            vec![CoreId(3), CoreId(4)],
            linear_table(MegaHertz(500), MegaHertz(1200), 8),
        )
    }

    #[test]
    fn tc2_calibration_matches_paper_peaks() {
        // Paper §5.3: "the observed maximum power in A7 cluster and A15
        // cluster are 2W and 6W, respectively"; TDP of the platform is 8W.
        let m = PowerModel::tc2();
        let a7 = m.cluster_peak(&a7_cluster());
        let a15 = m.cluster_peak(&a15_cluster());
        assert!((a7.value() - 2.0).abs() < 0.1, "A7 peak {a7}");
        assert!((a15.value() - 6.0).abs() < 0.1, "A15 peak {a15}");
        assert!(((a7 + a15).value() - 8.0).abs() < 0.2, "chip peak");
    }

    #[test]
    fn power_rises_with_frequency_and_voltage() {
        let m = PowerModel::tc2();
        let lo = VfPoint::new(MegaHertz(350), MilliVolts(900));
        let hi = VfPoint::new(MegaHertz(1000), MilliVolts(1250));
        let p_lo = m.core_power(CoreClass::Little, lo, 1.0);
        let p_hi = m.core_power(CoreClass::Little, hi, 1.0);
        assert!(p_hi > p_lo);
        // Superlinear: V scales with f, so power grows faster than frequency.
        assert!(p_hi.value() / p_lo.value() > 1000.0 / 350.0);
    }

    #[test]
    fn idle_core_draws_only_leakage() {
        let m = PowerModel::tc2();
        let pt = VfPoint::new(MegaHertz(1000), MilliVolts(1250));
        let idle = m.core_power(CoreClass::Little, pt, 0.0);
        assert!((idle.value() - 0.020 * 1.25).abs() < 1e-9);
    }

    #[test]
    fn big_core_costs_more_than_little() {
        let m = PowerModel::tc2();
        let pt = VfPoint::new(MegaHertz(1000), MilliVolts(1250));
        assert!(
            m.core_power(CoreClass::Big, pt, 1.0) > m.core_power(CoreClass::Little, pt, 1.0) * 2.0
        );
    }

    #[test]
    fn gated_cluster_draws_nothing() {
        let m = PowerModel::tc2();
        let mut c = a15_cluster();
        c.power_off();
        assert_eq!(m.cluster_power(&c, &[1.0, 1.0]), Watts::ZERO);
    }

    #[test]
    fn cluster_power_scales_with_utilization() {
        let m = PowerModel::tc2();
        let mut c = a7_cluster();
        c.set_level_immediate(VfLevel(7));
        let idle = m.cluster_power(&c, &[0.0, 0.0, 0.0]);
        let half = m.cluster_power(&c, &[0.5, 0.5, 0.5]);
        let full = m.cluster_power(&c, &[1.0, 1.0, 1.0]);
        assert!(idle < half && half < full);
        // Dynamic part is linear in utilization.
        let d1 = half.value() - idle.value();
        let d2 = full.value() - half.value();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn meter_tracks_peak_and_reset() {
        let mut m = EnergyMeter::new();
        m.record(Watts(1.0), SimDuration::from_secs(2));
        m.record(Watts(5.0), SimDuration::from_secs(1));
        assert_eq!(m.peak_power(), Watts(5.0));
        assert_eq!(m.energy(), Joules(7.0));
        m.reset();
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.average_power(), Watts::ZERO);
    }
}
