//! Task migration cost model.
//!
//! §5.1 of the paper reports measured migration penalties on TC2:
//!
//! | path                | cost                         |
//! |---------------------|------------------------------|
//! | within big cluster  | 54 – 105 µs (by frequency)   |
//! | within LITTLE       | 71 – 167 µs                  |
//! | LITTLE → big        | 1.88 – 2.16 ms               |
//! | big → LITTLE        | 3.54 – 3.83 ms               |
//!
//! Costs fall as frequency rises (the migration code itself runs faster), so
//! the model interpolates linearly between the range endpoints using the
//! normalised position of the *destination* cluster's current V-F level.

use std::fmt;

use crate::cluster::Cluster;
use crate::core::CoreClass;
use crate::units::SimDuration;

/// A `[slowest, fastest]` latency range, interpolated by frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRange {
    /// Cost at the lowest frequency.
    pub at_min_freq: SimDuration,
    /// Cost at the highest frequency.
    pub at_max_freq: SimDuration,
}

impl CostRange {
    /// Construct a range from microsecond endpoints.
    pub const fn from_micros(at_min_freq: u64, at_max_freq: u64) -> CostRange {
        CostRange {
            at_min_freq: SimDuration(at_min_freq),
            at_max_freq: SimDuration(at_max_freq),
        }
    }

    /// Interpolate at normalised frequency `t ∈ [0, 1]` (0 = slowest clock).
    pub fn at(&self, t: f64) -> SimDuration {
        let t = t.clamp(0.0, 1.0);
        let lo = self.at_min_freq.as_micros() as f64;
        let hi = self.at_max_freq.as_micros() as f64;
        SimDuration::from_micros((lo + (hi - lo) * t).round() as u64)
    }
}

impl fmt::Display for CostRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.at_max_freq, self.at_min_freq)
    }
}

/// Migration cost model parameterised by the four TC2 paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationModel {
    within_little: CostRange,
    within_big: CostRange,
    little_to_big: CostRange,
    big_to_little: CostRange,
}

impl MigrationModel {
    /// The ranges measured in §5.1 of the paper.
    pub fn tc2() -> MigrationModel {
        MigrationModel {
            within_little: CostRange::from_micros(167, 71),
            within_big: CostRange::from_micros(105, 54),
            little_to_big: CostRange::from_micros(2160, 1880),
            big_to_little: CostRange::from_micros(3830, 3540),
        }
    }

    /// Build a custom model.
    pub fn new(
        within_little: CostRange,
        within_big: CostRange,
        little_to_big: CostRange,
        big_to_little: CostRange,
    ) -> MigrationModel {
        MigrationModel {
            within_little,
            within_big,
            little_to_big,
            big_to_little,
        }
    }

    /// The applicable cost range for a move between core classes.
    pub fn range(&self, from: CoreClass, to: CoreClass) -> CostRange {
        match (from, to) {
            (CoreClass::Little, CoreClass::Little) => self.within_little,
            (CoreClass::Big, CoreClass::Big) => self.within_big,
            (CoreClass::Little, CoreClass::Big) => self.little_to_big,
            (CoreClass::Big, CoreClass::Little) => self.big_to_little,
        }
    }

    /// Cost of migrating a task between two clusters given their current
    /// levels. Intra-cluster moves pass the same cluster twice.
    pub fn cost(&self, from: &Cluster, to: &Cluster) -> SimDuration {
        let t = to.table().normalized(to.level());
        self.range(from.class(), to.class()).at(t)
    }

    /// True when a move between these clusters crosses a cluster boundary
    /// (and therefore pays the expensive inter-cluster path).
    pub fn is_inter_cluster(from: &Cluster, to: &Cluster) -> bool {
        from.id() != to.id()
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel::tc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;
    use crate::core::CoreId;
    use crate::units::MegaHertz;
    use crate::vf::{linear_table, VfLevel};

    fn little() -> Cluster {
        Cluster::new(
            ClusterId(0),
            CoreClass::Little,
            vec![CoreId(0)],
            linear_table(MegaHertz(350), MegaHertz(1000), 8),
        )
    }

    fn big() -> Cluster {
        Cluster::new(
            ClusterId(1),
            CoreClass::Big,
            vec![CoreId(1)],
            linear_table(MegaHertz(500), MegaHertz(1200), 8),
        )
    }

    #[test]
    fn ranges_match_paper_endpoints() {
        let m = MigrationModel::tc2();
        let (l, b) = (little(), big());
        // Both clusters at the lowest level: the slow end of each range.
        assert_eq!(m.cost(&l, &b), SimDuration::from_micros(2160));
        assert_eq!(m.cost(&b, &l), SimDuration::from_micros(3830));
        assert_eq!(m.cost(&l, &l), SimDuration::from_micros(167));
        assert_eq!(m.cost(&b, &b), SimDuration::from_micros(105));
    }

    #[test]
    fn cost_falls_with_destination_frequency() {
        let m = MigrationModel::tc2();
        let l = little();
        let mut b = big();
        let slow = m.cost(&l, &b);
        b.set_level_immediate(VfLevel(7));
        let fast = m.cost(&l, &b);
        assert!(fast < slow);
        assert_eq!(fast, SimDuration::from_micros(1880));
    }

    #[test]
    fn inter_cluster_is_much_more_expensive_than_intra() {
        // The paper's LBT module invokes load balancing (intra) more often
        // than migration (inter) because of this gap.
        let m = MigrationModel::tc2();
        let (l, b) = (little(), big());
        let intra = m.cost(&l, &l);
        let inter = m.cost(&l, &b);
        assert!(inter.as_micros() > 10 * intra.as_micros());
        assert!(MigrationModel::is_inter_cluster(&l, &b));
        assert!(!MigrationModel::is_inter_cluster(&l, &l));
    }

    #[test]
    fn big_to_little_costs_more_than_little_to_big() {
        let m = MigrationModel::tc2();
        let (l, b) = (little(), big());
        assert!(m.cost(&b, &l) > m.cost(&l, &b));
    }

    #[test]
    fn interpolation_clamps() {
        let r = CostRange::from_micros(100, 50);
        assert_eq!(r.at(-1.0), SimDuration::from_micros(100));
        assert_eq!(r.at(2.0), SimDuration::from_micros(50));
        assert_eq!(r.at(0.5), SimDuration::from_micros(75));
    }
}
