//! Deterministic fault injection for the hardware substrate.
//!
//! Real TC2 deployments never see the clean observables the simulator
//! produces: `hwmon` power readings are quantised and noisy, sensor reads
//! get dropped or return stale registers, cpufreq transitions occasionally
//! fail or land late, and sched migrations can bounce. The paper's agents
//! were built to survive exactly that environment, so the reproduction
//! needs a way to recreate it — *reproducibly*, because the whole test
//! pyramid is built on byte-identical actuation tapes.
//!
//! A [`FaultPlan`] is a seeded stream of fault decisions. Given the same
//! seed and the same sequence of queries it produces the same perturbations
//! and the same actuation outcomes, so a faulted run is as replayable as a
//! clean one. The plan only knows platform vocabulary (watts, degrees,
//! cluster ids, V-F levels); the scheduler layer decides *where* to consult
//! it — observation faults at snapshot capture, actuation faults between
//! tape and apply — which keeps this crate free of any scheduling types.
//!
//! Two invariants the higher layers rely on:
//!
//! * **Observation faults never touch physics.** Only the values reported
//!   to managers are perturbed; the platform's true power and temperature
//!   are whatever the models compute. Auditors can therefore check physical
//!   invariants against the true state while managers fly on bad data.
//! * **Disabled means free.** A simulation without a `FaultPlan` does not
//!   pay a single branch or byte for this module.

use crate::cluster::ClusterId;
use crate::thermal::Celsius;
use crate::units::{SimTime, Watts};
use crate::vf::VfLevel;
use rand::{Rng, SeedableRng, StdRng};

/// Probabilities and magnitudes of every fault class, plus the seed.
///
/// All probabilities are per *query* (one power reading, one DVFS request,
/// one migration, one quantum's crash check). The defaults model a grumpy
/// but serviceable board; [`FaultConfig::harsh`] models one on its way to
/// RMA.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the decision stream; same seed, same faults.
    pub seed: u64,
    /// Relative standard deviation of Gaussian noise on power readings
    /// (0.03 = 3 % of the true value).
    pub power_noise_sigma: f64,
    /// Power sensor LSB; readings are rounded to multiples of this
    /// (`Watts(0.0)` disables quantisation). TC2's energy counters
    /// resolve roughly centiwatts.
    pub power_quantum: Watts,
    /// Probability a power read returns the previous reading instead of a
    /// fresh one (stale register).
    pub stale_reading_prob: f64,
    /// Probability a power read fails outright and reports zero.
    pub dropped_reading_prob: f64,
    /// Probability a temperature read returns a transient spike.
    pub thermal_spike_prob: f64,
    /// Magnitude of a thermal spike in °C (scaled by 0.5–1.5× per event).
    pub thermal_spike_magnitude: f64,
    /// Probability a DVFS request is silently lost by the regulator.
    pub dvfs_fail_prob: f64,
    /// Probability a DVFS request lands late instead of immediately.
    pub dvfs_defer_prob: f64,
    /// Maximum extra quanta a deferred DVFS request waits before landing.
    pub dvfs_defer_quanta_max: u32,
    /// Probability a migration request fails and leaves the task in place.
    pub migration_fail_prob: f64,
    /// Per-quantum probability that one running task crashes.
    pub task_crash_prob: f64,
    /// Ceiling on injected crashes per run (keeps workloads alive).
    pub max_task_crashes: u32,
    /// Probability (decided once per cluster, on its first read) that a
    /// cluster agent's observation clock drifts: its power readings then
    /// permanently lag the chip-wide capture by a fixed number of quanta.
    pub clock_drift_prob: f64,
    /// Maximum lag, in quanta, of a drifted cluster clock.
    pub clock_drift_quanta_max: u32,
    /// Probability (decided once, on the chip sensor's first read) that the
    /// *chip-level* observation clock drifts: every chip-wide power reading
    /// then lags the true capture by a fixed number of quanta. In a fleet
    /// this ring-delays a whole chip's delivered observations — its manager
    /// and its exchange bids fly on old data while the other chips stay
    /// current.
    pub chip_clock_drift_prob: f64,
    /// Maximum lag, in quanta, of a drifted chip clock.
    pub chip_clock_drift_quanta_max: u32,
    /// Per-quantum probability the executor dies mid-actuation: only a
    /// random prefix of the plan's actions reaches the hardware.
    pub partial_plan_prob: f64,
}

impl FaultConfig {
    /// A moderately unreliable board: a few percent sensor noise, rare
    /// drops, occasional actuation hiccups, crashes effectively disabled.
    pub fn with_seed(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            power_noise_sigma: 0.03,
            power_quantum: Watts(0.01),
            stale_reading_prob: 0.02,
            dropped_reading_prob: 0.01,
            thermal_spike_prob: 0.005,
            thermal_spike_magnitude: 15.0,
            dvfs_fail_prob: 0.05,
            dvfs_defer_prob: 0.10,
            dvfs_defer_quanta_max: 5,
            migration_fail_prob: 0.10,
            task_crash_prob: 0.0,
            max_task_crashes: 0,
            clock_drift_prob: 0.25,
            clock_drift_quanta_max: 2,
            chip_clock_drift_prob: 0.25,
            chip_clock_drift_quanta_max: 2,
            partial_plan_prob: 0.02,
        }
    }

    /// A board on its last legs: heavy noise, frequent actuation failures,
    /// and a couple of task crashes over a run.
    pub fn harsh(seed: u64) -> FaultConfig {
        FaultConfig {
            power_noise_sigma: 0.10,
            power_quantum: Watts(0.05),
            stale_reading_prob: 0.10,
            dropped_reading_prob: 0.05,
            thermal_spike_prob: 0.02,
            thermal_spike_magnitude: 25.0,
            dvfs_fail_prob: 0.20,
            dvfs_defer_prob: 0.25,
            dvfs_defer_quanta_max: 10,
            migration_fail_prob: 0.30,
            task_crash_prob: 2e-4,
            max_task_crashes: 2,
            clock_drift_prob: 0.50,
            clock_drift_quanta_max: 4,
            chip_clock_drift_prob: 0.50,
            chip_clock_drift_quanta_max: 4,
            partial_plan_prob: 0.08,
            ..FaultConfig::with_seed(seed)
        }
    }

    /// True when every probability is a probability and every magnitude is
    /// finite and non-negative. Property tests generate arbitrary configs
    /// and this is the gate they must pass.
    pub fn is_valid(&self) -> bool {
        let p01 = |p: f64| (0.0..=1.0).contains(&p);
        p01(self.stale_reading_prob)
            && p01(self.dropped_reading_prob)
            && p01(self.thermal_spike_prob)
            && p01(self.dvfs_fail_prob)
            && p01(self.dvfs_defer_prob)
            && self.dvfs_fail_prob + self.dvfs_defer_prob <= 1.0
            && p01(self.migration_fail_prob)
            && p01(self.task_crash_prob)
            && p01(self.clock_drift_prob)
            && p01(self.chip_clock_drift_prob)
            && p01(self.partial_plan_prob)
            && self.power_noise_sigma.is_finite()
            && self.power_noise_sigma >= 0.0
            && self.power_quantum.value().is_finite()
            && self.power_quantum.value() >= 0.0
            && self.thermal_spike_magnitude.is_finite()
            && self.thermal_spike_magnitude >= 0.0
    }
}

/// Fate of one actuation command under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationOutcome {
    /// The command takes effect this quantum, as on a clean run.
    Apply,
    /// The command is silently lost; the manager must notice and retry.
    Fail,
    /// The command lands the given number of quanta late.
    Defer(u32),
}

/// Tally of every fault the plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Power reads that reported zero.
    pub dropped_readings: u64,
    /// Power reads that reported the previous value.
    pub stale_readings: u64,
    /// Temperature reads that reported a spike.
    pub thermal_spikes: u64,
    /// DVFS requests silently lost.
    pub dvfs_failed: u64,
    /// DVFS requests that landed late.
    pub dvfs_deferred: u64,
    /// Migration requests that failed.
    pub migrations_failed: u64,
    /// Tasks crashed.
    pub task_crashes: u64,
    /// Cluster power readings delivered late by a drifted agent clock.
    pub drifted_readings: u64,
    /// Chip-wide power readings delivered late by a drifted chip clock.
    pub chip_drifted_readings: u64,
    /// Plans truncated by a mid-actuation executor death.
    pub partial_plans: u64,
}

impl FaultStats {
    /// Total number of injected faults of any class.
    pub fn total(&self) -> u64 {
        self.dropped_readings
            + self.stale_readings
            + self.thermal_spikes
            + self.dvfs_failed
            + self.dvfs_deferred
            + self.migrations_failed
            + self.task_crashes
            + self.drifted_readings
            + self.chip_drifted_readings
            + self.partial_plans
    }
}

/// A DVFS request parked by [`ActuationOutcome::Defer`] until its due time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DeferredDvfs {
    due: SimTime,
    cluster: ClusterId,
    level: VfLevel,
}

/// One observation clock (a cluster agent's, or the chip-wide sensor's):
/// lag 0 is an honest clock; a drifted clock delivers readings `lag`
/// quanta late through a small ring.
#[derive(Debug, Clone, PartialEq)]
struct ObsClock {
    lag: u32,
    ring: std::collections::VecDeque<Watts>,
}

impl ObsClock {
    /// Feed one fresh reading and return what the clock delivers: the
    /// fresh value for honest clocks, an older sample (first sample during
    /// warmup) for drifted ones. `late` is bumped on each late delivery.
    fn deliver(&mut self, reading: Watts, late: &mut u64) -> Watts {
        if self.lag == 0 {
            return reading;
        }
        self.ring.push_back(reading);
        if self.ring.len() > self.lag as usize + 1 {
            self.ring.pop_front();
        }
        // Until the ring warms past one entry the front IS the fresh
        // reading (the agent's first sample); only late deliveries count
        // as injected faults.
        if self.ring.len() > 1 {
            *late += 1;
        }
        *self.ring.front().expect("ring just fed")
    }
}

/// Seeded, replayable stream of fault decisions.
///
/// Each query method draws from the plan's private generator, so a fixed
/// seed plus a fixed query sequence yields a fixed fault pattern. The
/// scheduler is expected to query in simulation order (observations at
/// capture, actuations in plan order), which the executor guarantees.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: StdRng,
    /// Last good (delivered, non-faulted) reading per power sensor, for
    /// stale-register faults. Index 0 is the chip sensor, `1 + c` the
    /// sensor of cluster `c`.
    last_power: Vec<Option<Watts>>,
    deferred: Vec<DeferredDvfs>,
    /// Per-cluster observation clocks; `None` until the first read decides
    /// whether that cluster's clock drifts.
    cluster_clocks: Vec<Option<ObsClock>>,
    /// The chip-wide observation clock; `None` until the chip sensor's
    /// first read decides whether it drifts.
    chip_clock: Option<ObsClock>,
    crashes_injected: u32,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan driven by `config` (which carries the seed).
    pub fn new(config: FaultConfig) -> FaultPlan {
        let rng = StdRng::seed_from_u64(config.seed);
        FaultPlan {
            config,
            rng,
            last_power: Vec::new(),
            deferred: Vec::new(),
            cluster_clocks: Vec::new(),
            chip_clock: None,
            crashes_injected: 0,
            stats: FaultStats::default(),
        }
    }

    /// A plan with the default fault profile and the given seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig::with_seed(seed))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Tally of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One standard Gaussian variate via Box–Muller (the vendored `rand`
    /// has no normal distribution). Always consumes exactly two uniforms.
    fn gauss(&mut self) -> f64 {
        // Keep u1 away from 0 so ln() stays finite.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Perturb one power reading.
    ///
    /// `sensor` identifies the stale-value register: 0 for the chip sensor,
    /// `1 + c` for cluster `c`'s sensor. The true value is whatever the
    /// power model computed; the return value is what the manager sees.
    /// Faults are tried in hardware order — a dropped read masks
    /// everything, a stale read masks noise — and each call consumes the
    /// same number of random draws regardless of outcome, so fault
    /// patterns are stable under config tweaks to *magnitudes*.
    pub fn perturb_power(&mut self, sensor: usize, true_value: Watts) -> Watts {
        if self.last_power.len() <= sensor {
            self.last_power.resize(sensor + 1, None);
        }
        let dropped = self.rng.gen_bool(self.config.dropped_reading_prob);
        let stale = self.rng.gen_bool(self.config.stale_reading_prob);
        let noise = self.gauss();
        if dropped {
            self.stats.dropped_readings += 1;
            return Watts::ZERO;
        }
        if stale {
            if let Some(prev) = self.last_power[sensor] {
                self.stats.stale_readings += 1;
                return prev;
            }
        }
        let mut w = true_value.value() * (1.0 + self.config.power_noise_sigma * noise);
        let q = self.config.power_quantum.value();
        if q > 0.0 {
            w = (w / q).round() * q;
        }
        let w = Watts(w.max(0.0));
        self.last_power[sensor] = Some(w);
        w
    }

    /// Perturb one temperature reading (transient spikes only; sustained
    /// bias would defeat the thermal-pressure safety net rather than test
    /// it).
    pub fn perturb_temperature(&mut self, true_value: Celsius) -> Celsius {
        let spike = self.rng.gen_bool(self.config.thermal_spike_prob);
        let scale: f64 = self.rng.gen_range(0.5..=1.5);
        if spike {
            self.stats.thermal_spikes += 1;
            Celsius(true_value.value() + self.config.thermal_spike_magnitude * scale)
        } else {
            true_value
        }
    }

    /// Decide the fate of one DVFS request.
    pub fn dvfs_outcome(&mut self) -> ActuationOutcome {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let defer_quanta: u32 = self
            .rng
            .gen_range(1..=self.config.dvfs_defer_quanta_max.max(1));
        if u < self.config.dvfs_fail_prob {
            self.stats.dvfs_failed += 1;
            ActuationOutcome::Fail
        } else if u < self.config.dvfs_fail_prob + self.config.dvfs_defer_prob {
            self.stats.dvfs_deferred += 1;
            ActuationOutcome::Defer(defer_quanta)
        } else {
            ActuationOutcome::Apply
        }
    }

    /// Decide whether one migration request goes through.
    pub fn migration_applies(&mut self) -> bool {
        if self.rng.gen_bool(self.config.migration_fail_prob) {
            self.stats.migrations_failed += 1;
            false
        } else {
            true
        }
    }

    /// Park a deferred DVFS request until `due`.
    pub fn defer_dvfs(&mut self, due: SimTime, cluster: ClusterId, level: VfLevel) {
        self.deferred.push(DeferredDvfs {
            due,
            cluster,
            level,
        });
    }

    /// Pop the next parked DVFS request whose due time has arrived, in
    /// insertion order. Call until `None` each quantum.
    pub fn pop_due_dvfs(&mut self, now: SimTime) -> Option<(ClusterId, VfLevel)> {
        let idx = self.deferred.iter().position(|d| d.due <= now)?;
        let d = self.deferred.remove(idx);
        Some((d.cluster, d.level))
    }

    /// Apply cluster `c`'s observation clock drift to its power reading.
    ///
    /// The paper's cluster agents each sample their sensor on their own
    /// timer; with probability `clock_drift_prob` (decided once per
    /// cluster, on its first read — two draws then, none afterwards) a
    /// cluster's clock drifts and every reading it delivers lags the
    /// chip-wide capture by a fixed `1..=clock_drift_quanta_max` quanta.
    /// Call once per cluster per quantum, in cluster order, *after*
    /// [`FaultPlan::perturb_power`]: drift delays what the sensor
    /// reported, sensor faults included.
    pub fn drift_cluster_power(&mut self, cluster: usize, reading: Watts) -> Watts {
        if self.cluster_clocks.len() <= cluster {
            self.cluster_clocks.resize_with(cluster + 1, || None);
        }
        if self.cluster_clocks[cluster].is_none() {
            let drifts = self.rng.gen_bool(self.config.clock_drift_prob);
            let lag: u32 = self
                .rng
                .gen_range(1..=self.config.clock_drift_quanta_max.max(1));
            self.cluster_clocks[cluster] = Some(ObsClock {
                lag: if drifts { lag } else { 0 },
                ring: std::collections::VecDeque::new(),
            });
        }
        let clock = self.cluster_clocks[cluster]
            .as_mut()
            .expect("clock just decided");
        clock.deliver(reading, &mut self.stats.drifted_readings)
    }

    /// Apply the *chip-wide* observation clock drift to the chip power
    /// reading — the per-chip analogue of [`FaultPlan::drift_cluster_power`]
    /// (PR 6's per-cluster drift lifted one level): with probability
    /// `chip_clock_drift_prob` (decided once, on the first read — two draws
    /// then, none afterwards) the chip sensor's whole delivery path lags by
    /// a fixed `1..=chip_clock_drift_quanta_max` quanta. Call once per
    /// quantum, *after* [`FaultPlan::perturb_power`] on the chip sensor:
    /// drift delays what the sensor reported, sensor faults included. In a
    /// fleet this is the chip whose manager — and whose exchange bids —
    /// run a few quanta behind the rest of the datacenter.
    pub fn drift_chip_power(&mut self, reading: Watts) -> Watts {
        if self.chip_clock.is_none() {
            let drifts = self.rng.gen_bool(self.config.chip_clock_drift_prob);
            let lag: u32 = self
                .rng
                .gen_range(1..=self.config.chip_clock_drift_quanta_max.max(1));
            self.chip_clock = Some(ObsClock {
                lag: if drifts { lag } else { 0 },
                ring: std::collections::VecDeque::new(),
            });
        }
        let clock = self.chip_clock.as_mut().expect("clock just decided");
        clock.deliver(reading, &mut self.stats.chip_drifted_readings)
    }

    /// Decide whether the executor dies mid-actuation this quantum: with
    /// probability `partial_plan_prob`, only the first `Some(k)` of `ops`
    /// planned actions reach the hardware (`k` uniform in `0..ops`, so at
    /// least one action is lost). The tape has already recorded the full
    /// intent — managers must notice and re-issue, exactly as after a
    /// failed actuation. Consumes two draws whenever `ops > 0`.
    pub fn plan_cut(&mut self, ops: usize) -> Option<usize> {
        if ops == 0 {
            return None;
        }
        let dies = self.rng.gen_bool(self.config.partial_plan_prob);
        let keep = self.rng.gen_range(0..ops);
        if dies {
            self.stats.partial_plans += 1;
            Some(keep)
        } else {
            None
        }
    }

    /// Decide whether a task crashes this quantum; returns the index of
    /// the victim among `active_tasks` currently-running tasks. Bounded by
    /// `max_task_crashes` for the whole run.
    pub fn task_crash(&mut self, active_tasks: usize) -> Option<usize> {
        if active_tasks == 0
            || self.crashes_injected >= self.config.max_task_crashes
            || !self.rng.gen_bool(self.config.task_crash_prob)
        {
            return None;
        }
        self.crashes_injected += 1;
        self.stats.task_crashes += 1;
        Some(self.rng.gen_range(0..active_tasks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> FaultConfig {
        FaultConfig::harsh(42)
    }

    #[test]
    fn identical_seeds_give_identical_decision_streams() {
        let mut a = FaultPlan::new(noisy());
        let mut b = FaultPlan::new(noisy());
        for i in 0..2000 {
            assert_eq!(
                a.perturb_power(i % 3, Watts(1.0 + i as f64 * 0.01)),
                b.perturb_power(i % 3, Watts(1.0 + i as f64 * 0.01)),
            );
            assert_eq!(a.dvfs_outcome(), b.dvfs_outcome());
            assert_eq!(a.migration_applies(), b.migration_applies());
            assert_eq!(
                a.perturb_temperature(Celsius(40.0)),
                b.perturb_temperature(Celsius(40.0))
            );
            assert_eq!(
                a.drift_cluster_power(i % 3, Watts(i as f64)),
                b.drift_cluster_power(i % 3, Watts(i as f64))
            );
            assert_eq!(
                a.drift_chip_power(Watts(i as f64)),
                b.drift_chip_power(Watts(i as f64))
            );
            assert_eq!(a.plan_cut(1 + i % 4), b.plan_cut(1 + i % 4));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "harsh profile injected nothing");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::from_seed(1);
        let mut b = FaultPlan::from_seed(2);
        let same =
            (0..100).all(|_| a.perturb_power(0, Watts(2.0)) == b.perturb_power(0, Watts(2.0)));
        assert!(!same);
    }

    #[test]
    fn noise_is_centred_and_bounded() {
        let mut cfg = FaultConfig::with_seed(7);
        cfg.stale_reading_prob = 0.0;
        cfg.dropped_reading_prob = 0.0;
        cfg.power_quantum = Watts(0.0);
        cfg.power_noise_sigma = 0.05;
        let mut plan = FaultPlan::new(cfg);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let w = plan.perturb_power(0, Watts(4.0));
            assert!(w.value() >= 0.0);
            sum += w.value();
        }
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.02, "mean drifted to {mean}");
    }

    #[test]
    fn quantisation_snaps_to_the_lsb() {
        let mut cfg = FaultConfig::with_seed(3);
        cfg.stale_reading_prob = 0.0;
        cfg.dropped_reading_prob = 0.0;
        cfg.power_noise_sigma = 0.0;
        cfg.power_quantum = Watts(0.25);
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.perturb_power(0, Watts(1.07)), Watts(1.0));
        assert_eq!(plan.perturb_power(0, Watts(1.19)), Watts(1.25));
    }

    #[test]
    fn stale_reads_replay_the_last_good_value() {
        let mut cfg = FaultConfig::with_seed(11);
        cfg.stale_reading_prob = 1.0;
        cfg.dropped_reading_prob = 0.0;
        cfg.power_noise_sigma = 0.0;
        cfg.power_quantum = Watts(0.0);
        let mut plan = FaultPlan::new(cfg);
        // First read has no previous value, so it passes through.
        assert_eq!(plan.perturb_power(0, Watts(3.0)), Watts(3.0));
        // Every later read replays it, per sensor.
        assert_eq!(plan.perturb_power(0, Watts(9.0)), Watts(3.0));
        assert_eq!(plan.perturb_power(1, Watts(5.0)), Watts(5.0));
        assert_eq!(plan.perturb_power(1, Watts(9.0)), Watts(5.0));
    }

    #[test]
    fn dropped_reads_report_zero() {
        let mut cfg = FaultConfig::with_seed(13);
        cfg.dropped_reading_prob = 1.0;
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.perturb_power(0, Watts(6.0)), Watts::ZERO);
        assert_eq!(plan.perturb_power(1, Watts(2.0)), Watts::ZERO);
        assert_eq!(plan.stats().dropped_readings, 2);
    }

    #[test]
    fn deferred_dvfs_pops_in_order_once_due() {
        let mut plan = FaultPlan::from_seed(5);
        plan.defer_dvfs(SimTime(3000), ClusterId(0), VfLevel(2));
        plan.defer_dvfs(SimTime(1000), ClusterId(1), VfLevel(4));
        plan.defer_dvfs(SimTime(1000), ClusterId(0), VfLevel(1));
        assert_eq!(plan.pop_due_dvfs(SimTime(500)), None);
        assert_eq!(
            plan.pop_due_dvfs(SimTime(1000)),
            Some((ClusterId(1), VfLevel(4)))
        );
        assert_eq!(
            plan.pop_due_dvfs(SimTime(1000)),
            Some((ClusterId(0), VfLevel(1)))
        );
        assert_eq!(plan.pop_due_dvfs(SimTime(1000)), None);
        assert_eq!(
            plan.pop_due_dvfs(SimTime(3000)),
            Some((ClusterId(0), VfLevel(2)))
        );
    }

    #[test]
    fn crash_budget_is_respected() {
        let mut cfg = FaultConfig::with_seed(17);
        cfg.task_crash_prob = 1.0;
        cfg.max_task_crashes = 3;
        let mut plan = FaultPlan::new(cfg);
        let mut crashed = 0;
        for _ in 0..100 {
            if let Some(victim) = plan.task_crash(4) {
                assert!(victim < 4);
                crashed += 1;
            }
        }
        assert_eq!(crashed, 3);
        assert_eq!(plan.stats().task_crashes, 3);
        assert_eq!(plan.task_crash(0), None);
    }

    #[test]
    fn dvfs_outcomes_cover_all_fates() {
        let mut plan = FaultPlan::new(noisy());
        let mut seen = (false, false, false);
        for _ in 0..1000 {
            match plan.dvfs_outcome() {
                ActuationOutcome::Apply => seen.0 = true,
                ActuationOutcome::Fail => seen.1 = true,
                ActuationOutcome::Defer(q) => {
                    assert!((1..=10).contains(&q));
                    seen.2 = true;
                }
            }
        }
        assert!(seen.0 && seen.1 && seen.2, "missing outcome: {seen:?}");
    }

    #[test]
    fn drifted_clocks_deliver_readings_late() {
        let mut cfg = FaultConfig::with_seed(23);
        cfg.clock_drift_prob = 1.0;
        cfg.clock_drift_quanta_max = 2;
        let mut plan = FaultPlan::new(cfg);
        // Lag is 1 or 2; either way reading k arrives at quantum k + lag,
        // and the warmup quanta replay the agent's first sample.
        let delivered: Vec<f64> = (0..8)
            .map(|q| plan.drift_cluster_power(0, Watts(q as f64)).value())
            .collect();
        let lag = delivered
            .iter()
            .rposition(|&w| w == 0.0)
            .expect("first sample replays during warmup");
        assert!((1..=2).contains(&lag), "lag {lag} out of range");
        for (q, &w) in delivered.iter().enumerate().skip(lag) {
            assert_eq!(w, (q - lag) as f64, "quantum {q}");
        }
        // Every read after the first replays an older sample while real
        // time moves on, so all 7 later reads count as late deliveries.
        assert_eq!(plan.stats().drifted_readings, 7);
    }

    #[test]
    fn drifted_chip_clock_delivers_readings_late() {
        let mut cfg = FaultConfig::with_seed(37);
        cfg.chip_clock_drift_prob = 1.0;
        cfg.chip_clock_drift_quanta_max = 3;
        let mut plan = FaultPlan::new(cfg);
        let delivered: Vec<f64> = (0..10)
            .map(|q| plan.drift_chip_power(Watts(q as f64)).value())
            .collect();
        let lag = delivered
            .iter()
            .rposition(|&w| w == 0.0)
            .expect("first sample replays during warmup");
        assert!((1..=3).contains(&lag), "lag {lag} out of range");
        for (q, &w) in delivered.iter().enumerate().skip(lag) {
            assert_eq!(w, (q - lag) as f64, "quantum {q}");
        }
        assert_eq!(plan.stats().chip_drifted_readings, 9);
        // Chip drift is accounted separately from cluster drift.
        assert_eq!(plan.stats().drifted_readings, 0);
    }

    #[test]
    fn honest_chip_clock_passes_readings_through() {
        let mut cfg = FaultConfig::with_seed(41);
        cfg.chip_clock_drift_prob = 0.0;
        let mut plan = FaultPlan::new(cfg);
        for q in 0..20 {
            assert_eq!(plan.drift_chip_power(Watts(q as f64)), Watts(q as f64));
        }
        assert_eq!(plan.stats().chip_drifted_readings, 0);
    }

    #[test]
    fn chip_and_cluster_clocks_drift_independently() {
        // Same plan, chip drifting, clusters honest: cluster readings pass
        // through untouched while the chip reading lags.
        let mut cfg = FaultConfig::with_seed(43);
        cfg.chip_clock_drift_prob = 1.0;
        cfg.chip_clock_drift_quanta_max = 1;
        cfg.clock_drift_prob = 0.0;
        let mut plan = FaultPlan::new(cfg);
        for q in 0..6 {
            let chip = plan.drift_chip_power(Watts(10.0 + q as f64));
            let cl = plan.drift_cluster_power(0, Watts(q as f64));
            assert_eq!(cl, Watts(q as f64), "quantum {q}");
            if q > 0 {
                assert_eq!(chip, Watts(10.0 + (q - 1) as f64), "quantum {q}");
            }
        }
        assert!(plan.stats().chip_drifted_readings > 0);
        assert_eq!(plan.stats().drifted_readings, 0);
    }

    #[test]
    fn honest_clocks_pass_readings_through() {
        let mut cfg = FaultConfig::with_seed(29);
        cfg.clock_drift_prob = 0.0;
        let mut plan = FaultPlan::new(cfg);
        for q in 0..20 {
            assert_eq!(
                plan.drift_cluster_power(q % 4, Watts(q as f64)),
                Watts(q as f64)
            );
        }
        assert_eq!(plan.stats().drifted_readings, 0);
    }

    #[test]
    fn plan_cuts_keep_a_strict_prefix() {
        let mut cfg = FaultConfig::with_seed(31);
        cfg.partial_plan_prob = 1.0;
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.plan_cut(0), None, "empty plans draw nothing");
        for ops in 1..50 {
            let keep = plan.plan_cut(ops).expect("prob 1.0 always cuts");
            assert!(keep < ops, "must lose at least one op");
        }
        assert_eq!(plan.stats().partial_plans, 49);
        cfg = FaultConfig::with_seed(31);
        cfg.partial_plan_prob = 0.0;
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(plan.plan_cut(10), None);
    }

    #[test]
    fn default_profiles_are_valid() {
        assert!(FaultConfig::with_seed(0).is_valid());
        assert!(FaultConfig::harsh(0).is_valid());
        let mut bad = FaultConfig::with_seed(0);
        bad.dvfs_fail_prob = 0.8;
        bad.dvfs_defer_prob = 0.8;
        assert!(!bad.is_valid());
    }
}
