//! Processor cores and core classes.

use std::fmt;

use crate::cluster::ClusterId;

/// Identifier of a core, unique across the whole chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Micro-architectural class of a core.
///
/// The paper targets *performance heterogeneity*: all cores share one ISA but
/// differ in power/performance. ARM big.LITTLE pairs out-of-order Cortex-A15
/// ("big") cores with in-order Cortex-A7 ("LITTLE") cores. One PU on a big
/// core does more work than one PU on a LITTLE core; the workload layer
/// models that with per-class cycles-per-heartbeat figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreClass {
    /// Simple, in-order, energy-efficient core (Cortex-A7 in TC2).
    Little,
    /// Complex, out-of-order, high-performance core (Cortex-A15 in TC2).
    Big,
}

impl CoreClass {
    /// All classes, LITTLE first.
    pub const ALL: [CoreClass; 2] = [CoreClass::Little, CoreClass::Big];

    /// Marketing name of the matching TC2 core.
    pub fn tc2_name(self) -> &'static str {
        match self {
            CoreClass::Little => "Cortex-A7",
            CoreClass::Big => "Cortex-A15",
        }
    }
}

impl fmt::Display for CoreClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreClass::Little => write!(f, "LITTLE"),
            CoreClass::Big => write!(f, "big"),
        }
    }
}

/// Static description of one core: its identity, class, and home cluster.
///
/// Dynamic state (current frequency, hence supply) lives on the cluster,
/// because all cores of a cluster share one V-F regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDescriptor {
    id: CoreId,
    class: CoreClass,
    cluster: ClusterId,
}

impl CoreDescriptor {
    /// Describe a core.
    pub fn new(id: CoreId, class: CoreClass, cluster: ClusterId) -> CoreDescriptor {
        CoreDescriptor { id, class, cluster }
    }

    /// Chip-wide core identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Micro-architectural class.
    pub fn class(&self) -> CoreClass {
        self.class
    }

    /// The voltage-frequency cluster this core belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }
}

impl fmt::Display for CoreDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.id, self.class, self.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_descriptor_accessors() {
        let d = CoreDescriptor::new(CoreId(3), CoreClass::Big, ClusterId(1));
        assert_eq!(d.id(), CoreId(3));
        assert_eq!(d.class(), CoreClass::Big);
        assert_eq!(d.cluster(), ClusterId(1));
    }

    #[test]
    fn class_names() {
        assert_eq!(CoreClass::Little.tc2_name(), "Cortex-A7");
        assert_eq!(CoreClass::Big.tc2_name(), "Cortex-A15");
        assert_eq!(CoreClass::Big.to_string(), "big");
        assert_eq!(CoreClass::Little.to_string(), "LITTLE");
    }

    #[test]
    fn display_is_informative() {
        let d = CoreDescriptor::new(CoreId(0), CoreClass::Little, ClusterId(0));
        assert_eq!(d.to_string(), "core0 (LITTLE, cluster0)");
    }
}
