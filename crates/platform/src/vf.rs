//! Discrete voltage-frequency operating points and per-cluster V-F tables.

use std::fmt;

use crate::units::{MegaHertz, MilliVolts, ProcessingUnits};

/// One discrete voltage-frequency operating point of a cluster regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VfPoint {
    /// Clock frequency at this point.
    pub frequency: MegaHertz,
    /// Regulator voltage at this point (set by hardware per the paper).
    pub voltage: MilliVolts,
}

impl VfPoint {
    /// Construct an operating point.
    pub fn new(frequency: MegaHertz, voltage: MilliVolts) -> VfPoint {
        VfPoint { frequency, voltage }
    }

    /// Per-core PU supply at this point (`f` MHz ⇒ `f` PU).
    pub fn supply(&self) -> ProcessingUnits {
        ProcessingUnits::from(self.frequency)
    }
}

impl fmt::Display for VfPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.frequency, self.voltage)
    }
}

/// Index into a [`VfTable`]; level 0 is the lowest frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VfLevel(pub usize);

impl fmt::Display for VfLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Error returned when a [`VfTable`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfTableError {
    /// The table must contain at least one operating point.
    Empty,
    /// Frequencies must be strictly increasing; the offending index is given.
    NotMonotonic(usize),
}

impl fmt::Display for VfTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfTableError::Empty => write!(f, "V-F table must not be empty"),
            VfTableError::NotMonotonic(i) => {
                write!(
                    f,
                    "V-F table frequency not strictly increasing at index {i}"
                )
            }
        }
    }
}

impl std::error::Error for VfTableError {}

/// An ordered table of discrete V-F operating points for one cluster.
///
/// Frequencies are strictly increasing with the level index; voltage is
/// non-decreasing in practice but not enforced (some silicon shares voltage
/// across adjacent levels).
///
/// ```
/// use ppm_platform::units::{MegaHertz, MilliVolts};
/// use ppm_platform::vf::{VfPoint, VfTable};
///
/// # fn main() -> Result<(), ppm_platform::vf::VfTableError> {
/// let table = VfTable::new(vec![
///     VfPoint::new(MegaHertz(350), MilliVolts(900)),
///     VfPoint::new(MegaHertz(500), MilliVolts(1000)),
/// ])?;
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.max().frequency, MegaHertz(500));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfTable {
    points: Vec<VfPoint>,
}

impl VfTable {
    /// Build a table from strictly-increasing-frequency points.
    ///
    /// # Errors
    ///
    /// Returns [`VfTableError::Empty`] for an empty vector and
    /// [`VfTableError::NotMonotonic`] if frequencies do not strictly increase.
    pub fn new(points: Vec<VfPoint>) -> Result<VfTable, VfTableError> {
        if points.is_empty() {
            return Err(VfTableError::Empty);
        }
        for i in 1..points.len() {
            if points[i].frequency <= points[i - 1].frequency {
                return Err(VfTableError::NotMonotonic(i));
            }
        }
        Ok(VfTable { points })
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: construction rejects empty tables.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Operating point at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn point(&self, level: VfLevel) -> VfPoint {
        self.points[level.0]
    }

    /// Operating point at `level`, or `None` when out of range.
    pub fn get(&self, level: VfLevel) -> Option<VfPoint> {
        self.points.get(level.0).copied()
    }

    /// Lowest operating point.
    pub fn min(&self) -> VfPoint {
        self.points[0]
    }

    /// Highest operating point.
    pub fn max(&self) -> VfPoint {
        *self.points.last().expect("table is never empty")
    }

    /// Highest level index.
    pub fn max_level(&self) -> VfLevel {
        VfLevel(self.points.len() - 1)
    }

    /// The level one step above `level`, saturating at the top.
    pub fn step_up(&self, level: VfLevel) -> VfLevel {
        VfLevel((level.0 + 1).min(self.points.len() - 1))
    }

    /// The level one step below `level`, saturating at the bottom.
    pub fn step_down(&self, level: VfLevel) -> VfLevel {
        VfLevel(level.0.saturating_sub(1))
    }

    /// Smallest level whose supply covers `demand`, or the top level if none
    /// does.
    ///
    /// The paper "rounds up the demand to the next supply value so as to
    /// prevent oscillation between two consecutive supply values" (§3.2.4).
    pub fn level_for_demand(&self, demand: ProcessingUnits) -> VfLevel {
        for (i, p) in self.points.iter().enumerate() {
            if p.supply() >= demand {
                return VfLevel(i);
            }
        }
        self.max_level()
    }

    /// Number of levels between two levels (unsigned distance).
    pub fn distance(&self, a: VfLevel, b: VfLevel) -> usize {
        a.0.abs_diff(b.0)
    }

    /// Iterate over the points from lowest to highest frequency.
    pub fn iter(&self) -> impl Iterator<Item = (VfLevel, VfPoint)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (VfLevel(i), *p))
    }

    /// Normalised position of `level` in `[0, 1]` (0 = lowest, 1 = highest).
    ///
    /// Used by the migration cost model to interpolate latency with speed.
    pub fn normalized(&self, level: VfLevel) -> f64 {
        if self.points.len() <= 1 {
            1.0
        } else {
            level.0 as f64 / (self.points.len() - 1) as f64
        }
    }
}

/// Evenly-spaced helper for building synthetic tables (used by the
/// scalability experiments, which emulate clusters with arbitrary top
/// frequencies).
///
/// Produces `steps` points from `lo` to `hi` MHz inclusive, with voltage
/// rising linearly from 900 mV to 1250 mV.
///
/// # Panics
///
/// Panics if `steps < 2` or `hi <= lo`.
pub fn linear_table(lo: MegaHertz, hi: MegaHertz, steps: usize) -> VfTable {
    assert!(steps >= 2, "need at least two points");
    assert!(hi > lo, "hi must exceed lo");
    let points = (0..steps)
        .map(|i| {
            let t = i as f64 / (steps - 1) as f64;
            let f = lo.0 as f64 + t * (hi.0 - lo.0) as f64;
            let v = 900.0 + t * 350.0;
            VfPoint::new(MegaHertz(f.round() as u32), MilliVolts(v.round() as u32))
        })
        .collect();
    VfTable::new(points).expect("linear table is monotonic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_empty() {
        assert_eq!(VfTable::new(vec![]), Err(VfTableError::Empty));
    }

    #[test]
    fn construction_rejects_non_monotonic() {
        let pts = vec![
            VfPoint::new(MegaHertz(500), MilliVolts(900)),
            VfPoint::new(MegaHertz(500), MilliVolts(950)),
        ];
        assert_eq!(VfTable::new(pts), Err(VfTableError::NotMonotonic(1)));
    }

    #[test]
    fn stepping_saturates() {
        let t = linear_table(MegaHertz(350), MegaHertz(1000), 4);
        assert_eq!(t.step_down(VfLevel(0)), VfLevel(0));
        assert_eq!(t.step_up(t.max_level()), t.max_level());
        assert_eq!(t.step_up(VfLevel(0)), VfLevel(1));
        assert_eq!(t.step_down(VfLevel(2)), VfLevel(1));
    }

    #[test]
    fn level_for_demand_rounds_up() {
        let t = linear_table(MegaHertz(300), MegaHertz(600), 4); // 300,400,500,600
        assert_eq!(t.level_for_demand(ProcessingUnits(250.0)), VfLevel(0));
        assert_eq!(t.level_for_demand(ProcessingUnits(300.0)), VfLevel(0));
        assert_eq!(t.level_for_demand(ProcessingUnits(301.0)), VfLevel(1));
        assert_eq!(t.level_for_demand(ProcessingUnits(9999.0)), VfLevel(3));
    }

    #[test]
    fn normalized_position() {
        let t = linear_table(MegaHertz(300), MegaHertz(600), 4);
        assert_eq!(t.normalized(VfLevel(0)), 0.0);
        assert_eq!(t.normalized(VfLevel(3)), 1.0);
        assert!((t.normalized(VfLevel(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_table_endpoints() {
        let t = linear_table(MegaHertz(350), MegaHertz(1000), 8);
        assert_eq!(t.min().frequency, MegaHertz(350));
        assert_eq!(t.max().frequency, MegaHertz(1000));
        assert_eq!(t.min().voltage, MilliVolts(900));
        assert_eq!(t.max().voltage, MilliVolts(1250));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn iter_yields_levels_in_order() {
        let t = linear_table(MegaHertz(350), MegaHertz(1000), 3);
        let levels: Vec<_> = t.iter().map(|(l, _)| l).collect();
        assert_eq!(levels, vec![VfLevel(0), VfLevel(1), VfLevel(2)]);
    }
}
