//! Chip topology: clusters of cores behind a coherent interconnect.

use std::fmt;

use crate::cluster::{Cluster, ClusterId};
use crate::core::{CoreClass, CoreDescriptor, CoreId};
use crate::migration::MigrationModel;
use crate::power::PowerModel;
use crate::units::{MegaHertz, ProcessingUnits, SimTime};
use crate::vf::{linear_table, VfTable};

/// A complete heterogeneous multi-core chip.
///
/// Owns the static topology (core descriptors), the dynamic per-cluster state
/// (V-F level, power gating), and the chip-wide power and migration models.
///
/// ```
/// use ppm_platform::chip::Chip;
///
/// let chip = Chip::tc2();
/// assert_eq!(chip.cores().len(), 5);     // 2×A15 + 3×A7
/// assert_eq!(chip.clusters().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Chip {
    cores: Vec<CoreDescriptor>,
    clusters: Vec<Cluster>,
    power_model: PowerModel,
    migration_model: MigrationModel,
}

impl Chip {
    /// The TC2 test chip of the paper: a three-core Cortex-A7 (LITTLE)
    /// cluster and a two-core Cortex-A15 (big) cluster.
    ///
    /// LITTLE is cluster 0 (the paper boots Linux on the LITTLE cluster);
    /// big is cluster 1.
    pub fn tc2() -> Chip {
        ChipBuilder::new()
            .cluster(
                CoreClass::Little,
                3,
                linear_table(MegaHertz(350), MegaHertz(1000), 8),
            )
            .cluster(
                CoreClass::Big,
                2,
                linear_table(MegaHertz(500), MegaHertz(1200), 8),
            )
            .build()
    }

    /// A Tegra-3-style "4-PLUS-1" variable-SMP chip: four fast cores in one
    /// cluster plus a single low-power companion core, both behind their
    /// own regulators (the paper's other motivating platform, §2).
    pub fn tegra_4plus1() -> Chip {
        ChipBuilder::new()
            .cluster(
                CoreClass::Little,
                1,
                linear_table(MegaHertz(100), MegaHertz(500), 5),
            )
            .cluster(
                CoreClass::Big,
                4,
                linear_table(MegaHertz(500), MegaHertz(1300), 8),
            )
            .build()
    }

    /// A homogeneous chip with one core per cluster — i.e. per-core DVFS,
    /// the configuration most homogeneous-multicore power-management work
    /// assumes. Useful as an experimental control.
    pub fn per_core_dvfs(cores: usize, class: CoreClass, lo: MegaHertz, hi: MegaHertz) -> Chip {
        let mut b = ChipBuilder::new();
        for _ in 0..cores {
            b = b.cluster(class, 1, linear_table(lo, hi, 8));
        }
        b.build()
    }

    /// Static descriptors of every core, indexed by [`CoreId`].
    pub fn cores(&self) -> &[CoreDescriptor] {
        &self.cores
    }

    /// All clusters, indexed by [`ClusterId`].
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Mutable access to all clusters.
    pub fn clusters_mut(&mut self) -> &mut [Cluster] {
        &mut self.clusters
    }

    /// Descriptor of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: CoreId) -> &CoreDescriptor {
        &self.cores[core.0]
    }

    /// The cluster `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0]
    }

    /// Mutable access to cluster `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cluster_mut(&mut self, id: ClusterId) -> &mut Cluster {
        &mut self.clusters[id.0]
    }

    /// The cluster that owns `core`.
    pub fn cluster_of(&self, core: CoreId) -> &Cluster {
        self.cluster(self.core(core).cluster())
    }

    /// Current PU supply of `core` (Sc): the frequency of its cluster, or
    /// zero when the cluster is gated.
    pub fn core_supply(&self, core: CoreId) -> ProcessingUnits {
        self.cluster_of(core).supply_per_core()
    }

    /// Maximum PU supply of `core` (Ŝc).
    pub fn core_max_supply(&self, core: CoreId) -> ProcessingUnits {
        self.cluster_of(core).max_supply_per_core()
    }

    /// Chip supply S: the sum of the cluster supplies (§2, Supply Model —
    /// the supply of a cluster equals the supply of any constituent core).
    pub fn total_supply(&self) -> ProcessingUnits {
        self.clusters.iter().map(|c| c.supply_per_core()).sum()
    }

    /// The chip's power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The chip's migration cost model.
    pub fn migration_model(&self) -> &MigrationModel {
        &self.migration_model
    }

    /// Complete any due DVFS transitions on all clusters.
    pub fn tick(&mut self, now: SimTime) {
        for c in &mut self.clusters {
            c.tick(now);
        }
    }

    /// Cores of `cluster` (convenience passthrough).
    pub fn cores_of(&self, cluster: ClusterId) -> &[CoreId] {
        self.cluster(cluster).cores()
    }
}

impl fmt::Display for Chip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip[")?;
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Builder for [`Chip`] topologies (C-BUILDER).
///
/// ```
/// use ppm_platform::chip::ChipBuilder;
/// use ppm_platform::core::CoreClass;
/// use ppm_platform::units::MegaHertz;
/// use ppm_platform::vf::linear_table;
///
/// let chip = ChipBuilder::new()
///     .cluster(CoreClass::Little, 4, linear_table(MegaHertz(350), MegaHertz(1000), 6))
///     .cluster(CoreClass::Big, 4, linear_table(MegaHertz(500), MegaHertz(2000), 6))
///     .build();
/// assert_eq!(chip.cores().len(), 8);
/// ```
#[derive(Debug, Default)]
pub struct ChipBuilder {
    specs: Vec<(CoreClass, usize, VfTable)>,
    power_model: Option<PowerModel>,
    migration_model: Option<MigrationModel>,
}

impl ChipBuilder {
    /// An empty builder.
    pub fn new() -> ChipBuilder {
        ChipBuilder::default()
    }

    /// Append a cluster of `count` cores of `class` with V-F table `table`.
    pub fn cluster(mut self, class: CoreClass, count: usize, table: VfTable) -> ChipBuilder {
        self.specs.push((class, count, table));
        self
    }

    /// Use a custom power model (defaults to [`PowerModel::tc2`]).
    pub fn power_model(mut self, model: PowerModel) -> ChipBuilder {
        self.power_model = Some(model);
        self
    }

    /// Use a custom migration model (defaults to [`MigrationModel::tc2`]).
    pub fn migration_model(mut self, model: MigrationModel) -> ChipBuilder {
        self.migration_model = Some(model);
        self
    }

    /// Materialise the chip.
    ///
    /// # Panics
    ///
    /// Panics if no cluster was added or any cluster has zero cores.
    pub fn build(self) -> Chip {
        assert!(!self.specs.is_empty(), "chip needs at least one cluster");
        let mut cores = Vec::new();
        let mut clusters = Vec::new();
        for (ci, (class, count, table)) in self.specs.into_iter().enumerate() {
            assert!(count > 0, "cluster must have at least one core");
            let cid = ClusterId(ci);
            let ids: Vec<CoreId> = (0..count)
                .map(|_| {
                    let id = CoreId(cores.len());
                    cores.push(CoreDescriptor::new(id, class, cid));
                    id
                })
                .collect();
            clusters.push(Cluster::new(cid, class, ids, table));
        }
        Chip {
            cores,
            clusters,
            power_model: self.power_model.unwrap_or_default(),
            migration_model: self.migration_model.unwrap_or_default(),
        }
    }
}

/// Synthetic many-cluster chip for the scalability study (Table 7): `v`
/// clusters of `c` cores each, alternating LITTLE/big classes, with top
/// frequencies spread over 350–3000 MHz as in §5.5.
pub fn synthetic_chip(v: usize, c: usize) -> Chip {
    let mut b = ChipBuilder::new();
    for i in 0..v {
        let class = if i % 2 == 0 {
            CoreClass::Little
        } else {
            CoreClass::Big
        };
        // Spread maximum supplies across 350–3000 PU deterministically.
        let max = 350 + ((i * 2650) / v.max(1)) as u32;
        let lo = (max / 3).max(100);
        b = b.cluster(
            class,
            c,
            linear_table(MegaHertz(lo), MegaHertz(max.max(lo + 100)), 8),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf::VfLevel;

    #[test]
    fn tc2_topology_matches_figure_1() {
        let chip = Chip::tc2();
        assert_eq!(chip.clusters().len(), 2);
        let little = chip.cluster(ClusterId(0));
        let big = chip.cluster(ClusterId(1));
        assert_eq!(little.core_count(), 3);
        assert_eq!(little.class(), CoreClass::Little);
        assert_eq!(big.core_count(), 2);
        assert_eq!(big.class(), CoreClass::Big);
        // Core ids are dense and correctly homed.
        for (i, d) in chip.cores().iter().enumerate() {
            assert_eq!(d.id(), CoreId(i));
        }
        assert_eq!(chip.core(CoreId(0)).cluster(), ClusterId(0));
        assert_eq!(chip.core(CoreId(4)).cluster(), ClusterId(1));
    }

    #[test]
    fn supply_tracks_cluster_level() {
        let mut chip = Chip::tc2();
        assert_eq!(chip.core_supply(CoreId(0)), ProcessingUnits(350.0));
        chip.cluster_mut(ClusterId(0))
            .set_level_immediate(VfLevel(7));
        assert_eq!(chip.core_supply(CoreId(0)), ProcessingUnits(1000.0));
        assert_eq!(chip.core_max_supply(CoreId(0)), ProcessingUnits(1000.0));
        assert_eq!(chip.core_max_supply(CoreId(4)), ProcessingUnits(1200.0));
    }

    #[test]
    fn total_supply_sums_clusters_not_cores() {
        // §2: "the supply of a cluster Sv is the same as the supply of any of
        // the constituent cores"; chip supply is the sum over clusters.
        let chip = Chip::tc2();
        assert_eq!(chip.total_supply(), ProcessingUnits(350.0 + 500.0));
    }

    #[test]
    fn gating_a_cluster_removes_its_supply() {
        let mut chip = Chip::tc2();
        chip.cluster_mut(ClusterId(1)).power_off();
        assert_eq!(chip.total_supply(), ProcessingUnits(350.0));
        assert_eq!(chip.core_supply(CoreId(4)), ProcessingUnits::ZERO);
    }

    #[test]
    fn synthetic_chip_scales() {
        let chip = synthetic_chip(16, 8);
        assert_eq!(chip.clusters().len(), 16);
        assert_eq!(chip.cores().len(), 128);
        // Top frequencies are spread over the requested band.
        let tops: Vec<u32> = chip
            .clusters()
            .iter()
            .map(|c| c.table().max().frequency.value())
            .collect();
        assert!(tops.iter().any(|&f| f <= 600));
        assert!(tops.iter().any(|&f| f >= 2500));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_builder_panics() {
        let _ = ChipBuilder::new().build();
    }

    #[test]
    fn tegra_preset_is_4_plus_1() {
        let chip = Chip::tegra_4plus1();
        assert_eq!(chip.clusters().len(), 2);
        assert_eq!(chip.cluster(ClusterId(0)).core_count(), 1);
        assert_eq!(chip.cluster(ClusterId(1)).core_count(), 4);
        assert_eq!(chip.cluster(ClusterId(0)).class(), CoreClass::Little);
        assert_eq!(chip.cores().len(), 5);
    }

    #[test]
    fn per_core_dvfs_gives_each_core_its_own_regulator() {
        let chip = Chip::per_core_dvfs(4, CoreClass::Big, MegaHertz(500), MegaHertz(2000));
        assert_eq!(chip.clusters().len(), 4);
        for c in chip.clusters() {
            assert_eq!(c.core_count(), 1);
        }
    }
}
