//! Voltage-frequency clusters.
//!
//! All cores of a cluster share one voltage/frequency regulator (as on TC2,
//! where frequency "can only be modified at the cluster level"), so supply
//! changes are a cluster-level operation. A cluster with no active tasks can
//! be powered down entirely.

use std::fmt;

use crate::core::{CoreClass, CoreId};
use crate::units::{ProcessingUnits, SimDuration, SimTime};
use crate::vf::{VfLevel, VfPoint, VfTable};

/// Identifier of a voltage-frequency cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// Power state of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPowerState {
    /// Clocked and executing.
    #[default]
    Online,
    /// Power-gated: zero supply, zero power.
    Off,
}

/// One voltage-frequency cluster: a set of micro-architecturally identical
/// cores behind a shared regulator.
///
/// The cluster records its V-F table, the current operating level, an
/// in-flight DVFS transition (transitions take a regulator-dependent
/// latency during which the *old* frequency is still in effect), and the
/// power state.
#[derive(Debug, Clone)]
pub struct Cluster {
    id: ClusterId,
    class: CoreClass,
    cores: Vec<CoreId>,
    table: VfTable,
    level: VfLevel,
    state: ClusterPowerState,
    /// Pending DVFS transition: target level and completion time.
    pending: Option<(VfLevel, SimTime)>,
    /// Regulator transition latency applied to every level change.
    transition_latency: SimDuration,
}

impl Cluster {
    /// Default regulator latency for a level change (typical for TC2-era
    /// regulators; the paper freezes bids across the change rather than
    /// modelling it precisely).
    pub const DEFAULT_TRANSITION_LATENCY: SimDuration = SimDuration(150);

    /// Create a cluster starting at the lowest V-F level, online.
    pub fn new(id: ClusterId, class: CoreClass, cores: Vec<CoreId>, table: VfTable) -> Cluster {
        Cluster {
            id,
            class,
            cores,
            table,
            level: VfLevel(0),
            state: ClusterPowerState::Online,
            pending: None,
            transition_latency: Self::DEFAULT_TRANSITION_LATENCY,
        }
    }

    /// Cluster identifier.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Micro-architectural class of every core in this cluster.
    pub fn class(&self) -> CoreClass {
        self.class
    }

    /// The cores of this cluster.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The V-F table of the shared regulator.
    pub fn table(&self) -> &VfTable {
        &self.table
    }

    /// Current operating level (the level *being left* while a transition is
    /// pending).
    pub fn level(&self) -> VfLevel {
        self.level
    }

    /// Current operating point.
    pub fn point(&self) -> VfPoint {
        self.table.point(self.level)
    }

    /// Target of the in-flight transition, if any.
    pub fn pending_level(&self) -> Option<VfLevel> {
        self.pending.map(|(l, _)| l)
    }

    /// The level the cluster is heading to: pending target if a transition is
    /// in flight, else the current level.
    pub fn effective_target(&self) -> VfLevel {
        self.pending.map_or(self.level, |(l, _)| l)
    }

    /// Power state.
    pub fn power_state(&self) -> ClusterPowerState {
        self.state
    }

    /// True when the cluster is power-gated.
    pub fn is_off(&self) -> bool {
        self.state == ClusterPowerState::Off
    }

    /// Per-core PU supply at the current level; zero when powered off.
    pub fn supply_per_core(&self) -> ProcessingUnits {
        match self.state {
            ClusterPowerState::Online => self.point().supply(),
            ClusterPowerState::Off => ProcessingUnits::ZERO,
        }
    }

    /// Per-core PU supply at the highest level (Ŝc in the paper).
    pub fn max_supply_per_core(&self) -> ProcessingUnits {
        self.table.max().supply()
    }

    /// Regulator transition latency.
    pub fn transition_latency(&self) -> SimDuration {
        self.transition_latency
    }

    /// Override the regulator transition latency.
    pub fn set_transition_latency(&mut self, latency: SimDuration) {
        self.transition_latency = latency;
    }

    /// Request a change to `target` at time `now`.
    ///
    /// Returns `true` if a transition was started (or re-targeted); `false`
    /// when the cluster is off or already at/heading to `target`.
    pub fn request_level(&mut self, target: VfLevel, now: SimTime) -> bool {
        if self.is_off() || target > self.table.max_level() {
            return false;
        }
        if self.effective_target() == target {
            return false;
        }
        self.pending = Some((target, now + self.transition_latency));
        true
    }

    /// Complete any due transition. Returns the newly-active level if a
    /// transition completed at or before `now`.
    pub fn tick(&mut self, now: SimTime) -> Option<VfLevel> {
        if let Some((target, due)) = self.pending {
            if now >= due {
                self.level = target;
                self.pending = None;
                return Some(target);
            }
        }
        None
    }

    /// Power the cluster down (e.g. no active tasks, or HL's TDP cutoff).
    /// Any in-flight transition is cancelled.
    pub fn power_off(&mut self) {
        self.state = ClusterPowerState::Off;
        self.pending = None;
    }

    /// Power the cluster back up at the lowest V-F level.
    pub fn power_on(&mut self) {
        if self.state == ClusterPowerState::Off {
            self.state = ClusterPowerState::Online;
            self.level = VfLevel(0);
            self.pending = None;
        }
    }

    /// Force the level immediately, bypassing the regulator latency.
    /// Intended for tests and for initial conditions.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the table.
    pub fn set_level_immediate(&mut self, level: VfLevel) {
        assert!(level <= self.table.max_level(), "level out of range");
        self.level = level;
        self.pending = None;
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}x{}] @ {}",
            self.id,
            self.cores.len(),
            self.class,
            self.point()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MegaHertz;
    use crate::vf::linear_table;

    fn cluster() -> Cluster {
        Cluster::new(
            ClusterId(0),
            CoreClass::Little,
            vec![CoreId(0), CoreId(1), CoreId(2)],
            linear_table(MegaHertz(350), MegaHertz(1000), 8),
        )
    }

    #[test]
    fn starts_at_lowest_level_online() {
        let c = cluster();
        assert_eq!(c.level(), VfLevel(0));
        assert_eq!(c.supply_per_core(), ProcessingUnits(350.0));
        assert_eq!(c.max_supply_per_core(), ProcessingUnits(1000.0));
        assert!(!c.is_off());
    }

    #[test]
    fn transition_takes_latency() {
        let mut c = cluster();
        let t0 = SimTime::from_millis(10);
        assert!(c.request_level(VfLevel(3), t0));
        // Old level still in effect before the latency elapses.
        assert_eq!(c.level(), VfLevel(0));
        assert_eq!(c.tick(t0), None);
        let done = t0 + c.transition_latency();
        assert_eq!(c.tick(done), Some(VfLevel(3)));
        assert_eq!(c.level(), VfLevel(3));
        assert_eq!(c.pending_level(), None);
    }

    #[test]
    fn duplicate_request_is_ignored() {
        let mut c = cluster();
        let t0 = SimTime::ZERO;
        assert!(c.request_level(VfLevel(2), t0));
        assert!(!c.request_level(VfLevel(2), t0)); // already heading there
        c.tick(t0 + c.transition_latency());
        assert!(!c.request_level(VfLevel(2), t0)); // already there
    }

    #[test]
    fn out_of_range_request_rejected() {
        let mut c = cluster();
        assert!(!c.request_level(VfLevel(99), SimTime::ZERO));
    }

    #[test]
    fn power_off_zeroes_supply_and_cancels_transition() {
        let mut c = cluster();
        c.request_level(VfLevel(4), SimTime::ZERO);
        c.power_off();
        assert!(c.is_off());
        assert_eq!(c.supply_per_core(), ProcessingUnits::ZERO);
        assert_eq!(c.pending_level(), None);
        assert!(!c.request_level(VfLevel(1), SimTime::ZERO));
        c.power_on();
        assert_eq!(c.level(), VfLevel(0));
        assert!(!c.is_off());
    }

    #[test]
    fn effective_target_tracks_pending() {
        let mut c = cluster();
        assert_eq!(c.effective_target(), VfLevel(0));
        c.request_level(VfLevel(5), SimTime::ZERO);
        assert_eq!(c.effective_target(), VfLevel(5));
    }
}
