//! HPM: hierarchical control-theoretic power management.
//!
//! Models the paper's own earlier framework [25] as §5.3 characterises it:
//! "a control-theory based power management framework that employs multiple
//! PID controllers to meet the demand of tasks in asymmetric multi-cores
//! under TDP constraint. However, the HPM scheduler uses naive load
//! balancing and task migration strategy" — "relatively simple and
//! non-speculative … oblivious to the utilizations in the other clusters".
//!
//! Three controller layers:
//!
//! 1. **Per-task performance PID** — drives the task's CPU share from its
//!    heart-rate error.
//! 2. **Per-cluster DVFS loop** — picks the lowest V-F level whose supply
//!    covers the busiest core's allocated shares at a target utilization,
//!    clamped by the chip layer's frequency cap.
//! 3. **Chip power-cap PID** — integrates the TDP error into a per-cluster
//!    maximum-level cap.
//!
//! Plus the naive LBT: shares-only balancing inside a cluster and
//! threshold-triggered migration that picks the destination by task count
//! alone (no speculation about demand, price, or power on the target).

use ppm_platform::core::{CoreClass, CoreId};
use ppm_platform::units::{ProcessingUnits, SimDuration, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_sched::executor::{AllocationPolicy, PowerManager, System};
use ppm_sched::metrics::Degradation;
use ppm_sched::plan::ActuationPlan;
use ppm_sched::snapshot::SystemSnapshot;
use ppm_workload::task::TaskId;

use crate::pid::{Pid, PidConfig};

/// Configuration of the HPM baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpmConfig {
    /// Period of the per-task performance loops.
    pub task_period: SimDuration,
    /// Period of the chip power loop.
    pub power_period: SimDuration,
    /// Period of the naive load-balance/migration pass.
    pub lbt_period: SimDuration,
    /// Target per-core utilization the DVFS loop aims for.
    pub target_utilization: f64,
    /// TDP constraint. `None` = uncapped.
    pub tdp: Option<Watts>,
}

impl HpmConfig {
    /// Defaults in the spirit of the DAC'13 system.
    pub fn new() -> HpmConfig {
        HpmConfig {
            task_period: SimDuration::from_millis(50),
            power_period: SimDuration::from_millis(100),
            lbt_period: SimDuration::from_millis(200),
            target_utilization: 0.85,
            tdp: None,
        }
    }

    /// Enable the TDP loop.
    pub fn with_tdp(mut self, tdp: Watts) -> HpmConfig {
        self.tdp = Some(tdp);
        self
    }
}

impl Default for HpmConfig {
    fn default() -> Self {
        HpmConfig::new()
    }
}

/// The HPM power manager.
#[derive(Debug)]
pub struct HpmManager {
    config: HpmConfig,
    /// One performance controller per task (indexed by task id).
    task_pids: Vec<Pid>,
    /// Power-cap controller.
    power_pid: Pid,
    /// Per-cluster maximum-level cap from the power loop (continuous, in
    /// level units; discretised when applied).
    level_cap: f64,
    next_task: SimTime,
    next_power: SimTime,
    next_lbt: SimTime,
    /// Per-task migration cooldown (suppresses thrash: every move resets
    /// the heart-rate telemetry the PID loops feed on).
    migrated_at: Vec<SimTime>,
    /// Last chip-power reading that looked sane, for the dropped-sensor
    /// fallback in the power loop.
    last_good_power: Option<(SimTime, Watts)>,
    /// Graceful-degradation counters (sensor fallbacks taken).
    degradation: Degradation,
}

impl HpmManager {
    /// Build an HPM manager.
    pub fn new(config: HpmConfig) -> HpmManager {
        HpmManager {
            config,
            task_pids: Vec::new(),
            // Error is in watts; output is a level-cap offset.
            power_pid: Pid::new(PidConfig {
                kp: 3.0,
                ki: 8.0,
                kd: 0.0,
                output_limits: (-8.0, 0.0),
                integral_limits: (-6.0, 0.0),
            }),
            level_cap: 0.0,
            next_task: SimTime::ZERO,
            next_power: SimTime::ZERO,
            next_lbt: SimTime::ZERO,
            migrated_at: Vec::new(),
            last_good_power: None,
            degradation: Degradation::default(),
        }
    }

    /// How long a stale power reading may stand in for a dropped one, in
    /// power-loop periods.
    const POWER_STALENESS_PERIODS: u64 = 8;

    /// Chip power with a last-good fallback: a zero reading while tasks are
    /// running is a dropped sensor read, not physics, so the last good
    /// reading substitutes while it is fresh. Clean traces never take the
    /// fallback — the first snapshot has no last-good reading yet and every
    /// later clean reading with running tasks is positive.
    fn plausible_power(&mut self, snap: &SystemSnapshot) -> Watts {
        let w = snap.chip_power;
        if w.value() <= 0.0 && !snap.tasks.is_empty() {
            if let Some((at, good)) = self.last_good_power {
                let staleness = SimDuration(
                    self.config
                        .power_period
                        .0
                        .saturating_mul(Self::POWER_STALENESS_PERIODS),
                );
                if snap.now.since(at) <= staleness {
                    self.degradation.sensor_fallbacks += 1;
                    return good;
                }
            }
            return w;
        }
        if w.value() > 0.0 {
            self.last_good_power = Some((snap.now, w));
        }
        w
    }

    /// Hold-down after a migration before the task may move again.
    const MIGRATION_COOLDOWN: SimDuration = SimDuration(2_000_000);

    fn may_move(&self, now: SimTime, id: TaskId) -> bool {
        self.migrated_at.get(id.0).is_none_or(|&t| {
            now.since(SimTime::ZERO) >= t.since(SimTime::ZERO) + Self::MIGRATION_COOLDOWN
        })
    }

    fn note_move(&mut self, now: SimTime, id: TaskId) {
        if self.migrated_at.len() <= id.0 {
            self.migrated_at.resize(id.0 + 1, SimTime::ZERO);
        }
        self.migrated_at[id.0] = now;
    }

    /// The configuration in force.
    pub fn config(&self) -> &HpmConfig {
        &self.config
    }

    /// Performance loops: one PID per task on normalized heart-rate error.
    fn run_task_loops(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan, dt: SimDuration) {
        let max_id = snap.tasks.iter().map(|t| t.id.0 + 1).max().unwrap_or(0);
        while self.task_pids.len() < max_id {
            // Output is a share adjustment in PU per update.
            self.task_pids
                .push(Pid::new(PidConfig::pi(80.0, 40.0, (-150.0, 150.0))));
        }
        for t in &snap.tasks {
            let hr = t.heart_rate;
            let target = t.target_rate;
            // No telemetry (admission or a fresh migration): seed the
            // share from the profile once, then let the window refill
            // without disturbing the controller.
            if hr <= 0.0 {
                if !t.share.is_positive() {
                    let class = snap.core(t.core).class;
                    plan.set_share(t.id, t.profiled_demand(class));
                }
                continue;
            }
            let err = (target - hr) / target;
            let adjust = self.task_pids[t.id.0].update(err, dt);
            let supply = snap.core(t.core).supply;
            let share =
                ProcessingUnits((t.share.value() + adjust).clamp(10.0, supply.value().max(10.0)));
            plan.set_share(t.id, share);
        }
    }

    /// Chip power loop: integrate the TDP error into a level cap.
    fn run_power_loop(&mut self, snap: &SystemSnapshot, dt: SimDuration) {
        let Some(tdp) = self.config.tdp else {
            self.level_cap = 0.0;
            return;
        };
        // Negative when above the cap; positive headroom is clipped hard so
        // the integral releases the frequency cap only slowly after a
        // violation (asymmetric anti-windup).
        let err = (tdp - self.plausible_power(snap)).value();
        self.level_cap = self.power_pid.update(err.min(0.05), dt);
    }

    /// DVFS loop: per cluster, the busiest core's allocated shares set the
    /// level, clamped by the power cap. Shares come through the plan overlay
    /// so this sees what the task loops just queued.
    fn run_dvfs(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        for cl in &snap.clusters {
            if cl.off {
                continue;
            }
            let busiest: f64 = cl
                .cores
                .iter()
                .map(|&c| {
                    snap.tasks_on(c)
                        .map(|t| plan.share_of(snap, t.id).value())
                        .sum::<f64>()
                })
                .fold(0.0, f64::max);
            let wanted =
                cl.level_for_demand(ProcessingUnits(busiest / self.config.target_utilization));
            let cap_offset = self.level_cap.round() as i64; // ≤ 0
            let capped = (wanted as i64 + cap_offset).clamp(0, cl.max_level() as i64) as usize;
            if cl.effective_target != capped {
                plan.request_level(cl.id, VfLevel(capped));
            }
        }
    }

    /// Naive LBT: utilization-threshold balancing and migration, oblivious
    /// to conditions on the destination cluster. Reads go through the plan
    /// overlay so moves queued earlier in the pass are visible to later
    /// decisions, like they were when this actuated inline.
    fn run_lbt(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        let now = snap.now;
        fn alloc(plan: &ActuationPlan, snap: &SystemSnapshot, c: CoreId) -> f64 {
            plan.tasks_on(snap, c)
                .map(|t| plan.share_of(snap, t.id).value())
                .sum()
        }
        // Intra-cluster: move one task from the most-allocated core to the
        // least-allocated one when the gap exceeds 25 % of the supply.
        for cl in &snap.clusters {
            if cl.off {
                continue;
            }
            let supply = cl.supply_per_core.value();
            if supply <= 0.0 {
                continue;
            }
            let Some(&busiest) = cl
                .cores
                .iter()
                .max_by(|&&a, &&b| alloc(plan, snap, a).total_cmp(&alloc(plan, snap, b)))
            else {
                continue;
            };
            let Some(&idlest) = cl
                .cores
                .iter()
                .min_by(|&&a, &&b| alloc(plan, snap, a).total_cmp(&alloc(plan, snap, b)))
            else {
                continue;
            };
            if alloc(plan, snap, busiest) - alloc(plan, snap, idlest) > 0.40 * supply {
                // Move the smallest movable task (cheapest to relocate).
                let victim = plan
                    .tasks_on(snap, busiest)
                    .filter(|t| self.may_move(now, t.id))
                    .min_by(|a, b| {
                        plan.share_of(snap, a.id)
                            .value()
                            .total_cmp(&plan.share_of(snap, b.id).value())
                    })
                    .map(|t| t.id);
                if let Some(victim) = victim {
                    plan.migrate(victim, idlest);
                    self.note_move(now, victim);
                }
            }
        }
        // Inter-cluster, threshold-triggered: if a LITTLE core remains
        // over-committed at the cluster's top frequency, push its biggest
        // task to the big cluster (destination = fewest tasks, no
        // speculation). If a big-cluster task has become small, pull it
        // back to LITTLE.
        let little_cores: Vec<CoreId> = snap
            .cores
            .iter()
            .filter(|c| c.class == CoreClass::Little)
            .map(|c| c.id)
            .collect();
        let big_cores: Vec<CoreId> = snap
            .cores
            .iter()
            .filter(|c| c.class == CoreClass::Big)
            .map(|c| c.id)
            .collect();
        for &c in &little_cores {
            let max_supply = snap.core(c).max_supply.value();
            let committed: f64 = alloc(plan, snap, c);
            if committed > 0.95 * max_supply {
                let victim = plan
                    .tasks_on(snap, c)
                    .filter(|t| self.may_move(now, t.id))
                    .max_by(|a, b| {
                        plan.share_of(snap, a.id)
                            .value()
                            .total_cmp(&plan.share_of(snap, b.id).value())
                    })
                    .map(|t| t.id);
                let target = big_cores
                    .iter()
                    .filter(|&&bc| !plan.cluster_off(snap, snap.core(bc).cluster))
                    .min_by_key(|&&bc| (plan.tasks_on_count(snap, bc), bc.0))
                    .copied();
                if let (Some(v), Some(t)) = (victim, target) {
                    if plan.cluster_off(snap, snap.core(t).cluster) {
                        continue;
                    }
                    plan.migrate(v, t);
                    self.note_move(now, v);
                    return; // one inter-cluster move per pass
                }
            }
        }
        for &c in &big_cores {
            let on_core: Vec<TaskId> = plan.tasks_on(snap, c).map(|t| t.id).collect();
            for t in on_core {
                if !self.may_move(now, t) {
                    continue;
                }
                // A task whose share would comfortably fit a LITTLE core
                // (scaled by a generic 2x heterogeneity factor, no
                // per-task speculation) goes back.
                let share = plan.share_of(snap, t).value();
                let little_max = 1000.0;
                if share * 2.0 < 0.5 * little_max {
                    if let Some(target) = little_cores
                        .iter()
                        .min_by_key(|&&lc| (plan.tasks_on_count(snap, lc), lc.0))
                        .copied()
                    {
                        plan.migrate(t, target);
                        self.note_move(now, t);
                        return;
                    }
                }
            }
        }
        // Gate clusters with nothing to run; wake them when targeted again.
        for cl in &snap.clusters {
            let has_tasks = plan.cluster_has_tasks(snap, cl.id);
            let off = plan.cluster_off(snap, cl.id);
            if has_tasks && off {
                plan.power_on(cl.id);
            } else if !has_tasks && !off {
                plan.power_off(cl.id);
            }
        }
    }
}

impl PowerManager for HpmManager {
    fn name(&self) -> &'static str {
        "HPM"
    }

    fn degradation(&self) -> Degradation {
        self.degradation
    }

    fn init(&mut self, sys: &mut System) {
        sys.set_policy(AllocationPolicy::Market);
        if let Some(tdp) = self.config.tdp {
            sys.set_tdp_accounting(tdp);
        }
        // Seed shares from profiles so the first period is sane.
        for id in sys.task_ids() {
            let class = sys.chip().core(sys.core_of(id)).class();
            let seed = sys.task(id).spec().profiled_demand(class);
            sys.set_share(id, seed);
        }
    }

    fn plan(&mut self, snap: &SystemSnapshot, _dt: SimDuration, plan: &mut ActuationPlan) {
        let now = snap.now;
        if now >= self.next_task {
            self.next_task = now + self.config.task_period;
            self.run_task_loops(snap, plan, self.config.task_period);
            self.run_dvfs(snap, plan);
        }
        if now >= self.next_power {
            self.next_power = now + self.config.power_period;
            self.run_power_loop(snap, self.config.power_period);
        }
        if now >= self.next_lbt {
            self.next_lbt = now + self.config.lbt_period;
            self.run_lbt(snap, plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_platform::chip::Chip;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn task(id: usize, b: Benchmark, i: Input) -> Task {
        Task::new(
            TaskId(id),
            BenchmarkSpec::of(b, i).expect("variant"),
            Priority(1),
        )
    }

    fn system_with(tasks: Vec<Task>) -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::Market);
        for (i, t) in tasks.into_iter().enumerate() {
            sys.add_task(t, CoreId(i % 3));
        }
        sys
    }

    #[test]
    fn pid_holds_light_task_at_target() {
        let sys = system_with(vec![task(0, Benchmark::Blackscholes, Input::Large)]);
        let mut sim = Simulation::new(sys, HpmManager::new(HpmConfig::new()))
            .with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(30));
        let miss = sim
            .metrics()
            .task(TaskId(0))
            .expect("observed")
            .miss_fraction();
        assert!(miss < 0.15, "miss {miss}");
        // Power stays modest: the task needs only ~200 PU.
        assert!(sim.metrics().average_power().value() < 1.5);
    }

    #[test]
    fn overloaded_little_core_sheds_to_big() {
        // Four heavy tasks (~3150 PU of LITTLE demand) cannot fit the
        // 3×1000 PU LITTLE cluster even after intra-cluster balancing.
        let sys = system_with(vec![
            task(0, Benchmark::Tracking, Input::FullHd),
            task(1, Benchmark::Multicnt, Input::FullHd),
            task(2, Benchmark::Texture, Input::FullHd),
            task(3, Benchmark::X264, Input::Native),
        ]);
        let mut sim = Simulation::new(sys, HpmManager::new(HpmConfig::new()));
        sim.run_for(SimDuration::from_secs(10));
        let on_big = sim
            .system()
            .task_ids()
            .iter()
            .filter(|&&t| {
                sim.system().chip().core(sim.system().core_of(t)).class() == CoreClass::Big
            })
            .count();
        assert!(on_big >= 1, "overload should trigger a naive migration");
    }

    #[test]
    fn power_cap_loop_brings_chip_below_tdp() {
        let sys = system_with(vec![
            task(0, Benchmark::Tracking, Input::FullHd),
            task(1, Benchmark::Multicnt, Input::FullHd),
            task(2, Benchmark::Texture, Input::FullHd),
            task(3, Benchmark::X264, Input::Native),
            task(4, Benchmark::Swaptions, Input::Native),
            task(5, Benchmark::Blackscholes, Input::Native),
        ]);
        let mgr = HpmManager::new(HpmConfig::new().with_tdp(Watts(4.0)));
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(40));
        let m = sim.metrics();
        assert!(
            m.average_power().value() < 4.0,
            "avg {} exceeds the cap",
            m.average_power()
        );
        let above = m.time_above_tdp.as_secs_f64() / m.total_time().as_secs_f64();
        assert!(above < 0.35, "above-TDP fraction {above}");
    }

    #[test]
    fn moderate_power_without_cap() {
        // Figure 5: HPM's average power is far below HL's because DVFS
        // follows the allocated shares instead of raw utilization.
        let sys = system_with(vec![
            task(0, Benchmark::Swaptions, Input::Large),
            task(1, Benchmark::Blackscholes, Input::Large),
            task(2, Benchmark::Texture, Input::Vga),
        ]);
        let mut sim = Simulation::new(sys, HpmManager::new(HpmConfig::new()))
            .with_warmup(SimDuration::from_secs(2));
        sim.run_for(SimDuration::from_secs(20));
        assert!(
            sim.metrics().average_power().value() < 2.5,
            "HPM power {}",
            sim.metrics().average_power()
        );
    }
}
