//! A discrete PID controller, the building block of the HPM baseline.
//!
//! HPM [Muthukaruppan et al., DAC'13] "employs multiple PID controllers to
//! meet the demand of tasks in asymmetric multi-cores under TDP constraint"
//! (§5.3). This is a standard velocity-form-free PID with clamped integral
//! (anti-windup) and clamped output.

use std::fmt;

use ppm_platform::units::SimDuration;

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
    /// Output clamp.
    pub output_limits: (f64, f64),
    /// Integral-term clamp (anti-windup).
    pub integral_limits: (f64, f64),
}

impl PidConfig {
    /// A proportional-integral controller (the common HPM loop shape).
    pub fn pi(kp: f64, ki: f64, output_limits: (f64, f64)) -> PidConfig {
        PidConfig {
            kp,
            ki,
            kd: 0.0,
            output_limits,
            integral_limits: output_limits,
        }
    }
}

/// A discrete PID controller.
#[derive(Debug, Clone)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// A controller at rest.
    pub fn new(config: PidConfig) -> Pid {
        Pid {
            config,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Advance the controller by `dt` with the current `error`
    /// (setpoint − measurement) and return the control output.
    pub fn update(&mut self, error: f64, dt: SimDuration) -> f64 {
        let dts = dt.as_secs_f64();
        self.integral = (self.integral + error * dts)
            .clamp(self.config.integral_limits.0, self.config.integral_limits.1);
        let derivative = match self.last_error {
            Some(prev) if dts > 0.0 => (error - prev) / dts,
            _ => 0.0,
        };
        self.last_error = Some(error);
        let out =
            self.config.kp * error + self.config.ki * self.integral + self.config.kd * derivative;
        out.clamp(self.config.output_limits.0, self.config.output_limits.1)
    }

    /// Reset integral and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// The gains in force.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid[i={:.3}]", self.integral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_action() {
        let mut pid = Pid::new(PidConfig::pi(2.0, 0.0, (-10.0, 10.0)));
        assert_eq!(pid.update(1.0, SimDuration::from_millis(100)), 2.0);
        assert_eq!(pid.update(-1.0, SimDuration::from_millis(100)), -2.0);
    }

    #[test]
    fn integral_accumulates_and_clamps() {
        let mut pid = Pid::new(PidConfig::pi(0.0, 1.0, (-2.0, 2.0)));
        let mut out = 0.0;
        for _ in 0..100 {
            out = pid.update(1.0, SimDuration::from_secs(1));
        }
        assert_eq!(out, 2.0, "output clamps at the limit");
    }

    #[test]
    fn output_clamps() {
        let mut pid = Pid::new(PidConfig::pi(100.0, 0.0, (-1.0, 1.0)));
        assert_eq!(pid.update(5.0, SimDuration::from_millis(10)), 1.0);
    }

    #[test]
    fn derivative_damps_fast_changes() {
        let cfg = PidConfig {
            kp: 0.0,
            ki: 0.0,
            kd: 1.0,
            output_limits: (-100.0, 100.0),
            integral_limits: (-100.0, 100.0),
        };
        let mut pid = Pid::new(cfg);
        pid.update(0.0, SimDuration::from_secs(1));
        let out = pid.update(1.0, SimDuration::from_secs(1));
        assert_eq!(out, 1.0); // d(error)/dt = 1
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidConfig::pi(0.0, 1.0, (-10.0, 10.0)));
        pid.update(5.0, SimDuration::from_secs(1));
        pid.reset();
        assert_eq!(pid.update(0.0, SimDuration::from_secs(1)), 0.0);
    }
}
