//! # ppm-baselines — the paper's comparison power managers
//!
//! The ASPLOS 2014 evaluation (§5.3) compares PPM against two schemes, both
//! reimplemented here on the same substrate:
//!
//! * [`hpm::HpmManager`] — the authors' earlier **H**ierarchical **P**ower
//!   **M**anagement framework: stacked PID controllers (per-task
//!   performance, per-cluster DVFS, chip power cap) with naive,
//!   non-speculative load balancing and migration.
//! * [`hl::HlManager`] — the **H**eterogeneity-aware **L**inux (Linaro)
//!   scheduler: PELT-activeness-threshold migration between clusters, CFS
//!   fair sharing within a core, the *ondemand* frequency governor, and a
//!   hard big-cluster cutoff under a TDP cap.
//!
//! ```
//! use ppm_baselines::hl::{HlConfig, HlManager};
//! use ppm_platform::chip::Chip;
//! use ppm_platform::core::CoreId;
//! use ppm_platform::units::SimDuration;
//! use ppm_sched::executor::{AllocationPolicy, Simulation, System};
//! use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
//! use ppm_workload::task::{Priority, Task, TaskId};
//!
//! # fn main() -> Result<(), ppm_workload::benchmarks::UnknownVariantError> {
//! let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
//! let spec = BenchmarkSpec::of(Benchmark::Texture, Input::Vga)?;
//! sys.add_task(Task::new(TaskId(0), spec, Priority(1)), CoreId(0));
//! let mut sim = Simulation::new(sys, HlManager::new(HlConfig::new()));
//! sim.run_for(SimDuration::from_secs(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod hl;
pub mod hpm;
pub mod pid;

pub use crate::hl::{HlConfig, HlManager};
pub use crate::hpm::{HpmConfig, HpmManager};
pub use crate::pid::{Pid, PidConfig};
