//! HL: the heterogeneity-aware Linux scheduler with the ondemand governor.
//!
//! Models the Linaro big.LITTLE MP scheduler of Linux 3.8 as the paper
//! describes it (§5.3): "the activeness of a task (the amount of time spent
//! in the active task run-queue) is used as a proxy for migration decisions
//! … the HL scheduler migrates a task to [the] A15 cluster (A7 cluster) once
//! the time spent in the active run-queue exceeds (falls below) certain
//! predefined threshold. Furthermore, the HL scheduler does not react to the
//! varying demands of the individual tasks." Frequencies come from the
//! per-cluster *ondemand* governor.
//!
//! Under a TDP cap the paper "switch[es] off the A15 cluster once the power
//! exceeds the TDP", since the A7 cluster alone stays within the budget.

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::{CoreClass, CoreId};
use ppm_platform::units::{SimDuration, SimTime, Watts};
use ppm_sched::executor::{AllocationPolicy, PowerManager, System};
use ppm_sched::governor::{FrequencyGovernor, Ondemand};
use ppm_sched::plan::ActuationPlan;
use ppm_sched::snapshot::SystemSnapshot;
use ppm_workload::task::TaskId;

/// Configuration of the HL baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HlConfig {
    /// PELT load above which a task is promoted to the big cluster.
    pub up_threshold: f64,
    /// PELT load below which a task is demoted to the LITTLE cluster.
    pub down_threshold: f64,
    /// How often migration decisions are taken.
    pub period: SimDuration,
    /// Power cap; when exceeded the big cluster is switched off for the
    /// remainder of the run (the paper's Figure 6 setup). `None` = uncapped.
    pub tdp: Option<Watts>,
    /// Readings above this are rejected as sensor glitches rather than
    /// physics; the TC2 chip cannot draw anywhere near this much.
    pub max_plausible: Watts,
}

impl HlConfig {
    /// Thresholds in the spirit of the Linaro HMP defaults.
    pub fn new() -> HlConfig {
        HlConfig {
            up_threshold: 0.80,
            down_threshold: 0.30,
            period: SimDuration::from_millis(100),
            tdp: None,
            max_plausible: Watts(20.0),
        }
    }

    /// Enable the TDP cutoff.
    pub fn with_tdp(mut self, tdp: Watts) -> HlConfig {
        self.tdp = Some(tdp);
        self
    }
}

impl Default for HlConfig {
    fn default() -> Self {
        HlConfig::new()
    }
}

/// The HL power manager.
#[derive(Debug)]
pub struct HlManager {
    config: HlConfig,
    /// One governor per cluster (each keeps its own sampling timer).
    governors: Vec<Ondemand>,
    next_decision: SimTime,
    /// Latched once the TDP cutoff has fired.
    big_disabled: bool,
    /// Last chip-power reading that passed the plausibility filter, backing
    /// the TDP cutoff against dropped or glitched sensor reads.
    last_good_power: Option<(SimTime, Watts)>,
}

impl HlManager {
    /// Build an HL manager.
    pub fn new(config: HlConfig) -> HlManager {
        HlManager {
            config,
            governors: Vec::new(),
            next_decision: SimTime::ZERO,
            big_disabled: false,
            last_good_power: None,
        }
    }

    /// How long a stale reading may stand in for a rejected one.
    const POWER_STALENESS: SimDuration = SimDuration(800_000);

    /// Chip power with a plausibility filter: a zero reading while tasks run
    /// (dropped sensor read) or a reading beyond anything the chip can draw
    /// (glitch) is replaced by the last good reading while that is fresh.
    /// The TDP cutoff is irreversible, so it must not fire on a glitch.
    /// Clean traces never take the fallback: the first snapshot has no
    /// last-good reading and every later clean reading with tasks is
    /// positive and far below the plausibility ceiling.
    fn plausible_power(&mut self, snap: &SystemSnapshot) -> Watts {
        let w = snap.chip_power;
        let implausible =
            (w.value() <= 0.0 && !snap.tasks.is_empty()) || w > self.config.max_plausible;
        if implausible {
            if let Some((at, good)) = self.last_good_power {
                if snap.now.since(at) <= Self::POWER_STALENESS {
                    return good;
                }
            }
            return Watts(w.value().min(self.config.max_plausible.value()));
        }
        if w.value() > 0.0 {
            self.last_good_power = Some((snap.now, w));
        }
        w
    }

    /// Rescue a task stranded on a gated cluster: a migration the hardware
    /// lost after the TDP cutoff leaves the task unschedulable, so it is
    /// re-issued toward the LITTLE cluster. Clean traces never strand a
    /// task — [`Self::disable_big`] queues the moves and the gating in one
    /// plan and clean migrations land within the quantum.
    fn rescue_stranded(&self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        for t in &snap.tasks {
            let core = plan.core_of(snap, t.id);
            if plan.cluster_off(snap, snap.core(core).cluster) {
                if let Some(target) = Self::least_loaded(snap, plan, CoreClass::Little, true) {
                    plan.migrate(t.id, target);
                }
            }
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HlConfig {
        &self.config
    }

    /// True once the TDP cutoff has switched the big cluster off.
    pub fn big_cluster_disabled(&self) -> bool {
        self.big_disabled
    }

    fn cores_of_class(snap: &SystemSnapshot, class: CoreClass) -> Vec<CoreId> {
        snap.cores
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.id)
            .collect()
    }

    /// The core of `class` with the fewest tasks (ties to the lowest id),
    /// mirroring wake-up balancing. Counts go through the plan overlay so
    /// moves queued earlier in the tick shift subsequent choices, exactly as
    /// they did when this actuated inline.
    fn least_loaded(
        snap: &SystemSnapshot,
        plan: &ActuationPlan,
        class: CoreClass,
        exclude_off: bool,
    ) -> Option<CoreId> {
        Self::cores_of_class(snap, class)
            .into_iter()
            .filter(|&c| !exclude_off || !plan.cluster_off(snap, snap.core(c).cluster))
            .min_by_key(|&c| (plan.tasks_on_count(snap, c), c.0))
    }

    /// Move every task off the big cluster and gate it (TDP cutoff).
    fn disable_big(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        self.big_disabled = true;
        self.gate_big(snap, plan);
    }

    /// Queue the cutoff actions: migrate every task still on a big core,
    /// gate every big cluster not already off (through the plan overlay,
    /// so a re-issue after lost actuation queues exactly what is still
    /// missing and a clean cutoff queues the same ops it always did).
    fn gate_big(&self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        let big_tasks: Vec<TaskId> = snap
            .tasks
            .iter()
            .filter(|t| snap.core(plan.core_of(snap, t.id)).class == CoreClass::Big)
            .map(|t| t.id)
            .collect();
        for t in big_tasks {
            if let Some(target) = Self::least_loaded(snap, plan, CoreClass::Little, true) {
                plan.migrate(t, target);
            }
        }
        for cl in &snap.clusters {
            if cl.class == CoreClass::Big && !plan.cluster_off(snap, cl.id) {
                plan.power_off(cl.id);
            }
        }
    }

    /// HMP-style migration pass: promote busy tasks, demote idle ones, and
    /// spread tasks within each cluster (CFS periodic load balance).
    fn migration_pass(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        for t in &snap.tasks {
            if t.stalled {
                continue;
            }
            let core = plan.core_of(snap, t.id);
            let class = snap.core(core).class;
            let load = t.pelt_load;
            match class {
                CoreClass::Little if !self.big_disabled && load >= self.config.up_threshold => {
                    if let Some(target) = Self::least_loaded(snap, plan, CoreClass::Big, true) {
                        plan.migrate(t.id, target);
                    }
                }
                CoreClass::Big if load <= self.config.down_threshold => {
                    if let Some(target) = Self::least_loaded(snap, plan, CoreClass::Little, true) {
                        plan.migrate(t.id, target);
                    }
                }
                _ => {}
            }
        }
        // Intra-cluster balance: move one task from the most- to the
        // least-populated core of each cluster when they differ by ≥ 2.
        for cl in &snap.clusters {
            if plan.cluster_off(snap, cl.id) {
                continue;
            }
            let (busiest, n_max) = match cl
                .cores
                .iter()
                .map(|&c| (c, plan.tasks_on_count(snap, c)))
                .max_by_key(|&(c, n)| (n, c.0))
            {
                Some(x) => x,
                None => continue,
            };
            let (idlest, n_min) = match cl
                .cores
                .iter()
                .map(|&c| (c, plan.tasks_on_count(snap, c)))
                .min_by_key(|&(c, n)| (n, c.0))
            {
                Some(x) => x,
                None => continue,
            };
            if n_max >= n_min + 2 {
                let victim = plan.tasks_on(snap, busiest).next().map(|t| t.id);
                if let Some(victim) = victim {
                    plan.migrate(victim, idlest);
                }
            }
        }
    }
}

impl PowerManager for HlManager {
    fn name(&self) -> &'static str {
        "HL"
    }

    fn init(&mut self, sys: &mut System) {
        sys.set_policy(AllocationPolicy::FairWeights);
        if let Some(tdp) = self.config.tdp {
            sys.set_tdp_accounting(tdp);
        }
    }

    fn plan(&mut self, snap: &SystemSnapshot, dt: SimDuration, plan: &mut ActuationPlan) {
        // Governors run every tick (each has its own sampling period).
        while self.governors.len() < snap.clusters.len() {
            self.governors.push(Ondemand::new());
        }
        for ci in 0..snap.clusters.len() {
            let cl = ClusterId(ci);
            if let Some(level) = self.governors[ci].govern(snap, cl, dt) {
                plan.request_level(cl, level);
            }
        }
        // TDP cutoff. The latch records irreversible *intent*; the hardware
        // can still lose the actuation (a plan truncated by a mid-apply
        // executor death), so while any big cluster shows powered in the
        // snapshot the cutoff actions are re-issued until it actually gates.
        if let Some(tdp) = self.config.tdp {
            if !self.big_disabled && self.plausible_power(snap) > tdp {
                self.disable_big(snap, plan);
            } else if self.big_disabled
                && snap
                    .clusters
                    .iter()
                    .any(|cl| cl.class == CoreClass::Big && !cl.off)
            {
                self.gate_big(snap, plan);
            }
        }
        if self.big_disabled {
            self.rescue_stranded(snap, plan);
        }
        if snap.now < self.next_decision {
            return;
        }
        self.next_decision = snap.now + self.config.period;
        self.migration_pass(snap, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_platform::chip::Chip;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn task(id: usize, b: Benchmark, i: Input) -> Task {
        Task::new(
            TaskId(id),
            BenchmarkSpec::of(b, i).expect("variant"),
            Priority(1),
        )
    }

    fn system_with(tasks: Vec<Task>) -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        for (i, t) in tasks.into_iter().enumerate() {
            sys.add_task(t, CoreId(i % 3)); // start on LITTLE, as after boot
        }
        sys
    }

    #[test]
    fn busy_tasks_migrate_to_big_at_first_opportunity() {
        // The paper: "the HL scheduler migrates the tasks to the powerful
        // A15 cluster at the first opportunity".
        let sys = system_with(vec![
            task(0, Benchmark::Texture, Input::Vga),
            task(1, Benchmark::Tracking, Input::Vga),
        ]);
        let mut sim = Simulation::new(sys, HlManager::new(HlConfig::new()));
        sim.run_for(SimDuration::from_secs(2));
        for id in sim.system().task_ids() {
            assert_eq!(
                sim.system().chip().core(sim.system().core_of(id)).class(),
                CoreClass::Big,
                "{id} should have been promoted"
            );
        }
        assert!(sim.metrics().migrations_inter >= 2);
    }

    #[test]
    fn ondemand_drives_busy_clusters_to_max() {
        let sys = system_with(vec![
            task(0, Benchmark::X264, Input::Native),
            task(1, Benchmark::Bodytrack, Input::Native),
        ]);
        let mut sim = Simulation::new(sys, HlManager::new(HlConfig::new()));
        sim.run_for(SimDuration::from_secs(3));
        // Tasks ended on big; the big cluster saturates to its top level.
        let big = sim.system().chip().cluster(ClusterId(1));
        assert_eq!(big.level(), big.table().max_level());
    }

    #[test]
    fn high_power_without_cap() {
        // Figure 5's observation: HL burns far more than necessary because
        // everything lands on the big cluster at high frequency.
        let sys = system_with(vec![
            task(0, Benchmark::Swaptions, Input::Large),
            task(1, Benchmark::Blackscholes, Input::Large),
            task(2, Benchmark::Texture, Input::Vga),
        ]);
        let mut sim = Simulation::new(sys, HlManager::new(HlConfig::new()))
            .with_warmup(SimDuration::from_secs(2));
        sim.run_for(SimDuration::from_secs(20));
        assert!(
            sim.metrics().average_power().value() > 3.0,
            "HL should be power-hungry: {}",
            sim.metrics().average_power()
        );
    }

    #[test]
    fn tdp_cutoff_gates_the_big_cluster() {
        let sys = system_with(vec![
            task(0, Benchmark::Tracking, Input::FullHd),
            task(1, Benchmark::Multicnt, Input::FullHd),
            task(2, Benchmark::X264, Input::Native),
            task(3, Benchmark::Swaptions, Input::Native),
        ]);
        let mgr = HlManager::new(HlConfig::new().with_tdp(Watts(4.0)));
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(2));
        sim.run_for(SimDuration::from_secs(20));
        assert!(sim.manager().big_cluster_disabled());
        assert!(sim.system().chip().cluster(ClusterId(1)).is_off());
        // Everything back on LITTLE.
        for id in sim.system().task_ids() {
            assert_eq!(
                sim.system().chip().core(sim.system().core_of(id)).class(),
                CoreClass::Little
            );
        }
        // A7 alone stays well under the cap.
        assert!(sim.system().chip_power() < Watts(4.0));
    }

    #[test]
    fn intra_cluster_balance_spreads_tasks() {
        let mut sys = system_with(vec![
            task(0, Benchmark::Blackscholes, Input::Large),
            task(1, Benchmark::Swaptions, Input::Large),
            task(2, Benchmark::Texture, Input::Vga),
        ]);
        // Pile everything on one core first.
        for id in sys.task_ids() {
            sys.migrate(id, CoreId(0));
        }
        // Low-demand tasks stay LITTLE only if their PELT load is small;
        // these are all CPU-bound so they will promote — but the balance
        // logic must still spread them across the two big cores rather
        // than stacking one.
        let mut sim = Simulation::new(sys, HlManager::new(HlConfig::new()));
        sim.run_for(SimDuration::from_secs(3));
        let on_core3 = sim.system().tasks_on(CoreId(3)).len();
        let on_core4 = sim.system().tasks_on(CoreId(4)).len();
        assert!(
            (on_core3 as i32 - on_core4 as i32).abs() <= 1,
            "big cores unbalanced: {on_core3} vs {on_core4}"
        );
    }
}
