//! The four agent roles of the market (§3.1), as pure decision functions.
//!
//! The paper realises each agent as a kernel module; here each agent's
//! decision rule is a standalone, independently-tested function, and the
//! [`crate::market::Market`] round engine wires them together in the
//! bid → price → purchase → regulate loop. Keeping them pure makes the
//! running examples replayable and the rules testable in isolation.

use ppm_platform::units::{Money, Price, ProcessingUnits};

use crate::market::VfStep;

/// Task-agent decisions: bidding (§3.2.1).
pub mod task_agent {
    use super::*;

    /// Eq. 1: the bid for round N+1 from round N's demand, supply and
    /// price, clamped into `[b_min, allowance + savings]`.
    ///
    /// ```
    /// use ppm_core::agents::task_agent::next_bid;
    /// use ppm_platform::units::{Money, Price, ProcessingUnits};
    ///
    /// // Table 1, round 2: b = 1 + (200-150)·(1/150) ... with P=0.00667.
    /// let b = next_bid(
    ///     Money(1.0),
    ///     ProcessingUnits(200.0),
    ///     ProcessingUnits(150.0),
    ///     Price(2.0 / 300.0),
    ///     Money(10.0),
    ///     Money(0.01),
    /// );
    /// assert!((b.value() - 1.3333).abs() < 1e-3);
    /// ```
    pub fn next_bid(
        prev_bid: Money,
        prev_demand: ProcessingUnits,
        prev_supply: ProcessingUnits,
        prev_price: Price,
        cap: Money,
        min_bid: Money,
    ) -> Money {
        let adjust = prev_price * (prev_demand - prev_supply);
        (prev_bid + adjust).clamp(min_bid, cap.max(min_bid))
    }

    /// Savings update after a round: `m' = m + a − b`, floored at zero and
    /// capped at `cap_factor · a` (§3.2.3 *Savings*).
    pub fn next_savings(savings: Money, allowance: Money, bid: Money, cap_factor: f64) -> Money {
        (savings + allowance - bid).clamp(Money::ZERO, allowance * cap_factor)
    }
}

/// Core-agent decisions: price discovery and distribution (§3.2.1).
pub mod core_agent {
    use super::*;

    /// Discover the price `P_c = Σ b_t / S_c` and each bidder's purchase
    /// `s_t = b_t / P_c`. An idle or gated core (zero supply) prices at
    /// zero and sells nothing.
    ///
    /// The purchases always exhaust the supply: `Σ s_t = S_c` whenever any
    /// bid is positive.
    pub fn discover(bids: &[Money], supply: ProcessingUnits) -> (Price, Vec<ProcessingUnits>) {
        let total: Money = bids.iter().copied().sum();
        let price = Price::discover(total, supply);
        let purchases = bids.iter().map(|&b| price.purchase(b)).collect();
        (price, purchases)
    }
}

/// Cluster-agent decisions: inflation/deflation control via DVFS (§3.2.2).
pub mod cluster_agent {
    use super::*;

    /// Everything a cluster agent looks at in one round.
    #[derive(Debug, Clone, Copy)]
    pub struct ClusterView {
        /// Current price on the constrained core.
        pub price: Price,
        /// The anchored base price.
        pub base_price: Price,
        /// Tolerance factor δ.
        pub tolerance: f64,
        /// Whether a higher V-F level exists.
        pub can_step_up: bool,
        /// Per-core supply one level down, when a lower level exists.
        pub supply_down: Option<ProcessingUnits>,
        /// Demand of the constrained core.
        pub constrained_demand: ProcessingUnits,
        /// Whether the chip is in the emergency state.
        pub emergency: bool,
    }

    /// The cluster agent's step decision:
    ///
    /// * **Emergency**: step down unconditionally — power "must be brought
    ///   down quickly", and with bids on the `b_min` floor the deflation
    ///   signal disappears.
    /// * **Inflation** (`P ≥ base·(1+δ)`): step up if possible.
    /// * **Deflation** (`P ≤ base·(1−δ)`): step down, unless the lower
    ///   level would not cover the constrained demand (§3.2.4's
    ///   round-demand-up rule).
    pub fn decide_step(view: ClusterView) -> Option<VfStep> {
        if view.emergency {
            return view.supply_down.map(|_| VfStep::Down);
        }
        if view.price.value() >= view.base_price.inflated_by(view.tolerance).value() {
            if view.can_step_up {
                return Some(VfStep::Up);
            }
        } else if view.price.value() <= view.base_price.deflated_by(view.tolerance).value() {
            if let Some(down) = view.supply_down {
                if down >= view.constrained_demand {
                    return Some(VfStep::Down);
                }
            }
        }
        None
    }
}

/// Chip-agent decisions: allowance distribution (§3.2.3). The Δ policy
/// itself lives in [`crate::state::allowance_delta`].
pub mod chip_agent {
    use super::*;

    /// Distribute the global allowance `A` over clusters inversely to their
    /// power draw: `A_v = A·(W−W_v)/W`, normalised over the clusters that
    /// host tasks. Falls back to priority-proportional weights when the
    /// power readings carry no signal (boot, or a single active cluster).
    ///
    /// `clusters` supplies `(cluster power W_v, summed priority R_v)`;
    /// entries with zero priority mass receive nothing. Returns one
    /// allowance per entry; the results sum to `A` (money conservation)
    /// whenever any entry has priority mass.
    pub fn distribute(allowance: Money, chip_power: f64, clusters: &[(f64, u32)]) -> Vec<Money> {
        let powers: Vec<f64> = clusters.iter().map(|&(w, _)| w).collect();
        let masses: Vec<u32> = clusters.iter().map(|&(_, r)| r).collect();
        let mut out = Vec::new();
        distribute_into(allowance, chip_power, &powers, &masses, &mut out);
        out
    }

    /// [`distribute`] into a caller-provided buffer, with the cluster stats
    /// as parallel slices: the market's hot path calls this once per round
    /// with reusable scratch, so no allocation happens in steady state.
    /// Weights are recomputed instead of stored; the arithmetic (and thus
    /// the result, bit for bit) matches `distribute`.
    pub fn distribute_into(
        allowance: Money,
        chip_power: f64,
        cluster_power: &[f64],
        priority_mass: &[u32],
        out: &mut Vec<Money>,
    ) {
        assert_eq!(cluster_power.len(), priority_mass.len());
        out.clear();
        out.resize(cluster_power.len(), Money::ZERO);
        let active_count = priority_mass.iter().filter(|&&r| r > 0).count();
        if active_count == 0 {
            return;
        }
        let power_weight = |i: usize| -> f64 {
            if active_count == 1 {
                1.0
            } else if chip_power > 1e-9 {
                ((chip_power - cluster_power[i]) / chip_power).max(0.0)
            } else {
                0.0
            }
        };
        let mut sum = 0.0;
        for (i, &mass) in priority_mass.iter().enumerate() {
            if mass > 0 {
                sum += power_weight(i);
            }
        }
        let fall_back = sum <= 1e-12;
        if fall_back {
            sum = 0.0;
            for &mass in priority_mass {
                if mass > 0 {
                    sum += mass as f64;
                }
            }
        }
        for i in 0..cluster_power.len() {
            if priority_mass[i] == 0 {
                continue;
            }
            let w = if fall_back {
                priority_mass[i] as f64
            } else {
                power_weight(i)
            };
            out[i] = allowance * (w / sum);
        }
    }

    /// Split a cluster allowance among its tasks proportionally to priority:
    /// `a_t = A_v · r_t / R_v` (the core-level split `A_c·r_t/R_c` composes
    /// to the same values).
    pub fn split_by_priority(cluster_allowance: Money, priorities: &[u32]) -> Vec<Money> {
        let total: u32 = priorities.iter().sum();
        if total == 0 {
            return vec![Money::ZERO; priorities.len()];
        }
        priorities
            .iter()
            .map(|&r| cluster_allowance * (r as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bid_clamps_to_floor_and_cap() {
        let b = task_agent::next_bid(
            Money(1.0),
            ProcessingUnits(0.0),
            ProcessingUnits(1000.0),
            Price(1.0),
            Money(5.0),
            Money(0.01),
        );
        assert_eq!(b, Money(0.01), "deep deflation floors at b_min");
        let b = task_agent::next_bid(
            Money(1.0),
            ProcessingUnits(1000.0),
            ProcessingUnits(0.0),
            Price(1.0),
            Money(5.0),
            Money(0.01),
        );
        assert_eq!(b, Money(5.0), "deep inflation caps at a+m");
    }

    #[test]
    fn savings_follow_the_surplus() {
        let m = task_agent::next_savings(Money(1.0), Money(3.0), Money(2.0), 10.0);
        assert_eq!(m, Money(2.0)); // +1 surplus
        let m = task_agent::next_savings(Money(1.0), Money(3.0), Money(5.0), 10.0);
        assert_eq!(m, Money::ZERO); // overdraft clamps at zero
        let m = task_agent::next_savings(Money(100.0), Money(3.0), Money(0.5), 2.0);
        assert_eq!(m, Money(6.0)); // cap at 2x allowance
    }

    #[test]
    fn price_discovery_sells_everything() {
        let bids = vec![Money(1.0), Money(3.0)];
        let (price, purchases) = core_agent::discover(&bids, ProcessingUnits(400.0));
        assert!((price.value() - 0.01).abs() < 1e-12);
        assert!((purchases[0].value() - 100.0).abs() < 1e-9);
        assert!((purchases[1].value() - 300.0).abs() < 1e-9);
        let total: f64 = purchases.iter().map(|p| p.value()).sum();
        assert!((total - 400.0).abs() < 1e-9);
    }

    #[test]
    fn gated_core_sells_nothing() {
        let (price, purchases) = core_agent::discover(&[Money(1.0)], ProcessingUnits::ZERO);
        assert_eq!(price, Price::ZERO);
        assert_eq!(purchases[0], ProcessingUnits::ZERO);
    }

    #[test]
    fn cluster_agent_band_logic() {
        use cluster_agent::{decide_step, ClusterView};
        let base = ClusterView {
            price: Price(0.0066),
            base_price: Price(0.0066),
            tolerance: 0.2,
            can_step_up: true,
            supply_down: Some(ProcessingUnits(300.0)),
            constrained_demand: ProcessingUnits(250.0),
            emergency: false,
        };
        // Inside the band: hold.
        assert_eq!(decide_step(base), None);
        // Inflation: up.
        let mut v = base;
        v.price = Price(0.0066 * 1.25);
        assert_eq!(decide_step(v), Some(VfStep::Up));
        // Inflation at the top level: nothing to do.
        v.can_step_up = false;
        assert_eq!(decide_step(v), None);
        // Deflation with room below: down.
        let mut v = base;
        v.price = Price(0.0066 * 0.7);
        assert_eq!(decide_step(v), Some(VfStep::Down));
        // Deflation blocked by the round-up guard.
        v.constrained_demand = ProcessingUnits(350.0);
        assert_eq!(decide_step(v), None);
        // Emergency overrides everything.
        v.emergency = true;
        v.price = base.price;
        assert_eq!(decide_step(v), Some(VfStep::Down));
    }

    #[test]
    fn allowance_distribution_is_power_inverse_and_conserving() {
        use chip_agent::distribute;
        // Two clusters, the second burns 3x the power of the first.
        let out = distribute(Money(8.0), 4.0, &[(1.0, 2), (3.0, 2)]);
        let total: f64 = out.iter().map(|m| m.value()).sum();
        assert!((total - 8.0).abs() < 1e-9, "conservation");
        assert!(out[0] > out[1], "power-hungry cluster gets less");
        assert!((out[0].value() - 6.0).abs() < 1e-9); // (4-1)/4 normalized over (3/4 + 1/4)
        assert!((out[1].value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_falls_back_to_priorities_without_power_signal() {
        use chip_agent::distribute;
        let out = distribute(Money(9.0), 0.0, &[(0.0, 1), (0.0, 2)]);
        assert!((out[0].value() - 3.0).abs() < 1e-9);
        assert!((out[1].value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_clusters_receive_nothing() {
        use chip_agent::distribute;
        let out = distribute(Money(5.0), 2.0, &[(1.0, 3), (1.0, 0)]);
        assert_eq!(out[1], Money::ZERO);
        assert!((out[0].value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn priority_split_matches_table3() {
        use chip_agent::split_by_priority;
        // Table 3: A=$4.5 over priorities 2:1 -> $3.0/$1.5.
        let out = split_by_priority(Money(4.5), &[2, 1]);
        assert!((out[0].value() - 3.0).abs() < 1e-12);
        assert!((out[1].value() - 1.5).abs() < 1e-12);
        // Degenerate: all-zero priorities.
        assert_eq!(split_by_priority(Money(4.5), &[0, 0]), vec![Money::ZERO; 2]);
    }
}
