//! The supply-demand module (§3.2): task bidding, core price discovery,
//! cluster inflation/deflation control, and chip-level allowance control.
//!
//! The market is deliberately decoupled from the simulation executor: it
//! consumes a [`MarketObs`] snapshot (what the distributed agents would
//! observe through message passing) and emits a [`MarketDecision`] (shares
//! to grant, DVFS steps to request, the new global allowance). This makes
//! the running examples of Tables 1–3 directly replayable — see the golden
//! tests at the bottom of this module — and lets the scalability harness
//! drive the market without hardware.

use std::collections::HashMap;
use std::fmt;

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::units::{Money, Price, ProcessingUnits, Watts};
use ppm_workload::task::TaskId;

use crate::agents::{chip_agent, cluster_agent, core_agent, task_agent};
use crate::config::PpmConfig;
use crate::state::{allowance_delta, PowerState};

/// What a task agent reports for one bidding round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskObs {
    /// The task.
    pub id: TaskId,
    /// The core it is mapped to (`c_t`).
    pub core: CoreId,
    /// Its user priority `r_t`.
    pub priority: u32,
    /// Its current demand `d_t` on its current core type, in PU.
    pub demand: ProcessingUnits,
}

/// What a core agent knows about its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreObs {
    /// The core.
    pub id: CoreId,
    /// Its V-F cluster.
    pub cluster: ClusterId,
}

/// What a cluster agent observes about its regulator and power sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterObs {
    /// The cluster.
    pub id: ClusterId,
    /// Current per-core supply `S_v` (0 when gated).
    pub supply: ProcessingUnits,
    /// Per-core supply one V-F level up, if not already at the top.
    pub supply_up: Option<ProcessingUnits>,
    /// Per-core supply one V-F level down, if not already at the bottom.
    pub supply_down: Option<ProcessingUnits>,
    /// Cluster power sensor reading `W_v`.
    pub power: Watts,
}

/// A full observation snapshot for one bidding round.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketObs {
    /// Chip power sensor reading `W`.
    pub chip_power: Watts,
    /// All task observations.
    pub tasks: Vec<TaskObs>,
    /// All cores (including idle ones).
    pub cores: Vec<CoreObs>,
    /// All clusters.
    pub clusters: Vec<ClusterObs>,
}

/// A DVFS step requested by a cluster agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfStep {
    /// Raise the V-F level by one (fight inflation).
    Up,
    /// Lower the V-F level by one (fight deflation).
    Down,
}

/// Per-task outcome of one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRound {
    /// The task.
    pub id: TaskId,
    /// Allowance `a_t` granted this round.
    pub allowance: Money,
    /// Bid `b_t` placed this round.
    pub bid: Money,
    /// Savings `m_t` after this round.
    pub savings: Money,
    /// Supply `s_t` purchased this round.
    pub supply: ProcessingUnits,
    /// Demand `d_t` observed this round.
    pub demand: ProcessingUnits,
}

/// The market's decision for one round.
#[derive(Debug, Clone)]
pub struct MarketDecision {
    /// Supply to grant each task (`s_t = b_t / P_c`).
    pub shares: Vec<(TaskId, ProcessingUnits)>,
    /// DVFS steps requested by cluster agents.
    pub dvfs: Vec<(ClusterId, VfStep)>,
    /// Chip power state this round.
    pub state: PowerState,
    /// Global allowance `A` for the next round.
    pub allowance: Money,
    /// Per-core prices discovered this round.
    pub prices: Vec<(CoreId, Price)>,
    /// Per-task dynamics (bids, savings, …) for tracing and the running
    /// examples.
    pub tasks: Vec<TaskRound>,
    /// Total chip demand `D` (sum of constrained-core demands).
    pub total_demand: ProcessingUnits,
    /// Total chip supply `S` (sum of cluster supplies).
    pub total_supply: ProcessingUnits,
}

#[derive(Debug, Clone)]
struct TaskAgent {
    bid: Money,
    savings: Money,
    /// `d_t` and `s_t` of the previous round and the price paid, which drive
    /// the next bid (Eq. 1 uses round-N quantities for the round-N+1 bid).
    prev_demand: ProcessingUnits,
    prev_supply: ProcessingUnits,
    prev_price: Price,
    seen: bool,
}

#[derive(Debug, Clone, Default)]
struct ClusterAgent {
    base_price: Price,
    has_base: bool,
    /// True while the regulator is switching: bids frozen, base price will
    /// be re-anchored at the next observed price.
    frozen: bool,
    /// Price observed in the previous round (for climb detection).
    last_price: Price,
}

/// The supply-demand module: all agent state plus the round engine.
#[derive(Debug, Clone)]
pub struct Market {
    config: PpmConfig,
    tasks: HashMap<TaskId, TaskAgent>,
    clusters: HashMap<ClusterId, ClusterAgent>,
    /// Global allowance `A`.
    allowance: Option<Money>,
    state: PowerState,
    round: u64,
    /// Rounds remaining before another emergency cut may fire.
    emergency_cooldown: u32,
    /// The bid every new task agent starts with (the paper's examples start
    /// at $1).
    initial_bid: Money,
}

impl Market {
    /// Rounds the chip agent waits between consecutive emergency allowance
    /// cuts, so one cut's effect (deflation, V-F steps) is observed before
    /// cutting again — Table 3 holds `A` for two rounds after the cut.
    pub const EMERGENCY_COOLDOWN_ROUNDS: u32 = 2;

    /// A market with no agents yet.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: PpmConfig) -> Market {
        config.validate().expect("valid PPM configuration");
        Market {
            config,
            tasks: HashMap::new(),
            clusters: HashMap::new(),
            allowance: None,
            state: PowerState::Normal,
            round: 0,
            emergency_cooldown: 0,
            initial_bid: Money(1.0),
        }
    }

    /// Override the bid new task agents start with (defaults to $1).
    pub fn set_initial_bid(&mut self, bid: Money) {
        self.initial_bid = bid;
    }

    /// The configuration in force.
    pub fn config(&self) -> &PpmConfig {
        &self.config
    }

    /// The current chip power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The current global allowance, if the chip agent has initialised.
    pub fn allowance(&self) -> Option<Money> {
        self.allowance
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// A task agent's current savings `m_t`.
    pub fn savings_of(&self, id: TaskId) -> Money {
        self.tasks.get(&id).map_or(Money::ZERO, |a| a.savings)
    }

    /// A task agent's current bid `b_t`.
    pub fn bid_of(&self, id: TaskId) -> Money {
        self.tasks.get(&id).map_or(Money::ZERO, |a| a.bid)
    }

    /// Remove the agent of a departed task, returning its savings to the
    /// void (money supply is controlled by the chip agent anyway).
    pub fn remove_task(&mut self, id: TaskId) {
        self.tasks.remove(&id);
    }

    /// Execute one bidding round (§3.2.1–§3.2.3): distribute allowances,
    /// update bids, discover prices, purchase supply, update savings, run
    /// the cluster agents' inflation/deflation control and the chip agent's
    /// allowance control.
    pub fn round(&mut self, obs: &MarketObs) -> MarketDecision {
        self.round += 1;
        let core_cluster: HashMap<CoreId, ClusterId> =
            obs.cores.iter().map(|c| (c.id, c.cluster)).collect();
        let cluster_supply: HashMap<ClusterId, ClusterObs> =
            obs.clusters.iter().map(|c| (c.id, *c)).collect();

        // --- Group tasks by core and cluster. ---
        let mut tasks_by_core: HashMap<CoreId, Vec<&TaskObs>> = HashMap::new();
        for t in &obs.tasks {
            tasks_by_core.entry(t.core).or_default().push(t);
        }
        let mut tasks_by_cluster: HashMap<ClusterId, Vec<&TaskObs>> = HashMap::new();
        for t in &obs.tasks {
            let cl = core_cluster
                .get(&t.core)
                .copied()
                .expect("task core must be listed in obs.cores");
            tasks_by_cluster.entry(cl).or_default().push(t);
        }

        // --- Chip agent: initial allowance on first sight. ---
        let total_priority: u32 = obs.tasks.iter().map(|t| t.priority).sum();
        let allowance = *self.allowance.get_or_insert({
            Money(self.config.initial_allowance_per_priority * total_priority as f64)
        });

        // --- Hierarchical allowance distribution (§3.2.3): A -> A_v
        // (inverse to cluster power) -> a_t (proportional to priority). ---
        let cluster_stats: Vec<(f64, u32)> = obs
            .clusters
            .iter()
            .map(|c| {
                let r = tasks_by_cluster
                    .get(&c.id)
                    .map_or(0, |ts| ts.iter().map(|t| t.priority).sum());
                (c.power.value(), r)
            })
            .collect();
        let cluster_allowances =
            chip_agent::distribute(allowance, obs.chip_power.value(), &cluster_stats);
        let mut task_allowance: HashMap<TaskId, Money> = HashMap::new();
        for (c, av) in obs.clusters.iter().zip(&cluster_allowances) {
            let Some(ts) = tasks_by_cluster.get(&c.id) else {
                continue;
            };
            let priorities: Vec<u32> = ts.iter().map(|t| t.priority).collect();
            for (t, a) in ts.iter().zip(chip_agent::split_by_priority(*av, &priorities)) {
                task_allowance.insert(t.id, a);
            }
        }

        // --- Task agents bid (Eq. 1). ---
        let mut bids: HashMap<TaskId, Money> = HashMap::new();
        for t in &obs.tasks {
            let cl = core_cluster[&t.core];
            let frozen = self.clusters.get(&cl).is_some_and(|c| c.frozen);
            let a = task_allowance
                .get(&t.id)
                .copied()
                .unwrap_or(Money::ZERO);
            let agent = self.tasks.entry(t.id).or_insert_with(|| TaskAgent {
                bid: Money::ZERO,
                savings: Money::ZERO,
                prev_demand: t.demand,
                prev_supply: ProcessingUnits::ZERO,
                prev_price: Price::ZERO,
                seen: false,
            });
            let cap = a + agent.savings;
            let bid = if !agent.seen {
                agent.seen = true;
                self.initial_bid.clamp(self.config.min_bid, cap.max(self.config.min_bid))
            } else if frozen {
                agent.bid
            } else {
                task_agent::next_bid(
                    agent.bid,
                    agent.prev_demand,
                    agent.prev_supply,
                    agent.prev_price,
                    cap,
                    self.config.min_bid,
                )
            };
            agent.bid = bid;
            bids.insert(t.id, bid);
        }

        // --- Core agents: price discovery and purchases. ---
        let mut prices: Vec<(CoreId, Price)> = Vec::new();
        let mut price_of_core: HashMap<CoreId, Price> = HashMap::new();
        let mut shares: Vec<(TaskId, ProcessingUnits)> = Vec::new();
        let mut supply_of_task: HashMap<TaskId, ProcessingUnits> = HashMap::new();
        for (&core, ts) in &tasks_by_core {
            let cl = core_cluster[&core];
            let sc = cluster_supply[&cl].supply;
            let core_bids: Vec<Money> = ts.iter().map(|t| bids[&t.id]).collect();
            let (price, purchases) = core_agent::discover(&core_bids, sc);
            prices.push((core, price));
            price_of_core.insert(core, price);
            for (t, s) in ts.iter().zip(purchases) {
                shares.push((t.id, s));
                supply_of_task.insert(t.id, s);
            }
        }
        prices.sort_by_key(|(c, _)| *c);
        shares.sort_by_key(|(t, _)| *t);

        // --- Savings update and agent memory. ---
        let mut task_rounds: Vec<TaskRound> = Vec::new();
        for t in &obs.tasks {
            let a = task_allowance.get(&t.id).copied().unwrap_or(Money::ZERO);
            let s = supply_of_task
                .get(&t.id)
                .copied()
                .unwrap_or(ProcessingUnits::ZERO);
            let p = price_of_core
                .get(&t.core)
                .copied()
                .unwrap_or(Price::ZERO);
            let agent = self.tasks.get_mut(&t.id).expect("agent created above");
            agent.savings = task_agent::next_savings(
                agent.savings,
                a,
                agent.bid,
                self.config.savings_cap_factor,
            );
            agent.prev_demand = t.demand;
            agent.prev_supply = s;
            agent.prev_price = p;
            task_rounds.push(TaskRound {
                id: t.id,
                allowance: a,
                bid: agent.bid,
                savings: agent.savings,
                supply: s,
                demand: t.demand,
            });
        }
        task_rounds.sort_by_key(|t| t.id);

        // --- Cluster agents: inflation/deflation control (§3.2.2). ---
        let mut dvfs: Vec<(ClusterId, VfStep)> = Vec::new();
        // Clusters whose market is already reacting to under-supply (price
        // climbing towards the inflation threshold, or a V-F switch in
        // flight): the chip agent leaves those to the cluster agents.
        let mut reacting: std::collections::HashSet<ClusterId> = std::collections::HashSet::new();
        for c in &obs.clusters {
            let Some(ts) = tasks_by_cluster.get(&c.id) else {
                continue;
            };
            // Constrained core: highest summed demand in the cluster.
            let mut per_core: HashMap<CoreId, ProcessingUnits> = HashMap::new();
            for t in ts {
                *per_core.entry(t.core).or_insert(ProcessingUnits::ZERO) += t.demand;
            }
            let (constrained, constrained_demand) = per_core
                .iter()
                .max_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(a.0)) // deterministic tie-break: lowest id
                })
                .map(|(c, d)| (*c, *d))
                .expect("cluster has tasks");
            let price = price_of_core
                .get(&constrained)
                .copied()
                .unwrap_or(Price::ZERO);
            let agent = self.clusters.entry(c.id).or_default();
            if agent.frozen || !agent.has_base {
                // First observation at the (possibly new) supply anchors
                // the base price; bids were held while switching.
                agent.base_price = price;
                agent.has_base = true;
                agent.frozen = false;
                agent.last_price = price;
                reacting.insert(c.id);
                continue;
            }
            // The market is reacting on its own while the price climbs:
            // the chip agent holds the money supply meanwhile.
            if price.value() > agent.last_price.value() * 1.02 {
                reacting.insert(c.id);
            }
            agent.last_price = price;
            // The agent's step rule (see `agents::cluster_agent`): forced
            // step-down in the emergency state, else the ±δ band around the
            // base price with the §3.2.4 round-demand-up guard.
            let step = cluster_agent::decide_step(cluster_agent::ClusterView {
                price,
                base_price: agent.base_price,
                tolerance: self.config.tolerance,
                can_step_up: c.supply_up.is_some(),
                supply_down: c.supply_down,
                constrained_demand,
                emergency: self.state == PowerState::Emergency,
            });
            if let Some(step) = step {
                dvfs.push((c.id, step));
                agent.frozen = true;
            }
        }

        // --- Chip agent: state classification and allowance control. ---
        let state = PowerState::classify(obs.chip_power, &self.config);
        let mut total_demand = ProcessingUnits::ZERO;
        let mut total_supply = ProcessingUnits::ZERO;
        // "The allowance is increased … when the demand is not satisfied in
        // at least one of the clusters" (§3.2.3). The deficit is evaluated
        // per cluster — netting a starved cluster against another cluster's
        // surplus would deadlock the money supply (the starved cluster's
        // agents stay bid-capped forever while the chip sees D ≈ S). The
        // growth rate follows the worst cluster's relative deficit.
        // Extra money only helps when some under-supplied cluster can still
        // raise its V-F level; growing the allowance with every regulator
        // already at its top merely inflates prices (and savings) without
        // adding a single PU.
        let mut growth_helps = false;
        let mut worst_deficit: Option<(ProcessingUnits, ProcessingUnits)> = None;
        for c in &obs.clusters {
            total_supply += c.supply;
            if let Some(ts) = tasks_by_cluster.get(&c.id) {
                let mut per_core: HashMap<CoreId, ProcessingUnits> = HashMap::new();
                for t in ts {
                    *per_core.entry(t.core).or_insert(ProcessingUnits::ZERO) += t.demand;
                }
                let dv = per_core
                    .values()
                    .copied()
                    .fold(ProcessingUnits::ZERO, ProcessingUnits::max);
                total_demand += dv;
                if dv > c.supply && c.supply_up.is_some() && !reacting.contains(&c.id) {
                    if std::env::var_os("PPM_DEBUG_GROWTH").is_some() {
                        eprintln!(
                            "round {}: growth on {}: Dv={} Sv={} reacting={:?}",
                            self.round, c.id, dv, c.supply, reacting
                        );
                    }
                    growth_helps = true;
                    let rate = (dv - c.supply).value() / dv.value();
                    let worse = worst_deficit
                        .is_none_or(|(d, s)| rate > (d - s).value() / d.value());
                    if worse {
                        worst_deficit = Some((dv, c.supply));
                    }
                }
            }
        }
        let (deficit_demand, deficit_supply) =
            worst_deficit.unwrap_or((total_demand, total_supply));
        let delta = match state {
            PowerState::Emergency => {
                if self.emergency_cooldown == 0 {
                    self.emergency_cooldown = Self::EMERGENCY_COOLDOWN_ROUNDS;
                    allowance_delta(
                        state,
                        allowance,
                        total_demand,
                        total_supply,
                        obs.chip_power,
                        &self.config,
                    )
                } else {
                    self.emergency_cooldown -= 1;
                    Money::ZERO
                }
            }
            PowerState::Normal if !growth_helps => {
                self.emergency_cooldown = 0;
                Money::ZERO
            }
            PowerState::Normal => {
                self.emergency_cooldown = 0;
                allowance_delta(
                    state,
                    allowance,
                    deficit_demand,
                    deficit_supply,
                    obs.chip_power,
                    &self.config,
                )
            }
            _ => {
                self.emergency_cooldown = 0;
                allowance_delta(
                    state,
                    allowance,
                    total_demand,
                    total_supply,
                    obs.chip_power,
                    &self.config,
                )
            }
        };
        // Keep enough money in circulation for every agent's minimum bid,
        // and bound the ratchet from repeated normal-state growth: the
        // market is scale-free (bids, savings caps and prices all track A),
        // so the ceiling only guards floating-point hygiene.
        let floor = self.config.min_bid * obs.tasks.len().max(1) as f64;
        let ceiling = floor * 1e12;
        let next_allowance = (allowance + delta).clamp(floor, ceiling);
        self.allowance = Some(next_allowance);
        self.state = state;

        MarketDecision {
            shares,
            dvfs,
            state,
            allowance: next_allowance,
            prices,
            tasks: task_rounds,
            total_demand,
            total_supply,
        }
    }
}

impl fmt::Display for Market {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "market[round {}, state {}, A {}]",
            self.round,
            self.state,
            self.allowance.unwrap_or(Money::ZERO)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Harness replaying the paper's running examples: one cluster, one
    /// core, two tasks, a discrete supply ladder, and a synthetic power
    /// curve.
    struct Bench {
        market: Market,
        ladder: Vec<f64>,
        level: usize,
        demands: [f64; 2],
        priorities: [u32; 2],
        power: fn(f64) -> f64,
    }

    impl Bench {
        fn obs(&self) -> MarketObs {
            let supply = ProcessingUnits(self.ladder[self.level]);
            MarketObs {
                chip_power: Watts((self.power)(self.ladder[self.level])),
                tasks: vec![
                    TaskObs {
                        id: TaskId(0),
                        core: CoreId(0),
                        priority: self.priorities[0],
                        demand: ProcessingUnits(self.demands[0]),
                    },
                    TaskObs {
                        id: TaskId(1),
                        core: CoreId(0),
                        priority: self.priorities[1],
                        demand: ProcessingUnits(self.demands[1]),
                    },
                ],
                cores: vec![CoreObs {
                    id: CoreId(0),
                    cluster: ClusterId(0),
                }],
                clusters: vec![ClusterObs {
                    id: ClusterId(0),
                    supply,
                    supply_up: self
                        .ladder
                        .get(self.level + 1)
                        .map(|&s| ProcessingUnits(s)),
                    supply_down: if self.level > 0 {
                        Some(ProcessingUnits(self.ladder[self.level - 1]))
                    } else {
                        None
                    },
                    power: Watts((self.power)(self.ladder[self.level])),
                }],
            }
        }

        fn round(&mut self) -> MarketDecision {
            let d = self.market.round(&self.obs());
            for (_, step) in &d.dvfs {
                match step {
                    VfStep::Up => self.level = (self.level + 1).min(self.ladder.len() - 1),
                    VfStep::Down => self.level = self.level.saturating_sub(1),
                }
            }
            d
        }
    }

    fn table_bench() -> Bench {
        let mut config = PpmConfig::tc2();
        config.tolerance = 0.2;
        config.min_bid = Money(0.01);
        config.savings_cap_factor = 100.0; // the examples run uncapped
        config.tdp = Watts(2.25);
        config.threshold = Watts(1.75);
        Bench {
            market: Market::new(config),
            ladder: vec![300.0, 400.0, 500.0, 600.0],
            level: 0,
            demands: [200.0, 100.0],
            priorities: [2, 1],
            power: |s| {
                if s >= 600.0 {
                    3.0
                } else if s >= 500.0 {
                    2.0
                } else {
                    0.8
                }
            },
        }
    }

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table1_task_and_core_dynamics() {
        let mut b = table_bench();
        // Round 1: both bid $1, price 2/300, supplies 150/150.
        let r1 = b.round();
        assert!(approx(r1.tasks[0].bid.value(), 1.0, 1e-9));
        assert!(approx(r1.tasks[1].bid.value(), 1.0, 1e-9));
        assert!(approx(r1.prices[0].1.value(), 0.006667, 1e-4));
        assert!(approx(r1.tasks[0].supply.value(), 150.0, 1e-6));
        assert!(approx(r1.tasks[1].supply.value(), 150.0, 1e-6));
        // Round 2: bids 1.33/0.66, supplies 200/100 — demands met.
        let r2 = b.round();
        assert!(approx(r2.tasks[0].bid.value(), 1.3333, 1e-3));
        assert!(approx(r2.tasks[1].bid.value(), 0.6667, 1e-3));
        assert!(approx(r2.tasks[0].supply.value(), 200.0, 0.5));
        assert!(approx(r2.tasks[1].supply.value(), 100.0, 0.5));
        assert!(r2.dvfs.is_empty(), "market stable, no DVFS");
    }

    #[test]
    fn table2_cluster_dynamics() {
        // As in Table 2, the demand of ta jumps from 200 to 300 PU; the
        // price inflates to $0.0088 > $0.00796 = base·(1+δ) and the cluster
        // agent raises the supply from 300 to 400 PU. (Bids react to the
        // demand observed in the previous round, so the trace here runs one
        // round behind the paper's compressed narrative.)
        let mut b = table_bench();
        b.round();
        b.round();
        b.demands[0] = 300.0; // observed during round 3, bid on in round 4
        b.round();
        let r4 = b.round();
        assert!(approx(r4.tasks[0].bid.value(), 2.0, 1e-2)); // paper: 1.99
        assert!(approx(r4.prices[0].1.value(), 0.008889, 1e-4)); // paper: 0.0088
        assert!(approx(r4.tasks[0].supply.value(), 225.0, 1.0));
        assert!(approx(r4.tasks[1].supply.value(), 75.0, 1.0));
        assert_eq!(r4.dvfs, vec![(ClusterId(0), VfStep::Up)]);
        // Next round: bids frozen across the switch; the new price $0.0066
        // becomes the base; both tasks satisfied at 400 PU.
        let r5 = b.round();
        assert!(approx(r5.tasks[0].bid.value(), 2.0, 1e-2)); // unchanged
        assert!(approx(r5.prices[0].1.value(), 0.006667, 1e-4));
        assert!(approx(r5.tasks[0].supply.value(), 300.0, 1.0));
        assert!(approx(r5.tasks[1].supply.value(), 100.0, 1.0));
        assert!(r5.dvfs.is_empty());
    }

    #[test]
    fn table3_chip_dynamics_and_savings() {
        // Reproduces the Table 3 scenario: Wtdp = 2.25 W, Wth = 1.75 W,
        // priorities 2:1, power hitting 2 W at 500 PU (threshold) and 3 W
        // at 600 PU (emergency). Exact per-round money values differ
        // slightly from the paper's narrative (the chip agent here applies
        // the normal-state Δ literally every round), but every mechanism —
        // priority-proportional allowances, allowance growth under unmet
        // demand, the threshold freeze, the proportional emergency cut, the
        // savings dynamics, and the final stabilisation with the
        // high-priority task satisfied — is asserted.
        let mut b = table_bench();
        let r1 = b.round();
        // Initial allowance: 1.5 per priority unit × R=3 = $4.5, split 2:1.
        assert!(approx(r1.tasks[0].allowance.value(), 3.0, 1e-9));
        assert!(approx(r1.tasks[1].allowance.value(), 1.5, 1e-9));
        assert_eq!(r1.state, PowerState::Normal);
        let r2 = b.round();
        // Demands met at 300 PU: allowance unchanged at $4.5.
        assert!(approx(r2.allowance.value(), 4.5, 1e-9));
        // Savings accumulate the allowance surplus: ta saved (3−1)+(3−1.33),
        // tb saved (1.5−1)+(1.5−0.67).
        assert!(approx(r2.tasks[0].savings.value(), 3.67, 0.05));
        assert!(approx(r2.tasks[1].savings.value(), 1.33, 0.05));

        // Demand of ta jumps to 300: D=400 > S=300, so the chip agent grows
        // the allowance by Δ = A·(D−S)/D while the cluster steps to 400 PU.
        b.demands[0] = 300.0;
        let r3 = b.round();
        assert!(approx(r3.total_demand.value(), 400.0, 1e-9));
        assert!(r3.allowance.value() > 4.5);
        for _ in 0..3 {
            b.round();
        }
        assert_eq!(b.ladder[b.level], 400.0, "first inflation resolved");

        // Demand of tb jumps to 300: D=600. The market inflates through
        // 500 PU (threshold, 2 W) to 600 PU where power hits 3 W — the
        // emergency state — and the allowance is cut proportionally:
        // Δ/A = (Wtdp−W)/Wtdp = −1/3.
        b.demands[1] = 300.0;
        let mut seen_emergency = false;
        let mut allowance_before_cut = 0.0;
        for _ in 0..12 {
            let before = b.market.allowance().expect("initialised").value();
            let d = b.round();
            if d.state == PowerState::Emergency && !seen_emergency {
                seen_emergency = true;
                allowance_before_cut = before;
                assert!(
                    approx(d.allowance.value(), before * (1.0 - 1.0 / 3.0), 1e-6),
                    "emergency cut should be one third: {} -> {}",
                    before,
                    d.allowance.value()
                );
            }
        }
        assert!(seen_emergency, "overload must reach the emergency state");
        assert!(allowance_before_cut > 0.0);

        // The system must leave emergency and stabilise in the threshold
        // state at 500 PU with the high-priority task meeting its demand
        // (s_ta = 300) and the low-priority task suffering (s_tb = 200) —
        // Table 3, round 16.
        let mut last = None;
        for _ in 0..60 {
            last = Some(b.round());
        }
        let last = last.expect("ran rounds");
        assert_eq!(last.state, PowerState::Threshold);
        assert_eq!(b.ladder[b.level], 500.0, "stabilises at 500 PU");
        assert!(
            approx(last.tasks[0].supply.value(), 300.0, 10.0),
            "high-priority task meets demand: {:?}",
            last.tasks[0]
        );
        assert!(
            approx(last.tasks[1].supply.value(), 200.0, 10.0),
            "low-priority task suffers: {:?}",
            last.tasks[1]
        );
        assert!(last.dvfs.is_empty(), "no further V-F changes");
        // In the threshold state the allowance is frozen.
        let a_before = last.allowance.value();
        let again = b.round();
        assert!(approx(again.allowance.value(), a_before, 1e-9));
    }

    #[test]
    fn purchases_exhaust_the_core_supply() {
        // Price discovery sells exactly S_c: Σ s_t = S_c whenever bids > 0.
        let mut b = table_bench();
        for _ in 0..10 {
            let d = b.round();
            let total: f64 = d.shares.iter().map(|(_, s)| s.value()).sum();
            let supply = d.total_supply.value();
            assert!(approx(total, supply, 1e-6), "{total} vs {supply}");
        }
    }

    #[test]
    fn bids_never_leave_the_legal_interval() {
        let mut b = table_bench();
        b.demands = [500.0, 400.0];
        for _ in 0..50 {
            let d = b.round();
            for t in &d.tasks {
                assert!(t.bid.value() >= b.market.config().min_bid.value() - 1e-12);
                let cap = t.allowance.value()
                    + b.market.savings_of(t.id).value()
                    + t.allowance.value(); // savings already post-update; loose check
                assert!(t.bid.value() <= cap + 1e-6);
            }
        }
    }

    #[test]
    fn deflation_steps_down_when_demand_shrinks() {
        let mut b = table_bench();
        b.power = |_| 0.8; // stay in the normal state throughout
        b.demands = [300.0, 250.0]; // needs 600 PU
        for _ in 0..30 {
            b.round();
        }
        assert_eq!(b.ladder[b.level], 600.0);
        // Demand collapses; prices deflate; the ladder is descended all the
        // way to the minimum frequency (§3.2.4 scenario 1).
        b.demands = [100.0, 50.0];
        for _ in 0..60 {
            b.round();
        }
        assert_eq!(
            b.ladder[b.level], 300.0,
            "market should settle at the bottom level"
        );
    }

    #[test]
    fn normal_state_guard_prevents_level_oscillation() {
        // Demand 450 sits between the 400 and 500 supply points: the
        // market must settle at 500 (demand rounded up), not oscillate.
        let mut b = table_bench();
        b.demands = [250.0, 200.0];
        let mut levels = Vec::new();
        for _ in 0..80 {
            b.round();
            levels.push(b.ladder[b.level]);
        }
        let tail = &levels[40..];
        assert!(
            tail.iter().all(|&l| l == tail[0]),
            "levels still moving: {tail:?}"
        );
        assert_eq!(tail[0], 500.0);
    }

    #[test]
    fn higher_priority_attracts_more_allowance() {
        let mut b = table_bench();
        b.priorities = [7, 1];
        let d = b.round();
        let a0 = d.tasks[0].allowance.value();
        let a1 = d.tasks[1].allowance.value();
        assert!(approx(a0 / a1, 7.0, 1e-6));
    }

    #[test]
    fn savings_respect_the_cap() {
        let mut b = table_bench();
        b.market = Market::new({
            let mut c = PpmConfig::tc2();
            c.tdp = Watts(2.25);
            c.threshold = Watts(1.75);
            c.savings_cap_factor = 2.0;
            c
        });
        b.demands = [10.0, 10.0]; // trivial demand -> bids collapse, savings pile up
        for _ in 0..100 {
            let d = b.round();
            for t in &d.tasks {
                assert!(
                    t.savings.value() <= 2.0 * t.allowance.value() + 1e-9,
                    "savings {} exceed cap at allowance {}",
                    t.savings,
                    t.allowance
                );
            }
        }
    }

    #[test]
    fn allowance_never_falls_below_min_bid_floor() {
        let mut b = table_bench();
        // Force persistent emergency: every supply level burns > Wtdp.
        b.power = |_| 5.0;
        for _ in 0..200 {
            let d = b.round();
            assert!(d.allowance.value() >= 2.0 * 0.01 - 1e-12);
        }
    }

    #[test]
    fn removed_task_frees_agent_state() {
        let mut b = table_bench();
        b.round();
        assert!(b.market.bid_of(TaskId(0)).is_positive());
        b.market.remove_task(TaskId(0));
        assert_eq!(b.market.bid_of(TaskId(0)), Money::ZERO);
    }
}
