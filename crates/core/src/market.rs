//! The supply-demand module (§3.2): task bidding, core price discovery,
//! cluster inflation/deflation control, and chip-level allowance control.
//!
//! The market is deliberately decoupled from the simulation executor: it
//! consumes a [`MarketObs`] snapshot (what the distributed agents would
//! observe through message passing) and emits a [`MarketDecision`] (shares
//! to grant, DVFS steps to request, the new global allowance). This makes
//! the running examples of Tables 1–3 directly replayable — see the golden
//! tests at the bottom of this module — and lets the scalability harness
//! drive the market without hardware.
//!
//! # Hot path
//!
//! [`Market::round_into`] is the per-round engine and is written to be
//! allocation-free and hasher-independent in steady state (see
//! DESIGN.md, *Hot path & determinism*). Raw [`TaskId`]/[`CoreId`]/
//! [`ClusterId`] values are resolved once per round into dense slots via
//! epoch-stamped sparse maps; all per-round working sets live in reusable
//! scratch buffers inside the [`Market`]; persistent task agents live in a
//! slot arena with a free list. Every loop runs in observation order (or
//! dense slot order derived from it), so a round's outcome is a pure
//! function of the market state and the snapshot — no `HashMap` iteration
//! order can leak into results.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ppm_obs::{lap, Phase, PhaseProfiler};
use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::units::{Money, Price, ProcessingUnits, Watts};
use ppm_workload::task::TaskId;

use crate::agents::{chip_agent, cluster_agent, task_agent};
use crate::config::PpmConfig;
use crate::pool::WorkerPool;
use crate::state::{allowance_delta, PowerState};

/// Sentinel for "no slot" in the dense index arenas.
const SLOT_NONE: u32 = u32::MAX;

/// What a task agent reports for one bidding round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskObs {
    /// The task.
    pub id: TaskId,
    /// The core it is mapped to (`c_t`).
    pub core: CoreId,
    /// Its user priority `r_t`.
    pub priority: u32,
    /// Its current demand `d_t` on its current core type, in PU.
    pub demand: ProcessingUnits,
}

/// What a core agent knows about its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreObs {
    /// The core.
    pub id: CoreId,
    /// Its V-F cluster.
    pub cluster: ClusterId,
}

/// What a cluster agent observes about its regulator and power sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterObs {
    /// The cluster.
    pub id: ClusterId,
    /// Current per-core supply `S_v` (0 when gated).
    pub supply: ProcessingUnits,
    /// Per-core supply one V-F level up, if not already at the top.
    pub supply_up: Option<ProcessingUnits>,
    /// Per-core supply one V-F level down, if not already at the bottom.
    pub supply_down: Option<ProcessingUnits>,
    /// Cluster power sensor reading `W_v`.
    pub power: Watts,
}

/// A full observation snapshot for one bidding round.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketObs {
    /// Chip power sensor reading `W`.
    pub chip_power: Watts,
    /// All task observations.
    pub tasks: Vec<TaskObs>,
    /// All cores (including idle ones).
    pub cores: Vec<CoreObs>,
    /// All clusters.
    pub clusters: Vec<ClusterObs>,
}

impl MarketObs {
    /// An empty snapshot, useful as a reusable buffer.
    pub fn empty() -> MarketObs {
        MarketObs {
            chip_power: Watts(0.0),
            tasks: Vec::new(),
            cores: Vec::new(),
            clusters: Vec::new(),
        }
    }
}

/// A DVFS step requested by a cluster agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfStep {
    /// Raise the V-F level by one (fight inflation).
    Up,
    /// Lower the V-F level by one (fight deflation).
    Down,
}

/// Per-task outcome of one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRound {
    /// The task.
    pub id: TaskId,
    /// Allowance `a_t` granted this round.
    pub allowance: Money,
    /// Bid `b_t` placed this round.
    pub bid: Money,
    /// Savings `m_t` after this round.
    pub savings: Money,
    /// Supply `s_t` purchased this round.
    pub supply: ProcessingUnits,
    /// Demand `d_t` observed this round.
    pub demand: ProcessingUnits,
}

/// The market's decision for one round.
///
/// All vectors are sorted by their id key, so two decisions are comparable
/// field-by-field and the sequence of decisions is reproducible
/// byte-for-byte across runs.
#[derive(Debug, Clone)]
pub struct MarketDecision {
    /// Supply to grant each task (`s_t = b_t / P_c`), sorted by task id.
    pub shares: Vec<(TaskId, ProcessingUnits)>,
    /// DVFS steps requested by cluster agents, in observation order.
    pub dvfs: Vec<(ClusterId, VfStep)>,
    /// Chip power state this round.
    pub state: PowerState,
    /// Global allowance `A` for the next round.
    pub allowance: Money,
    /// Per-core prices discovered this round, sorted by core id.
    pub prices: Vec<(CoreId, Price)>,
    /// Per-task dynamics (bids, savings, …) for tracing and the running
    /// examples, sorted by task id.
    pub tasks: Vec<TaskRound>,
    /// Tasks skipped this round because their core (or its cluster) was
    /// missing from the observation — a scheduler/observer race. They keep
    /// their agent state and rejoin the market once the mapping heals.
    pub orphans: Vec<(TaskId, CoreId)>,
    /// Total chip demand `D` (sum of constrained-core demands).
    pub total_demand: ProcessingUnits,
    /// Total chip supply `S` (sum of cluster supplies).
    pub total_supply: ProcessingUnits,
}

impl Default for MarketDecision {
    fn default() -> MarketDecision {
        MarketDecision {
            shares: Vec::new(),
            dvfs: Vec::new(),
            state: PowerState::Normal,
            allowance: Money::ZERO,
            prices: Vec::new(),
            tasks: Vec::new(),
            orphans: Vec::new(),
            total_demand: ProcessingUnits::ZERO,
            total_supply: ProcessingUnits::ZERO,
        }
    }
}

impl MarketDecision {
    /// Reset for reuse as a `round_into` output buffer; capacity is kept.
    fn reset(&mut self) {
        self.shares.clear();
        self.dvfs.clear();
        self.prices.clear();
        self.tasks.clear();
        self.orphans.clear();
        self.state = PowerState::Normal;
        self.allowance = Money::ZERO;
        self.total_demand = ProcessingUnits::ZERO;
        self.total_supply = ProcessingUnits::ZERO;
    }
}

/// Persistent per-task agent state, stored in a slot arena.
#[derive(Debug, Clone, Copy)]
struct TaskAgent {
    bid: Money,
    savings: Money,
    /// `d_t` and `s_t` of the previous round and the price paid, which drive
    /// the next bid (Eq. 1 uses round-N quantities for the round-N+1 bid).
    prev_demand: ProcessingUnits,
    prev_supply: ProcessingUnits,
    prev_price: Price,
    seen: bool,
}

impl TaskAgent {
    fn fresh(demand: ProcessingUnits) -> TaskAgent {
        TaskAgent {
            bid: Money::ZERO,
            savings: Money::ZERO,
            prev_demand: demand,
            prev_supply: ProcessingUnits::ZERO,
            prev_price: Price::ZERO,
            seen: false,
        }
    }
}

/// Persistent per-cluster agent state, indexed directly by raw cluster id
/// (clusters are few and densely numbered).
#[derive(Debug, Clone, Copy, Default)]
struct ClusterAgent {
    base_price: Price,
    has_base: bool,
    /// True while the regulator is switching: bids frozen, base price will
    /// be re-anchored at the next observed price.
    frozen: bool,
    /// Price observed in the previous round (for climb detection).
    last_price: Price,
}

/// Reusable per-round working sets. Sized to the snapshot each round
/// (`clear` + `resize` keeps capacity), so after warm-up a round touches no
/// allocator at all.
///
/// The raw-id → slot maps are *epoch stamped*: instead of clearing a sparse
/// `Vec` that may span the whole id space, each entry records the round
/// epoch it was written in, and a lookup only trusts entries stamped with
/// the current epoch. Invalidation is a single counter bump.
#[derive(Debug, Clone, Default)]
struct RoundScratch {
    epoch: u32,
    /// Raw `CoreId` → dense core slot for this round.
    core_map_epoch: Vec<u32>,
    core_map_slot: Vec<u32>,
    /// Raw `ClusterId` → dense cluster slot for this round.
    cluster_map_epoch: Vec<u32>,
    cluster_map_slot: Vec<u32>,

    // Per-core (dense, obs.cores order):
    core_cluster: Vec<u32>,
    core_bids: Vec<Money>,
    core_price: Vec<Price>,
    core_demand: Vec<ProcessingUnits>,
    core_tasks: Vec<u32>,

    // Per-task (dense, obs.tasks order):
    t_core: Vec<u32>,
    t_cluster: Vec<u32>,
    t_agent: Vec<u32>,
    t_allow: Vec<Money>,
    t_bid: Vec<Money>,

    // Per-cluster (dense, obs.clusters order):
    cl_priority: Vec<u32>,
    cl_tasks: Vec<u32>,
    cl_allow: Vec<Money>,
    cl_power: Vec<f64>,
    cl_reacting: Vec<bool>,
    cl_constrained: Vec<u32>,
    cl_constr_demand: Vec<ProcessingUnits>,

    // Sharded-round traversal structures (DESIGN.md §13), built only while
    // a worker pool is attached. Their validity rides the stage-skip logic
    // exactly like the maps they derive from: the cluster→core CSR is
    // rebuilt with stage A, the core→task CSR with stage B.
    /// Cluster slot → offset into `cl_core_list` (CSR, `nclusters + 1`).
    cl_core_off: Vec<u32>,
    /// Core slots grouped by cluster slot, ascending within each group.
    cl_core_list: Vec<u32>,
    /// Core slot → offset into `core_task_list` (CSR, `ncores + 1`).
    core_task_off: Vec<u32>,
    /// Task indices grouped by core slot, in observation order within each
    /// group — so per-core f64 bid accumulation matches the serial path.
    core_task_list: Vec<u32>,
    /// Cursor scratch for the CSR fills.
    csr_cursor: Vec<u32>,
    /// Stage A saw the same raw cluster id twice: the serial path resolves
    /// the collision sequentially, shards cannot — sharding stands down.
    /// Persists across stage-A skips (only stage A rewrites it).
    dup_clusters: bool,
    /// Epoch counter for the sharded prepass's duplicate-task detection.
    /// Independent of `epoch`, which only advances when stage A runs.
    prepass_epoch: u32,
    /// Raw task id → prepass epoch it was last seen in.
    task_seen_epoch: Vec<u32>,
}

impl RoundScratch {
    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // Wrap: stale stamps could collide with a reused epoch value, so
            // reset them all once every 2^32 rounds.
            self.core_map_epoch.fill(0);
            self.cluster_map_epoch.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    fn next_prepass_epoch(&mut self) {
        if self.prepass_epoch == u32::MAX {
            self.task_seen_epoch.fill(0);
            self.prepass_epoch = 1;
        } else {
            self.prepass_epoch += 1;
        }
    }
}

/// One cluster's buffered outcome from a shard: the updated agent, the
/// requested step, and the aggregates the serial chip-agent stage reads.
#[derive(Debug, Clone, Copy)]
struct ClusterOut {
    /// Dense cluster slot.
    vs: u32,
    agent: ClusterAgent,
    step: Option<VfStep>,
    reacting: bool,
    constrained: u32,
    constr_demand: ProcessingUnits,
}

/// Per-shard output buffers. Each worker owns exactly one, so the parallel
/// region shares no mutable state; the merge drains them in shard order.
/// All vectors keep their capacity between rounds (zero-alloc once warm).
#[derive(Debug, Default)]
struct ShardScratch {
    prices: Vec<(CoreId, Price)>,
    shares: Vec<(TaskId, ProcessingUnits)>,
    tasks: Vec<TaskRound>,
    /// `(agent slot, new state)` — applied to the arena at merge.
    agents: Vec<(u32, TaskAgent)>,
    clusters: Vec<ClusterOut>,
    /// `(allowance, bid)` of the current core's tasks, between the bid
    /// pass and the purchase pass.
    core_tmp: Vec<(Money, Money)>,
}

/// Everything a shard job reads: the observation, the serial stages'
/// scratch, and the **previous round's** agent arenas. Shards never write
/// any of it — the serial path defers exactly the same writes (task agents
/// mutate after bidding, cluster agents after price discovery, `state`
/// after the cluster loop), so reading the old state is what the serial
/// path computes with too.
struct ShardCtx<'a> {
    obs: &'a MarketObs,
    s: &'a RoundScratch,
    task_agents: &'a [TaskAgent],
    cluster_agents: &'a [ClusterAgent],
    config: &'a PpmConfig,
    initial_bid: Money,
    emergency: bool,
}

/// Run the post-placement market stages for cluster slots `c0..c1`:
/// per-task bidding (Eq. 1), per-core price discovery and purchases, the
/// constrained-core scan, and the cluster agent's §3.2.2 step decision.
/// Every loop visits entities in the same order as the serial path (cores
/// ascending within the cluster, tasks in observation order within the
/// core), so every f64 accumulation is bit-identical to it.
fn run_shard(ctx: &ShardCtx<'_>, c0: usize, c1: usize, out: &mut ShardScratch) {
    out.prices.clear();
    out.shares.clear();
    out.tasks.clear();
    out.agents.clear();
    out.clusters.clear();
    let s = ctx.s;
    let obs = ctx.obs;
    for vs in c0..c1 {
        if s.cl_tasks[vs] == 0 {
            continue;
        }
        let cl = &obs.clusters[vs];
        let frozen = ctx.cluster_agents[cl.id.0].frozen;
        let mass = s.cl_priority[vs];
        let mut constrained = SLOT_NONE;
        let mut constr_demand = ProcessingUnits::ZERO;
        let mut constr_price = Price::ZERO;
        let cores = &s.cl_core_list[s.cl_core_off[vs] as usize..s.cl_core_off[vs + 1] as usize];
        for &cs32 in cores {
            let cs = cs32 as usize;
            if s.core_tasks[cs] == 0 {
                continue;
            }
            let tasks =
                &s.core_task_list[s.core_task_off[cs] as usize..s.core_task_off[cs + 1] as usize];
            // Bid pass: allowances and bids (Eq. 1), accumulated per core.
            out.core_tmp.clear();
            let mut core_bid = Money::ZERO;
            for &ti32 in tasks {
                let ti = ti32 as usize;
                let t = &obs.tasks[ti];
                let a = if mass > 0 {
                    s.cl_allow[vs] * (t.priority as f64 / mass as f64)
                } else {
                    Money::ZERO
                };
                let agent = &ctx.task_agents[s.t_agent[ti] as usize];
                let cap = a + agent.savings;
                let bid = if !agent.seen {
                    ctx.initial_bid
                        .clamp(ctx.config.min_bid, cap.max(ctx.config.min_bid))
                } else if frozen {
                    agent.bid
                } else {
                    task_agent::next_bid(
                        agent.bid,
                        agent.prev_demand,
                        agent.prev_supply,
                        agent.prev_price,
                        cap,
                        ctx.config.min_bid,
                    )
                };
                core_bid += bid;
                out.core_tmp.push((a, bid));
            }
            // Price discovery P_c = Σ b_t / S_c, then purchases.
            let price = Price::discover(core_bid, cl.supply);
            out.prices.push((obs.cores[cs].id, price));
            for (j, &ti32) in tasks.iter().enumerate() {
                let ti = ti32 as usize;
                let t = &obs.tasks[ti];
                let (a, bid) = out.core_tmp[j];
                let share = price.purchase(bid);
                out.shares.push((t.id, share));
                let old = &ctx.task_agents[s.t_agent[ti] as usize];
                let savings =
                    task_agent::next_savings(old.savings, a, bid, ctx.config.savings_cap_factor);
                out.agents.push((
                    s.t_agent[ti],
                    TaskAgent {
                        bid,
                        savings,
                        prev_demand: t.demand,
                        prev_supply: share,
                        prev_price: price,
                        seen: true,
                    },
                ));
                out.tasks.push(TaskRound {
                    id: t.id,
                    allowance: a,
                    bid,
                    savings,
                    supply: share,
                    demand: t.demand,
                });
            }
            // Constrained core: highest summed demand, ties towards the
            // lowest core id — the serial scan's exact comparisons.
            let d = s.core_demand[cs];
            let replace = constrained == SLOT_NONE
                || d > constr_demand
                || (d == constr_demand && obs.cores[cs].id < obs.cores[constrained as usize].id);
            if replace {
                constrained = cs32;
                constr_demand = d;
                constr_price = price;
            }
        }
        // Cluster agent (§3.2.2) on the shard's private copy of its state.
        let mut agent = ctx.cluster_agents[cl.id.0];
        let mut reacting = false;
        let mut step = None;
        if agent.frozen || !agent.has_base {
            agent.base_price = constr_price;
            agent.has_base = true;
            agent.frozen = false;
            agent.last_price = constr_price;
            reacting = true;
        } else {
            if constr_price.value() > agent.last_price.value() * 1.02 {
                reacting = true;
            }
            agent.last_price = constr_price;
            step = cluster_agent::decide_step(cluster_agent::ClusterView {
                price: constr_price,
                base_price: agent.base_price,
                tolerance: ctx.config.tolerance,
                can_step_up: cl.supply_up.is_some(),
                supply_down: cl.supply_down,
                constrained_demand: constr_demand,
                emergency: ctx.emergency,
            });
            if step.is_some() {
                agent.frozen = true;
            }
        }
        out.clusters.push(ClusterOut {
            vs: vs as u32,
            agent,
            step,
            reacting,
            constrained,
            constr_demand,
        });
    }
}

/// The market's attachment to a persistent [`WorkerPool`]: the shared pool
/// and one output scratch per shard (slot `k` is owned by shard `k` during
/// a dispatch; the merge drains them in slot order).
struct Sharding {
    pool: Arc<WorkerPool>,
    shards: Vec<Mutex<ShardScratch>>,
}

impl fmt::Debug for Sharding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharding")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Clone for Sharding {
    fn clone(&self) -> Sharding {
        // The pool is shared (threads are expensive); the scratch is
        // per-market working memory, so the clone starts cold.
        Sharding {
            pool: Arc::clone(&self.pool),
            shards: (0..self.shards.len())
                .map(|_| Mutex::new(ShardScratch::default()))
                .collect(),
        }
    }
}

/// Stamp `raw -> slot` in an epoch map, growing it on first sight of an id.
fn map_insert(epochs: &mut Vec<u32>, slots: &mut Vec<u32>, raw: usize, slot: u32, epoch: u32) {
    if epochs.len() <= raw {
        epochs.resize(raw + 1, 0);
        slots.resize(raw + 1, SLOT_NONE);
    }
    epochs[raw] = epoch;
    slots[raw] = slot;
}

/// Look up `raw` in an epoch map; stale or unknown ids give `SLOT_NONE`.
fn map_get(epochs: &[u32], slots: &[u32], raw: usize, epoch: u32) -> u32 {
    if raw < epochs.len() && epochs[raw] == epoch {
        slots[raw]
    } else {
        SLOT_NONE
    }
}

/// Bitwise `f64` equality. Stricter than `==`: `-0.0` and `0.0` differ (the
/// tapes render decisions via `Debug`, which distinguishes them) and `NaN`
/// never equals anything (so a poisoned observation can never be declared
/// "clean"). A `true` verdict therefore guarantees a replayed decision is
/// byte-identical to a recompute.
#[inline]
fn f64_same(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[inline]
fn pu_same(a: ProcessingUnits, b: ProcessingUnits) -> bool {
    f64_same(a.value(), b.value())
}

#[inline]
fn opt_pu_same(a: Option<ProcessingUnits>, b: Option<ProcessingUnits>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => pu_same(x, y),
        _ => false,
    }
}

fn task_obs_same(a: &TaskObs, b: &TaskObs) -> bool {
    a.id == b.id && a.core == b.core && a.priority == b.priority && pu_same(a.demand, b.demand)
}

fn cluster_obs_same(a: &ClusterObs, b: &ClusterObs) -> bool {
    a.id == b.id
        && pu_same(a.supply, b.supply)
        && opt_pu_same(a.supply_up, b.supply_up)
        && opt_pu_same(a.supply_down, b.supply_down)
        && f64_same(a.power.value(), b.power.value())
}

fn tasks_same(a: &[TaskObs], b: &[TaskObs]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| task_obs_same(x, y))
}

fn clusters_same(a: &[ClusterObs], b: &[ClusterObs]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| cluster_obs_same(x, y))
}

fn task_agent_same(a: &TaskAgent, b: &TaskAgent) -> bool {
    f64_same(a.bid.value(), b.bid.value())
        && f64_same(a.savings.value(), b.savings.value())
        && pu_same(a.prev_demand, b.prev_demand)
        && pu_same(a.prev_supply, b.prev_supply)
        && f64_same(a.prev_price.value(), b.prev_price.value())
        && a.seen == b.seen
}

fn cluster_agent_same(a: &ClusterAgent, b: &ClusterAgent) -> bool {
    f64_same(a.base_price.value(), b.base_price.value())
        && a.has_base == b.has_base
        && a.frozen == b.frozen
        && f64_same(a.last_price.value(), b.last_price.value())
}

/// Overwrite `dst` with `src`, reusing `dst`'s capacity (no allocation once
/// warm — `Vec::extend_from_slice` only grows when capacity is short).
fn copy_vec<T: Copy>(dst: &mut Vec<T>, src: &[T]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// Overwrite `dst` with `src` field by field, reusing every buffer.
fn copy_decision(dst: &mut MarketDecision, src: &MarketDecision) {
    copy_vec(&mut dst.shares, &src.shares);
    copy_vec(&mut dst.dvfs, &src.dvfs);
    dst.state = src.state;
    dst.allowance = src.allowance;
    copy_vec(&mut dst.prices, &src.prices);
    copy_vec(&mut dst.tasks, &src.tasks);
    copy_vec(&mut dst.orphans, &src.orphans);
    dst.total_demand = src.total_demand;
    dst.total_supply = src.total_supply;
}

/// Bitwise observation equality, section by section, via the `_same`
/// helpers (so the `-0.0`/`NaN` discipline of [`f64_same`] applies).
fn obs_same(a: &MarketObs, b: &MarketObs) -> bool {
    f64_same(a.chip_power.value(), b.chip_power.value())
        && a.cores == b.cores
        && clusters_same(&a.clusters, &b.clusters)
        && tasks_same(&a.tasks, &b.tasks)
}

/// Overwrite `dst` with `src`, reusing every buffer.
fn copy_obs(dst: &mut MarketObs, src: &MarketObs) {
    dst.chip_power = src.chip_power;
    copy_vec(&mut dst.tasks, &src.tasks);
    copy_vec(&mut dst.cores, &src.cores);
    copy_vec(&mut dst.clusters, &src.clusters);
}

#[inline]
fn opt_money_same(a: Option<Money>, b: Option<Money>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => f64_same(x.value(), y.value()),
        _ => false,
    }
}

/// A bitwise copy of every piece of persistent market state the round
/// function reads or writes: the agent arenas, the global allowance, the
/// power state, and the emergency cooldown. `round` is excluded — it is a
/// pure counter with no feedback into any decision. The slot maps
/// (`task_slots`/`free_agents`) are excluded too: they only change when an
/// agent is created (visible as a `task_agents` mismatch while the window
/// is live) or removed ([`Market::remove_task`] invalidates the ring).
#[derive(Debug, Clone)]
struct StateSnap {
    task_agents: Vec<TaskAgent>,
    cluster_agents: Vec<ClusterAgent>,
    allowance: Option<Money>,
    state: PowerState,
    emergency_cooldown: u32,
}

impl Default for StateSnap {
    fn default() -> StateSnap {
        StateSnap {
            task_agents: Vec::new(),
            cluster_agents: Vec::new(),
            allowance: None,
            state: PowerState::Normal,
            emergency_cooldown: 0,
        }
    }
}

/// One retained round: the observation it consumed, the decision it
/// produced, and the persistent state *before* it ran (all bitwise copies).
#[derive(Debug, Clone)]
struct Retained {
    valid: bool,
    obs: MarketObs,
    out: MarketDecision,
    state_before: StateSnap,
}

impl Default for Retained {
    fn default() -> Retained {
        Retained {
            valid: false,
            obs: MarketObs::empty(),
            out: MarketDecision::default(),
            state_before: StateSnap::default(),
        }
    }
}

/// Retained state for the incremental round engine (DESIGN.md §12).
///
/// The engine keeps the two most recent rounds in a ring: `prev` is round
/// R-1, `prev2` is round R-2. The round function is a pure function
/// `f(state, obs) → (state', out)` of the persistent state and the
/// observation, so if this round's inputs are bitwise identical to a
/// retained round's inputs — `obs == prevₖ.obs` and the current state
/// equals `prevₖ.state_before` — then `f` provably returns that round's
/// `(state', out)` again and the engine replays it without recomputing:
///
/// * **lag 1** (`prev`) catches fixed points: the state already equals
///   `prev.state_before`, so nothing needs restoring.
/// * **lag 2** (`prev2`) catches period-2 limit cycles — at scale the
///   cobweb price feedback commonly settles into a 1-ULP bid oscillation
///   that never reaches a fixed point. The replayed round's resulting
///   state is `prev.state_before` (the state round R-1 started from),
///   which is restored by memcpy.
///
/// Anything that can fail the input comparison — churn, a perturbed
/// observation, externally mutated agents — automatically forces the full
/// recompute; `remove_task`/`set_initial_bid` invalidate the ring because
/// their effects are not covered by the state comparison.
///
/// Probing is adaptive: a regime that never replays (sustained churn, or a
/// quasi-periodic cell whose bids never revisit a retained input) would
/// otherwise pay two O(n) comparisons plus ring retention every round.
/// After [`PROBE_PATIENCE`] consecutive misses the engine probes (and
/// retains the two rounds a probe needs) only every [`PROBE_PERIOD`]
/// rounds. Unprobed rounds take the full path — the reference computation
/// itself — so bit-identity is unaffected; a hit restores eager probing.
#[derive(Debug, Clone)]
struct Incremental {
    /// Fast path armed (on by default; `Market::set_incremental`).
    enabled: bool,
    /// Ring of the two most recent rounds: R-1 and R-2.
    prev: Retained,
    prev2: Retained,
    /// Scratch for capturing the pre-round state at the start of a full
    /// recompute; the rotation swaps it into `prev.state_before`.
    staging: StateSnap,
    /// Observation of the last round that ran the full engine — what the
    /// topology/placement scratch currently describes. Stage skipping must
    /// anchor here (never on `prev.obs`): under a period-2 replay regime
    /// consecutive observations legally alternate without touching scratch.
    full_obs: MarketObs,
    full_obs_valid: bool,
    /// Placement aggregates retained across stage-B skips (clean task
    /// section over unchanged topology).
    orphans: Vec<(TaskId, CoreId)>,
    total_priority: u32,
    participating: usize,
    /// Cumulative fast-path replays / full recomputes.
    fast_hits: u64,
    full_rounds: u64,
    /// Most recent round: replayed? and how many observation sections
    /// (chip power, tasks, cores, clusters) its diff found — or, while the
    /// task compare is backed off, conservatively assumed — dirty.
    last_fast: bool,
    last_dirty: u32,
    /// Section dirtiness of the most recent diff as a bitmask
    /// (`DIRTY_CHIP` &c.), driving the per-section `full_obs` re-anchor.
    dirty_mask: u8,
    /// Consecutive full rounds whose task section was dirty; past
    /// `DIFF_PATIENCE` the O(n) task compare — and the O(n) `full_obs`
    /// task copy that feeds it — back off to every
    /// `TASK_CHECK_PERIOD`-th full round. Assuming the section dirty in
    /// between just runs stage B, exactly what full recompute does.
    task_dirty_streak: u32,
    until_task_check: u32,
    /// `full_obs.tasks` no longer mirrors the last full round (its copy
    /// was skipped while backed off): comparing against it is disallowed
    /// until a scheduled re-anchor refreshes it.
    full_obs_tasks_stale: bool,
    /// Consecutive probe misses (saturating); `>= PROBE_PATIENCE` means the
    /// engine is backed off to the scheduled-probe cadence.
    miss_streak: u32,
    /// Rounds until the next scheduled probe while backed off.
    until_probe: u32,
    /// Current scheduled-probe window: doubles on every scheduled miss (up
    /// to [`PROBE_PERIOD_MAX`]) so regimes that never replay pay retention
    /// on a vanishing fraction of rounds; any hit resets it.
    probe_period: u32,
    /// Certified bitwise equality between the current persistent state and
    /// `prev.state_before` / `prev2.state_before`. A lag-1 replay leaves
    /// the state untouched (and equal to `prev.state_before` by the match),
    /// and a lag-2 replay copies it from what becomes `prev2.state_before`,
    /// so chained replays skip the O(n) agent comparison. Cleared by any
    /// full round, ring invalidation, or rotation that breaks the equality.
    state_eq_prev: bool,
    state_eq_prev2: bool,
}

/// Consecutive fast-path misses tolerated before probing backs off.
const PROBE_PATIENCE: u32 = 64;
/// Initial scheduled-probe window while backed off; the two rounds before
/// each scheduled probe are retained so the ring holds a genuinely
/// adjacent (R-1, R-2) pair at probe time.
const PROBE_PERIOD: u32 = 16;
/// Scheduled-probe window cap: retention (O(n) obs + decision + agent
/// copies) amortizes to ~1% of rounds in a regime that never replays,
/// while a workload that turns steady re-engages within this many rounds.
const PROBE_PERIOD_MAX: u32 = 256;
/// Consecutive dirty-task rounds tolerated before the task diff backs off.
const DIFF_PATIENCE: u32 = 8;
/// Task-diff re-check cadence while backed off.
const TASK_CHECK_PERIOD: u32 = 16;

/// Bits of [`Incremental::dirty_mask`].
const DIRTY_CHIP: u8 = 1;
const DIRTY_TASKS: u8 = 2;
const DIRTY_CORES: u8 = 4;
const DIRTY_CLUSTERS: u8 = 8;

impl Default for Incremental {
    fn default() -> Incremental {
        Incremental {
            enabled: true,
            prev: Retained::default(),
            prev2: Retained::default(),
            staging: StateSnap::default(),
            full_obs: MarketObs::empty(),
            full_obs_valid: false,
            orphans: Vec::new(),
            total_priority: 0,
            participating: 0,
            fast_hits: 0,
            full_rounds: 0,
            last_fast: false,
            last_dirty: 0,
            dirty_mask: 0,
            task_dirty_streak: 0,
            until_task_check: 0,
            full_obs_tasks_stale: false,
            miss_streak: 0,
            until_probe: 0,
            probe_period: PROBE_PERIOD,
            state_eq_prev: false,
            state_eq_prev2: false,
        }
    }
}

impl Incremental {
    /// Drop both retained rounds (state mutated outside a round: the
    /// comparisons would test against inputs that no longer describe the
    /// market's future behaviour).
    fn invalidate(&mut self) {
        self.prev.valid = false;
        self.prev2.valid = false;
        self.state_eq_prev = false;
        self.state_eq_prev2 = false;
        // Population changes usually settle into a new steady state soon:
        // probe eagerly again.
        self.miss_streak = 0;
        self.until_probe = 0;
        self.probe_period = PROBE_PERIOD;
    }
}

/// The supply-demand module: all agent state plus the round engine.
#[derive(Debug, Clone)]
pub struct Market {
    config: PpmConfig,
    /// Task agents in a slot arena; `task_slots[raw id]` points into it.
    task_agents: Vec<TaskAgent>,
    task_slots: Vec<u32>,
    free_agents: Vec<u32>,
    cluster_agents: Vec<ClusterAgent>,
    /// Global allowance `A`. Stays `None` until the market has observed at
    /// least one participating task, so an idle boot cannot anchor the money
    /// supply before there is anything to pay for.
    allowance: Option<Money>,
    state: PowerState,
    round: u64,
    /// Rounds remaining before another emergency cut may fire.
    emergency_cooldown: u32,
    /// The bid every new task agent starts with (the paper's examples start
    /// at $1).
    initial_bid: Money,
    scratch: RoundScratch,
    incr: Incremental,
    /// Persistent worker pool + per-shard scratch when the round is sharded
    /// (DESIGN.md §13); `None` keeps every stage serial.
    sharding: Option<Sharding>,
}

impl Market {
    /// Rounds the chip agent waits between consecutive emergency allowance
    /// cuts, so one cut's effect (deflation, V-F steps) is observed before
    /// cutting again — Table 3 holds `A` for two rounds after the cut.
    pub const EMERGENCY_COOLDOWN_ROUNDS: u32 = 2;

    /// A market with no agents yet.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: PpmConfig) -> Market {
        config.validate().expect("valid PPM configuration");
        Market {
            config,
            task_agents: Vec::new(),
            task_slots: Vec::new(),
            free_agents: Vec::new(),
            cluster_agents: Vec::new(),
            allowance: None,
            state: PowerState::Normal,
            round: 0,
            emergency_cooldown: 0,
            initial_bid: Money(1.0),
            scratch: RoundScratch::default(),
            incr: Incremental::default(),
            sharding: None,
        }
    }

    /// Attach a persistent worker pool: subsequent full rounds shard the
    /// post-placement stages (bidding, price discovery, purchases, cluster
    /// agents) across `pool.shards()` contiguous cluster ranges, with a
    /// deterministic slot-order merge that keeps every decision and money
    /// book bit-identical to the serial path (DESIGN.md §13). Fast-path
    /// replays bypass the pool entirely, and rounds that cannot shard
    /// soundly (a single cluster, duplicate ids in the observation) fall
    /// back to the serial stages on their own.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        let shards = (0..pool.shards())
            .map(|_| Mutex::new(ShardScratch::default()))
            .collect();
        self.sharding = Some(Sharding { pool, shards });
        // The sharded traversal CSRs ride the stage-skip logic; force the
        // next round through stages A and B so they exist.
        self.incr.invalidate();
        self.incr.full_obs_valid = false;
    }

    /// Detach the worker pool; every stage runs serially again. (The pool
    /// itself is only torn down when the last `Arc` drops.)
    pub fn detach_pool(&mut self) {
        self.sharding = None;
    }

    /// Threads a full round fans out over: pool shards when a pool is
    /// attached (the dispatching thread runs one of them), else 1.
    pub fn workers(&self) -> usize {
        self.sharding.as_ref().map_or(1, |sh| sh.pool.shards())
    }

    /// Override the bid new task agents start with (defaults to $1).
    pub fn set_initial_bid(&mut self, bid: Money) {
        self.initial_bid = bid;
        // Not covered by the retained-state comparison (it only matters for
        // the next *admitted* agent), so drop the ring.
        self.incr.invalidate();
    }

    /// Adopt a new chip power budget: the TDP (`W_tdp`) and the threshold
    /// (`W_th`) below it, as a fleet exchange re-trades them every epoch.
    /// Returns false without touching anything when both are bitwise-equal
    /// to the configuration in force (the common steady-epoch case, which
    /// keeps the incremental fast path armed). Otherwise the retained
    /// rounds were computed under the old budget — the power-state machine
    /// and allowance Δ depend on it, and the fast path compares
    /// observations and agent state but *not* config — so the ring is
    /// dropped and the next round runs the full recompute.
    pub fn set_power_budget(&mut self, tdp: Watts, threshold: Watts) -> bool {
        if self.config.tdp.value().to_bits() == tdp.value().to_bits()
            && self.config.threshold.value().to_bits() == threshold.value().to_bits()
        {
            return false;
        }
        self.config.tdp = tdp;
        self.config.threshold = threshold;
        self.incr.invalidate();
        self.incr.full_obs_valid = false;
        true
    }

    /// Toggle the incremental fast path (on by default). Off forces every
    /// round through the full recompute — used by `bench_market --check`
    /// and the equivalence proptests as the reference behaviour.
    pub fn set_incremental(&mut self, on: bool) {
        self.incr.enabled = on;
        if !on {
            self.incr.invalidate();
            self.incr.full_obs_valid = false;
        }
    }

    /// Whether the incremental fast path is armed.
    pub fn incremental(&self) -> bool {
        self.incr.enabled
    }

    /// Rounds replayed via the fast path so far.
    pub fn fast_path_hits(&self) -> u64 {
        self.incr.fast_hits
    }

    /// Rounds that ran the full recompute so far.
    pub fn full_recomputes(&self) -> u64 {
        self.incr.full_rounds
    }

    /// Whether the most recent round was a fast-path replay.
    pub fn last_round_fast(&self) -> bool {
        self.incr.last_fast
    }

    /// Observation sections (chip power, tasks, cores, clusters) the most
    /// recent round's diff found dirty relative to the last full recompute:
    /// 0 on a replay, 4 when there was no prior full round to diff against.
    pub fn last_round_dirty_sections(&self) -> u32 {
        self.incr.last_dirty
    }

    /// The configuration in force.
    pub fn config(&self) -> &PpmConfig {
        &self.config
    }

    /// The current chip power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The current global allowance, if the chip agent has initialised.
    pub fn allowance(&self) -> Option<Money> {
        self.allowance
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    fn agent_slot(&self, id: TaskId) -> Option<usize> {
        match self.task_slots.get(id.0) {
            Some(&s) if s != SLOT_NONE => Some(s as usize),
            _ => None,
        }
    }

    /// A task agent's current savings `m_t`.
    pub fn savings_of(&self, id: TaskId) -> Money {
        self.agent_slot(id)
            .map_or(Money::ZERO, |s| self.task_agents[s].savings)
    }

    /// A task agent's current bid `b_t`.
    pub fn bid_of(&self, id: TaskId) -> Money {
        self.agent_slot(id)
            .map_or(Money::ZERO, |s| self.task_agents[s].bid)
    }

    /// Remove the agent of a departed task, returning its savings to the
    /// void (money supply is controlled by the chip agent anyway). The slot
    /// is recycled for the next admitted task.
    pub fn remove_task(&mut self, id: TaskId) {
        if let Some(slot) = self.agent_slot(id) {
            self.task_slots[id.0] = SLOT_NONE;
            self.task_agents[slot] = TaskAgent::fresh(ProcessingUnits::ZERO);
            self.free_agents.push(slot as u32);
            // The slot maps changed in a way the retained-state comparison
            // cannot see (a later admission may recycle this slot), so the
            // retained rounds are no longer trustworthy replay sources.
            self.incr.invalidate();
        }
    }

    /// Whether replaying the retained round `r` is provably byte-identical
    /// to recomputing: its input observation and its input persistent state
    /// are both bitwise equal to this round's.
    fn fast_path_matches(&self, r: &Retained, obs: &MarketObs, state_known: bool) -> bool {
        if !r.valid || !obs_same(obs, &r.obs) {
            return false;
        }
        if state_known {
            // On a certified replay chain the current state is already
            // known bitwise-equal to `r.state_before` (see the
            // `state_eq_prev*` flag docs): skip the O(n) comparison.
            return true;
        }
        let snap = &r.state_before;
        snap.state == self.state
            && snap.emergency_cooldown == self.emergency_cooldown
            && opt_money_same(snap.allowance, self.allowance)
            && snap.task_agents.len() == self.task_agents.len()
            && snap.cluster_agents.len() == self.cluster_agents.len()
            && snap
                .task_agents
                .iter()
                .zip(&self.task_agents)
                .all(|(a, b)| task_agent_same(a, b))
            && snap
                .cluster_agents
                .iter()
                .zip(&self.cluster_agents)
                .all(|(a, b)| cluster_agent_same(a, b))
    }

    /// Find or create the persistent agent slot for `id`.
    ///
    /// A free function over the individual fields so the round engine can
    /// call it while scratch buffers are borrowed.
    fn ensure_agent(
        task_slots: &mut Vec<u32>,
        task_agents: &mut Vec<TaskAgent>,
        free_agents: &mut Vec<u32>,
        id: TaskId,
        demand: ProcessingUnits,
    ) -> u32 {
        if task_slots.len() <= id.0 {
            task_slots.resize(id.0 + 1, SLOT_NONE);
        }
        let existing = task_slots[id.0];
        if existing != SLOT_NONE {
            return existing;
        }
        let slot = match free_agents.pop() {
            Some(s) => {
                task_agents[s as usize] = TaskAgent::fresh(demand);
                s
            }
            None => {
                task_agents.push(TaskAgent::fresh(demand));
                (task_agents.len() - 1) as u32
            }
        };
        task_slots[id.0] = slot;
        slot
    }

    /// Execute one bidding round, allocating a fresh decision.
    ///
    /// Convenience wrapper over [`Market::round_into`]; hot callers should
    /// hold a reusable [`MarketDecision`] buffer instead.
    pub fn round(&mut self, obs: &MarketObs) -> MarketDecision {
        let mut out = MarketDecision::default();
        self.round_into(obs, &mut out);
        out
    }

    /// Execute one bidding round (§3.2.1–§3.2.3): distribute allowances,
    /// update bids, discover prices, purchase supply, update savings, run
    /// the cluster agents' inflation/deflation control and the chip agent's
    /// allowance control.
    ///
    /// Writes the decision into `out` (clearing it first). In steady state —
    /// stable populations and a warmed-up `out` buffer — this performs no
    /// heap allocation (asserted by `tests/zero_alloc.rs`) and its result
    /// depends only on `(self, obs)`, never on hasher seeds or map iteration
    /// order.
    ///
    /// The round is *incremental* by default: if this round's inputs —
    /// observation and persistent state, compared bitwise — match those of
    /// one of the two retained rounds (lag 1 = fixed point, lag 2 =
    /// period-2 limit cycle), that round's decision is replayed outright,
    /// provably byte-identical to a full recompute; otherwise clean input
    /// sections still skip the topology/placement stages they feed
    /// (DESIGN.md §12, and `tests/market_properties.rs` checks all of it
    /// against an always-full market). [`Market::set_incremental`] disables
    /// the machinery.
    ///
    /// Tasks whose core (or its cluster) is absent from the snapshot do not
    /// participate this round and are reported in [`MarketDecision::orphans`]
    /// instead of panicking.
    pub fn round_into(&mut self, obs: &MarketObs, out: &mut MarketDecision) {
        self.round_impl(obs, out, None);
    }

    /// Like [`Market::round_into`], but reporting wall-time spans for the
    /// bid / price-discovery / DVFS sections into `prof` (as
    /// [`Phase::MarketBid`](ppm_obs::Phase), `MarketPrice`, `MarketDvfs`).
    /// Timing is observation-only: the decision computed is bit-identical
    /// to [`Market::round_into`] (the golden tapes prove it).
    pub fn round_into_profiled(
        &mut self,
        obs: &MarketObs,
        out: &mut MarketDecision,
        prof: &mut PhaseProfiler,
    ) {
        self.round_impl(obs, out, Some(prof));
    }

    fn round_impl(
        &mut self,
        obs: &MarketObs,
        out: &mut MarketDecision,
        mut prof: Option<&mut PhaseProfiler>,
    ) {
        let mut mark = if prof.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        self.round += 1;

        // --- Fast path (DESIGN.md §12): replay a retained round whose
        // inputs — observation AND persistent state — are bitwise identical
        // to this round's. Lag 1 catches fixed points; lag 2 catches the
        // period-2 limit cycles the cobweb price feedback settles into at
        // scale (1-ULP bid oscillations that never become a fixed point).
        if self.incr.enabled {
            let probe = self.incr.miss_streak < PROBE_PATIENCE || self.incr.until_probe == 0;
            if probe {
                if self.fast_path_matches(&self.incr.prev, obs, self.incr.state_eq_prev) {
                    // f(σ, obs) = (σ, prev.out) again; the state is already
                    // σ. No rotation either: the lag-1 match certifies that
                    // `prev` is bitwise what this round's retained entry
                    // would be — and that σ stays equal to
                    // `prev.state_before`, so chained replays skip the scan.
                    copy_decision(out, &self.incr.prev.out);
                    self.incr.state_eq_prev = true;
                    self.incr.miss_streak = 0;
                    self.incr.probe_period = PROBE_PERIOD;
                    self.incr.fast_hits += 1;
                    self.incr.last_fast = true;
                    self.incr.last_dirty = 0;
                    lap(prof, &mut mark, Phase::MarketDiff);
                    return;
                }
                if self.fast_path_matches(&self.incr.prev2, obs, self.incr.state_eq_prev2) {
                    // f(σ_{R-3}, obs_{R-2}) ran as round R-2 and produced
                    // (σ_{R-2}, out_{R-2}): replay its output and restore its
                    // resulting state, retained as `prev.state_before`.
                    copy_decision(out, &self.incr.prev2.out);
                    copy_vec(
                        &mut self.task_agents,
                        &self.incr.prev.state_before.task_agents,
                    );
                    copy_vec(
                        &mut self.cluster_agents,
                        &self.incr.prev.state_before.cluster_agents,
                    );
                    self.allowance = self.incr.prev.state_before.allowance;
                    self.state = self.incr.prev.state_before.state;
                    self.emergency_cooldown = self.incr.prev.state_before.emergency_cooldown;
                    // Rotate by swap: the lag-2 match certifies that `prev2`
                    // already holds exactly this round's retained entry, and
                    // the old `prev` is round R-1's — a zero-copy rotation.
                    // σ was just copied from what is now `prev2.state_before`
                    // (certify it); the rotated `prev`'s entry state is one
                    // round older and no longer known equal to σ.
                    std::mem::swap(&mut self.incr.prev, &mut self.incr.prev2);
                    self.incr.state_eq_prev = false;
                    self.incr.state_eq_prev2 = true;
                    self.incr.miss_streak = 0;
                    self.incr.probe_period = PROBE_PERIOD;
                    self.incr.fast_hits += 1;
                    self.incr.last_fast = true;
                    self.incr.last_dirty = 0;
                    lap(prof, &mut mark, Phase::MarketDiff);
                    return;
                }
                self.incr.miss_streak = self.incr.miss_streak.saturating_add(1);
                if self.incr.miss_streak >= PROBE_PATIENCE {
                    // A scheduled (or patience-exhausting) miss: widen the
                    // window so a regime that never replays probes — and
                    // retains — ever more rarely.
                    self.incr.probe_period =
                        (self.incr.probe_period.saturating_mul(2)).min(PROBE_PERIOD_MAX);
                }
                self.incr.until_probe = self.incr.probe_period;
            } else {
                self.incr.until_probe -= 1;
            }
        }

        // --- Diff stage: compare this observation, section by section and
        // bitwise, against the last *full* round's — what the topology and
        // placement scratch currently describe. Clean input sections
        // (cores+clusters, tasks) let the full path skip the stages they
        // feed.
        let (skip_topo, skip_place) = if self.incr.enabled && self.incr.full_obs_valid {
            let prev = &self.incr.full_obs;
            let same_chip = f64_same(obs.chip_power.value(), prev.chip_power.value());
            let same_cores = obs.cores == prev.cores;
            let same_clusters = clusters_same(&obs.clusters, &prev.clusters);
            // The task compare is adaptive: while backed off (a sustained
            // churn regime kept the section dirty, so `full_obs.tasks` is
            // stale), assume dirty — stage B then runs, exactly what a full
            // recompute does.
            let same_tasks = !self.incr.full_obs_tasks_stale && tasks_same(&obs.tasks, &prev.tasks);
            if same_tasks {
                self.incr.task_dirty_streak = 0;
            } else {
                self.incr.task_dirty_streak = self.incr.task_dirty_streak.saturating_add(1);
            }
            let mut mask = 0u8;
            if !same_chip {
                mask |= DIRTY_CHIP;
            }
            if !same_tasks {
                mask |= DIRTY_TASKS;
            }
            if !same_cores {
                mask |= DIRTY_CORES;
            }
            if !same_clusters {
                mask |= DIRTY_CLUSTERS;
            }
            self.incr.dirty_mask = mask;
            self.incr.last_fast = false;
            self.incr.last_dirty = mask.count_ones();
            let skip_topo = same_cores && same_clusters;
            (skip_topo, skip_topo && same_tasks)
        } else {
            self.incr.last_fast = false;
            self.incr.last_dirty = 4;
            self.incr.dirty_mask = DIRTY_CHIP | DIRTY_TASKS | DIRTY_CORES | DIRTY_CLUSTERS;
            self.incr.task_dirty_streak = 0;
            self.incr.until_task_check = 0;
            self.incr.full_obs_tasks_stale = false;
            (false, false)
        };

        // Capture the pre-round state for the ring rotation in
        // `finish_full` (σ_{R-1} must be read before any mutation below).
        // Skipped while backed off except in the retention window — the two
        // rounds a scheduled probe will compare against.
        let retain = self.incr.enabled
            && (self.incr.miss_streak < PROBE_PATIENCE || self.incr.until_probe <= 2);
        if retain {
            let st = &mut self.incr.staging;
            copy_vec(&mut st.task_agents, &self.task_agents);
            copy_vec(&mut st.cluster_agents, &self.cluster_agents);
            st.allowance = self.allowance;
            st.state = self.state;
            st.emergency_cooldown = self.emergency_cooldown;
        }
        lap(prof.as_deref_mut(), &mut mark, Phase::MarketDiff);

        out.reset();

        let s = &mut self.scratch;
        let ncores = obs.cores.len();
        let nclusters = obs.clusters.len();
        let ntasks = obs.tasks.len();

        // --- Stage A (topology): resolve ids to dense slots. Skipped when
        // the core and cluster sections are bitwise unchanged — the epoch
        // maps and `core_cluster` from the previous round still hold (the
        // epoch is only advanced when this stage runs). ---
        if !skip_topo {
            s.next_epoch();
            let epoch = s.epoch;
            s.dup_clusters = false;
            for (vs, c) in obs.clusters.iter().enumerate() {
                // A repeated raw cluster id makes two dense slots share one
                // agent; the serial path handles them sequentially, shards
                // cannot — remember the hazard so sharding stands down.
                if map_get(&s.cluster_map_epoch, &s.cluster_map_slot, c.id.0, epoch) != SLOT_NONE {
                    s.dup_clusters = true;
                }
                map_insert(
                    &mut s.cluster_map_epoch,
                    &mut s.cluster_map_slot,
                    c.id.0,
                    vs as u32,
                    epoch,
                );
                if self.cluster_agents.len() <= c.id.0 {
                    self.cluster_agents
                        .resize(c.id.0 + 1, ClusterAgent::default());
                }
            }
            s.core_cluster.clear();
            s.core_cluster.resize(ncores, SLOT_NONE);
            for (cs, c) in obs.cores.iter().enumerate() {
                map_insert(
                    &mut s.core_map_epoch,
                    &mut s.core_map_slot,
                    c.id.0,
                    cs as u32,
                    epoch,
                );
                s.core_cluster[cs] = map_get(
                    &s.cluster_map_epoch,
                    &s.cluster_map_slot,
                    c.cluster.0,
                    epoch,
                );
            }
            // Cluster→core CSR for the sharded traversal (DESIGN.md §13).
            if self.sharding.is_some() {
                s.cl_core_off.clear();
                s.cl_core_off.resize(nclusters + 1, 0);
                for cs in 0..ncores {
                    let vs = s.core_cluster[cs];
                    if vs != SLOT_NONE {
                        s.cl_core_off[vs as usize + 1] += 1;
                    }
                }
                for v in 0..nclusters {
                    s.cl_core_off[v + 1] += s.cl_core_off[v];
                }
                s.csr_cursor.clear();
                s.csr_cursor.extend_from_slice(&s.cl_core_off[..nclusters]);
                s.cl_core_list.clear();
                s.cl_core_list.resize(s.cl_core_off[nclusters] as usize, 0);
                for cs in 0..ncores {
                    let vs = s.core_cluster[cs];
                    if vs != SLOT_NONE {
                        let cur = &mut s.csr_cursor[vs as usize];
                        s.cl_core_list[*cur as usize] = cs as u32;
                        *cur += 1;
                    }
                }
            }
        }
        let epoch = s.epoch;

        // --- Size the always-recomputed working sets (no-ops once warm). ---
        s.core_bids.clear();
        s.core_bids.resize(ncores, Money::ZERO);
        s.core_price.clear();
        s.core_price.resize(ncores, Price::ZERO);
        s.t_agent.clear();
        s.t_agent.resize(ntasks, SLOT_NONE);
        s.t_allow.clear();
        s.t_allow.resize(ntasks, Money::ZERO);
        s.t_bid.clear();
        s.t_bid.resize(ntasks, Money::ZERO);
        s.cl_allow.clear();
        s.cl_allow.resize(nclusters, Money::ZERO);
        s.cl_power.clear();
        s.cl_power
            .extend(obs.clusters.iter().map(|c| c.power.value()));
        s.cl_reacting.clear();
        s.cl_reacting.resize(nclusters, false);
        s.cl_constrained.clear();
        s.cl_constrained.resize(nclusters, SLOT_NONE);
        s.cl_constr_demand.clear();
        s.cl_constr_demand.resize(nclusters, ProcessingUnits::ZERO);

        // --- Stage B (placement): core/cluster slots per task, per-core and
        // per-cluster aggregates, orphan detection. Skipped when the task
        // section is also unchanged over an unchanged topology: the dense
        // placement vectors still describe this observation, and the orphan
        // list is replayed from the retained decision. ---
        if !skip_place {
            s.core_demand.clear();
            s.core_demand.resize(ncores, ProcessingUnits::ZERO);
            s.core_tasks.clear();
            s.core_tasks.resize(ncores, 0);
            s.t_core.clear();
            s.t_core.resize(ntasks, SLOT_NONE);
            s.t_cluster.clear();
            s.t_cluster.resize(ntasks, SLOT_NONE);
            s.cl_priority.clear();
            s.cl_priority.resize(nclusters, 0);
            s.cl_tasks.clear();
            s.cl_tasks.resize(nclusters, 0);
            let mut total_priority: u32 = 0;
            let mut participating: usize = 0;
            for (ti, t) in obs.tasks.iter().enumerate() {
                let cs = map_get(&s.core_map_epoch, &s.core_map_slot, t.core.0, epoch);
                let vs = if cs == SLOT_NONE {
                    SLOT_NONE
                } else {
                    s.core_cluster[cs as usize]
                };
                if vs == SLOT_NONE {
                    // The task's core (or its cluster) is not in the snapshot:
                    // skip it gracefully instead of poisoning the whole round.
                    out.orphans.push((t.id, t.core));
                    continue;
                }
                s.t_core[ti] = cs;
                s.t_cluster[ti] = vs;
                s.core_tasks[cs as usize] += 1;
                s.core_demand[cs as usize] += t.demand;
                s.cl_tasks[vs as usize] += 1;
                s.cl_priority[vs as usize] += t.priority;
                total_priority += t.priority;
                participating += 1;
            }
            self.incr.total_priority = total_priority;
            self.incr.participating = participating;
            copy_vec(&mut self.incr.orphans, &out.orphans);
            // Core→task CSR for the sharded traversal (DESIGN.md §13):
            // counts are `core_tasks`, fill order is observation order, so
            // each core's group replays the serial bid accumulation order.
            if self.sharding.is_some() {
                s.core_task_off.clear();
                s.core_task_off.resize(ncores + 1, 0);
                for cs in 0..ncores {
                    s.core_task_off[cs + 1] = s.core_task_off[cs] + s.core_tasks[cs];
                }
                s.csr_cursor.clear();
                s.csr_cursor.extend_from_slice(&s.core_task_off[..ncores]);
                s.core_task_list.clear();
                s.core_task_list.resize(participating, 0);
                for ti in 0..ntasks {
                    let cs = s.t_core[ti];
                    if cs != SLOT_NONE {
                        let cur = &mut s.csr_cursor[cs as usize];
                        s.core_task_list[*cur as usize] = ti as u32;
                        *cur += 1;
                    }
                }
            }
        } else {
            out.orphans.extend_from_slice(&self.incr.orphans);
        }
        let total_priority = self.incr.total_priority;
        let participating = self.incr.participating;

        // --- Chip agent: initial allowance on first sight of a task. An
        // idle market (no participating tasks) must NOT anchor the money
        // supply: the seed version cached `A = rate · R` here even with
        // `R = 0`, freezing the allowance at the `b_min` floor forever. ---
        // `self.state` is NOT updated yet: the cluster agents below must see
        // the previous round's state (the seed classified after running
        // them), so the emergency reaction lags one round as in Table 3.
        let state = PowerState::classify(obs.chip_power, &self.config);
        out.state = state;
        for c in &obs.clusters {
            out.total_supply += c.supply;
        }
        if participating == 0 {
            self.state = state;
            // No economy to run. Hold the allowance (if initialised, apply
            // the emergency cut discipline so an overheating idle chip still
            // ratchets the money supply down).
            if let Some(allowance) = self.allowance {
                let delta = self.chip_delta(
                    state,
                    allowance,
                    ProcessingUnits::ZERO,
                    out.total_supply,
                    ProcessingUnits::ZERO,
                    out.total_supply,
                    false,
                    obs.chip_power,
                );
                let floor = self.config.min_bid;
                let next = (allowance + delta).clamp(floor, floor * 1e12);
                self.allowance = Some(next);
                out.allowance = next;
            }
            self.finish_full(obs, out, retain);
            return;
        }
        let allowance = *self.allowance.get_or_insert(Money(
            self.config.initial_allowance_per_priority * total_priority as f64,
        ));
        {
            let s = &mut self.scratch;

            // --- Hierarchical allowance distribution (§3.2.3): A -> A_v
            // (inverse to cluster power) -> a_t (proportional to priority). ---
            chip_agent::distribute_into(
                allowance,
                obs.chip_power.value(),
                &s.cl_power,
                &s.cl_priority,
                &mut s.cl_allow,
            );
        }

        // --- Sharded post-placement stages (DESIGN.md §13): with a pool
        // attached and a shardable round (two or more clusters, no
        // duplicate ids in the observation — the prepass inside confirms
        // the task side), bidding / price discovery / purchases / cluster
        // agents fan out per cluster range and merge in slot order;
        // otherwise the serial stages below run unchanged.
        let mut sharded = false;
        if self.sharding.is_some() && nclusters >= 2 && !self.scratch.dup_clusters {
            sharded = self.sharded_stages(obs, out, prof.as_deref_mut(), &mut mark);
        }
        if !sharded {
            let s = &mut self.scratch;
            // --- Task agents: allowances and bids (Eq. 1). ---
            for (ti, t) in obs.tasks.iter().enumerate() {
                let cs = s.t_core[ti];
                if cs == SLOT_NONE {
                    continue;
                }
                let vs = s.t_cluster[ti] as usize;
                // a_t = A_v · r_t / R_v (split_by_priority, inlined per task).
                let mass = s.cl_priority[vs];
                let a = if mass > 0 {
                    s.cl_allow[vs] * (t.priority as f64 / mass as f64)
                } else {
                    Money::ZERO
                };
                s.t_allow[ti] = a;
                let frozen = self.cluster_agents[obs.clusters[vs].id.0].frozen;
                let slot = Self::ensure_agent(
                    &mut self.task_slots,
                    &mut self.task_agents,
                    &mut self.free_agents,
                    t.id,
                    t.demand,
                );
                s.t_agent[ti] = slot;
                let agent = &mut self.task_agents[slot as usize];
                let cap = a + agent.savings;
                let bid = if !agent.seen {
                    agent.seen = true;
                    self.initial_bid
                        .clamp(self.config.min_bid, cap.max(self.config.min_bid))
                } else if frozen {
                    agent.bid
                } else {
                    task_agent::next_bid(
                        agent.bid,
                        agent.prev_demand,
                        agent.prev_supply,
                        agent.prev_price,
                        cap,
                        self.config.min_bid,
                    )
                };
                agent.bid = bid;
                s.t_bid[ti] = bid;
                s.core_bids[cs as usize] += bid;
            }
            lap(prof.as_deref_mut(), &mut mark, Phase::MarketBid);

            // --- Core agents: price discovery P_c = Σ b_t / S_c. ---
            for cs in 0..ncores {
                if s.core_tasks[cs] == 0 {
                    continue;
                }
                let vs = s.core_cluster[cs] as usize;
                let price = Price::discover(s.core_bids[cs], obs.clusters[vs].supply);
                s.core_price[cs] = price;
                out.prices.push((obs.cores[cs].id, price));
            }
            out.prices.sort_unstable_by_key(|(c, _)| *c);

            // --- Purchases s_t = b_t / P_c, savings update, agent memory. ---
            for (ti, t) in obs.tasks.iter().enumerate() {
                let cs = s.t_core[ti];
                if cs == SLOT_NONE {
                    continue;
                }
                let price = s.core_price[cs as usize];
                let share = price.purchase(s.t_bid[ti]);
                out.shares.push((t.id, share));
                let agent = &mut self.task_agents[s.t_agent[ti] as usize];
                agent.savings = task_agent::next_savings(
                    agent.savings,
                    s.t_allow[ti],
                    agent.bid,
                    self.config.savings_cap_factor,
                );
                agent.prev_demand = t.demand;
                agent.prev_supply = share;
                agent.prev_price = price;
                out.tasks.push(TaskRound {
                    id: t.id,
                    allowance: s.t_allow[ti],
                    bid: agent.bid,
                    savings: agent.savings,
                    supply: share,
                    demand: t.demand,
                });
            }
            out.shares.sort_unstable_by_key(|(t, _)| *t);
            out.tasks.sort_unstable_by_key(|t| t.id);
            lap(prof.as_deref_mut(), &mut mark, Phase::MarketPrice);

            // --- Constrained core per cluster: highest summed demand, ties
            // broken towards the lowest core id. ---
            for cs in 0..ncores {
                if s.core_tasks[cs] == 0 {
                    continue;
                }
                let vs = s.core_cluster[cs] as usize;
                let d = s.core_demand[cs];
                let best = s.cl_constrained[vs];
                let replace = best == SLOT_NONE
                    || d > s.cl_constr_demand[vs]
                    || (d == s.cl_constr_demand[vs]
                        && obs.cores[cs].id < obs.cores[best as usize].id);
                if replace {
                    s.cl_constrained[vs] = cs as u32;
                    s.cl_constr_demand[vs] = d;
                }
            }

            // --- Cluster agents: inflation/deflation control (§3.2.2). ---
            for (vs, c) in obs.clusters.iter().enumerate() {
                if s.cl_tasks[vs] == 0 {
                    continue;
                }
                let price = s.core_price[s.cl_constrained[vs] as usize];
                let agent = &mut self.cluster_agents[c.id.0];
                if agent.frozen || !agent.has_base {
                    // First observation at the (possibly new) supply anchors
                    // the base price; bids were held while switching.
                    agent.base_price = price;
                    agent.has_base = true;
                    agent.frozen = false;
                    agent.last_price = price;
                    s.cl_reacting[vs] = true;
                    continue;
                }
                // The market is reacting on its own while the price climbs:
                // the chip agent holds the money supply meanwhile.
                if price.value() > agent.last_price.value() * 1.02 {
                    s.cl_reacting[vs] = true;
                }
                agent.last_price = price;
                // The agent's step rule (see `agents::cluster_agent`): forced
                // step-down in the emergency state, else the ±δ band around the
                // base price with the §3.2.4 round-demand-up guard.
                let step = cluster_agent::decide_step(cluster_agent::ClusterView {
                    price,
                    base_price: agent.base_price,
                    tolerance: self.config.tolerance,
                    can_step_up: c.supply_up.is_some(),
                    supply_down: c.supply_down,
                    constrained_demand: s.cl_constr_demand[vs],
                    emergency: self.state == PowerState::Emergency,
                });
                if let Some(step) = step {
                    out.dvfs.push((c.id, step));
                    agent.frozen = true;
                }
            }
        }
        self.state = state;
        let s = &self.scratch;

        // --- Chip agent: allowance control. ---
        // "The allowance is increased … when the demand is not satisfied in
        // at least one of the clusters" (§3.2.3). The deficit is evaluated
        // per cluster — netting a starved cluster against another cluster's
        // surplus would deadlock the money supply (the starved cluster's
        // agents stay bid-capped forever while the chip sees D ≈ S). The
        // growth rate follows the worst cluster's relative deficit.
        // Extra money only helps when some under-supplied cluster can still
        // raise its V-F level; growing the allowance with every regulator
        // already at its top merely inflates prices (and savings) without
        // adding a single PU.
        let mut growth_helps = false;
        let mut worst_deficit: Option<(ProcessingUnits, ProcessingUnits)> = None;
        for (vs, c) in obs.clusters.iter().enumerate() {
            if s.cl_tasks[vs] == 0 {
                continue;
            }
            let dv = s.cl_constr_demand[vs];
            out.total_demand += dv;
            if dv > c.supply && c.supply_up.is_some() && !s.cl_reacting[vs] {
                growth_helps = true;
                let rate = (dv - c.supply).value() / dv.value();
                let worse =
                    worst_deficit.is_none_or(|(d, sup)| rate > (d - sup).value() / d.value());
                if worse {
                    worst_deficit = Some((dv, c.supply));
                }
            }
        }
        let (deficit_demand, deficit_supply) =
            worst_deficit.unwrap_or((out.total_demand, out.total_supply));
        let delta = self.chip_delta(
            state,
            allowance,
            out.total_demand,
            out.total_supply,
            deficit_demand,
            deficit_supply,
            growth_helps,
            obs.chip_power,
        );
        // Keep enough money in circulation for every agent's minimum bid,
        // and bound the ratchet from repeated normal-state growth: the
        // market is scale-free (bids, savings caps and prices all track A),
        // so the ceiling only guards floating-point hygiene.
        let floor = self.config.min_bid * participating.max(1) as f64;
        let ceiling = floor * 1e12;
        let next_allowance = (allowance + delta).clamp(floor, ceiling);
        self.allowance = Some(next_allowance);
        out.allowance = next_allowance;
        lap(prof, &mut mark, Phase::MarketDvfs);
        self.finish_full(obs, out, retain);
    }

    /// The pooled counterpart of the serial bid / price-discovery /
    /// purchase / cluster-agent stages (DESIGN.md §13): a serial prepass
    /// materialises agent slots in observation order (preserving the
    /// free-list pop order of the serial path), then contiguous cluster
    /// ranges fan out over the worker pool and the shard outputs merge in
    /// slot order. Returns `false` — leaving the round to the serial
    /// stages, which have not run yet — when the observation carries a
    /// duplicate task id (two tasks sharing one agent must be handled
    /// sequentially); the prepass work it did is idempotent.
    fn sharded_stages(
        &mut self,
        obs: &MarketObs,
        out: &mut MarketDecision,
        mut prof: Option<&mut PhaseProfiler>,
        mark: &mut Option<Instant>,
    ) -> bool {
        // --- Serial prepass: one agent slot per participating task. ---
        let s = &mut self.scratch;
        s.next_prepass_epoch();
        let epoch = s.prepass_epoch;
        for (ti, t) in obs.tasks.iter().enumerate() {
            if s.t_core[ti] == SLOT_NONE {
                continue;
            }
            if s.task_seen_epoch.len() <= t.id.0 {
                s.task_seen_epoch.resize(t.id.0 + 1, 0);
            }
            if s.task_seen_epoch[t.id.0] == epoch {
                return false;
            }
            s.task_seen_epoch[t.id.0] = epoch;
            s.t_agent[ti] = Self::ensure_agent(
                &mut self.task_slots,
                &mut self.task_agents,
                &mut self.free_agents,
                t.id,
                t.demand,
            );
        }
        lap(prof.as_deref_mut(), mark, Phase::MarketBid);

        // --- Parallel region: shard k owns cluster slots [k·n/S, (k+1)·n/S)
        // and writes only its own `ShardScratch`. ---
        let nclusters = obs.clusters.len();
        let sharding = self.sharding.as_ref().expect("sharded_stages needs a pool");
        let nshards = sharding.pool.shards();
        let ctx = ShardCtx {
            obs,
            s: &self.scratch,
            task_agents: &self.task_agents,
            cluster_agents: &self.cluster_agents,
            config: &self.config,
            initial_bid: self.initial_bid,
            emergency: self.state == PowerState::Emergency,
        };
        sharding.pool.run(&|k| {
            let mut sh = sharding.shards[k].lock().expect("shard scratch");
            let c0 = k * nclusters / nshards;
            let c1 = (k + 1) * nclusters / nshards;
            run_shard(&ctx, c0, c1, &mut sh);
        });
        lap(prof.as_deref_mut(), mark, Phase::MarketShard);

        // --- Merge in shard order = cluster slot order: agent writebacks
        // land exactly where the serial loops would have written, and the
        // DVFS list comes out in ascending cluster slot order like the
        // serial cluster-agent loop's. ---
        for shard in &sharding.shards {
            let sh = shard.lock().expect("shard scratch");
            out.prices.extend_from_slice(&sh.prices);
            out.shares.extend_from_slice(&sh.shares);
            out.tasks.extend_from_slice(&sh.tasks);
            for &(slot, agent) in &sh.agents {
                self.task_agents[slot as usize] = agent;
            }
            for co in &sh.clusters {
                let vs = co.vs as usize;
                self.cluster_agents[obs.clusters[vs].id.0] = co.agent;
                if let Some(step) = co.step {
                    out.dvfs.push((obs.clusters[vs].id, step));
                }
                self.scratch.cl_reacting[vs] = co.reacting;
                self.scratch.cl_constrained[vs] = co.constrained;
                self.scratch.cl_constr_demand[vs] = co.constr_demand;
            }
        }
        // Keys are unique (stage A de-duplicates cores, the prepass above
        // de-duplicates tasks), so sorting the concatenation yields the
        // exact sequence the serial sorts produce.
        out.prices.sort_unstable_by_key(|(c, _)| *c);
        out.shares.sort_unstable_by_key(|(t, _)| *t);
        out.tasks.sort_unstable_by_key(|t| t.id);
        lap(prof, mark, Phase::MarketPrice);
        true
    }

    /// Epilogue of every full recompute: re-anchor the stage-skip
    /// observation and (when `retain` — always while probing eagerly, else
    /// only in the retention window before a scheduled probe) rotate the
    /// retained-round ring (`prev2` ← `prev` ← this round). The pre-round
    /// state captured at round start is swapped in; obs/decision copies
    /// reuse retained capacity, so retention is memcpy-only and allocates
    /// nothing once buffers are warm.
    fn finish_full(&mut self, obs: &MarketObs, out: &MarketDecision, retain: bool) {
        self.incr.full_rounds += 1;
        if !self.incr.enabled {
            return;
        }
        // The full round moved σ: certified state equalities are gone.
        self.incr.state_eq_prev = false;
        self.incr.state_eq_prev2 = false;
        // Re-anchor `full_obs` per dirty section (a clean section is
        // already bitwise identical). The task section is adaptive: while
        // backed off, skip its copy too and leave it stale, re-anchoring on
        // the scheduled re-check so the compare can resume.
        let incr = &mut self.incr;
        if incr.dirty_mask & DIRTY_CHIP != 0 {
            incr.full_obs.chip_power = obs.chip_power;
        }
        if incr.dirty_mask & DIRTY_CORES != 0 {
            copy_vec(&mut incr.full_obs.cores, &obs.cores);
        }
        if incr.dirty_mask & DIRTY_CLUSTERS != 0 {
            copy_vec(&mut incr.full_obs.clusters, &obs.clusters);
        }
        if incr.full_obs_tasks_stale {
            if incr.until_task_check == 0 {
                copy_vec(&mut incr.full_obs.tasks, &obs.tasks);
                incr.full_obs_tasks_stale = false;
            } else {
                incr.until_task_check -= 1;
            }
        } else if incr.dirty_mask & DIRTY_TASKS != 0 {
            if incr.task_dirty_streak >= DIFF_PATIENCE {
                incr.full_obs_tasks_stale = true;
                incr.until_task_check = TASK_CHECK_PERIOD;
            } else {
                copy_vec(&mut incr.full_obs.tasks, &obs.tasks);
            }
        }
        incr.full_obs_valid = true;
        if !retain {
            return;
        }
        let incr = &mut self.incr;
        std::mem::swap(&mut incr.prev, &mut incr.prev2);
        copy_obs(&mut incr.prev.obs, obs);
        copy_decision(&mut incr.prev.out, out);
        std::mem::swap(&mut incr.prev.state_before, &mut incr.staging);
        incr.prev.valid = true;
    }

    /// The chip agent's Δ policy: emergency cuts gated by the cooldown,
    /// growth only when it can actually buy supply, threshold freeze.
    #[allow(clippy::too_many_arguments)]
    fn chip_delta(
        &mut self,
        state: PowerState,
        allowance: Money,
        total_demand: ProcessingUnits,
        total_supply: ProcessingUnits,
        deficit_demand: ProcessingUnits,
        deficit_supply: ProcessingUnits,
        growth_helps: bool,
        chip_power: Watts,
    ) -> Money {
        match state {
            PowerState::Emergency => {
                if self.emergency_cooldown == 0 {
                    self.emergency_cooldown = Self::EMERGENCY_COOLDOWN_ROUNDS;
                    allowance_delta(
                        state,
                        allowance,
                        total_demand,
                        total_supply,
                        chip_power,
                        &self.config,
                    )
                } else {
                    self.emergency_cooldown -= 1;
                    Money::ZERO
                }
            }
            PowerState::Normal if !growth_helps => {
                self.emergency_cooldown = 0;
                Money::ZERO
            }
            PowerState::Normal => {
                self.emergency_cooldown = 0;
                allowance_delta(
                    state,
                    allowance,
                    deficit_demand,
                    deficit_supply,
                    chip_power,
                    &self.config,
                )
            }
            _ => {
                self.emergency_cooldown = 0;
                allowance_delta(
                    state,
                    allowance,
                    total_demand,
                    total_supply,
                    chip_power,
                    &self.config,
                )
            }
        }
    }
}

impl fmt::Display for Market {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "market[round {}, state {}, A {}]",
            self.round,
            self.state,
            self.allowance.unwrap_or(Money::ZERO)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Harness replaying the paper's running examples: one cluster, one
    /// core, two tasks, a discrete supply ladder, and a synthetic power
    /// curve.
    struct Bench {
        market: Market,
        ladder: Vec<f64>,
        level: usize,
        demands: [f64; 2],
        priorities: [u32; 2],
        power: fn(f64) -> f64,
    }

    impl Bench {
        fn obs(&self) -> MarketObs {
            let supply = ProcessingUnits(self.ladder[self.level]);
            MarketObs {
                chip_power: Watts((self.power)(self.ladder[self.level])),
                tasks: vec![
                    TaskObs {
                        id: TaskId(0),
                        core: CoreId(0),
                        priority: self.priorities[0],
                        demand: ProcessingUnits(self.demands[0]),
                    },
                    TaskObs {
                        id: TaskId(1),
                        core: CoreId(0),
                        priority: self.priorities[1],
                        demand: ProcessingUnits(self.demands[1]),
                    },
                ],
                cores: vec![CoreObs {
                    id: CoreId(0),
                    cluster: ClusterId(0),
                }],
                clusters: vec![ClusterObs {
                    id: ClusterId(0),
                    supply,
                    supply_up: self.ladder.get(self.level + 1).map(|&s| ProcessingUnits(s)),
                    supply_down: if self.level > 0 {
                        Some(ProcessingUnits(self.ladder[self.level - 1]))
                    } else {
                        None
                    },
                    power: Watts((self.power)(self.ladder[self.level])),
                }],
            }
        }

        fn round(&mut self) -> MarketDecision {
            let d = self.market.round(&self.obs());
            for (_, step) in &d.dvfs {
                match step {
                    VfStep::Up => self.level = (self.level + 1).min(self.ladder.len() - 1),
                    VfStep::Down => self.level = self.level.saturating_sub(1),
                }
            }
            d
        }
    }

    fn table_bench() -> Bench {
        let mut config = PpmConfig::tc2();
        config.tolerance = 0.2;
        config.min_bid = Money(0.01);
        config.savings_cap_factor = 100.0; // the examples run uncapped
        config.tdp = Watts(2.25);
        config.threshold = Watts(1.75);
        Bench {
            market: Market::new(config),
            ladder: vec![300.0, 400.0, 500.0, 600.0],
            level: 0,
            demands: [200.0, 100.0],
            priorities: [2, 1],
            power: |s| {
                if s >= 600.0 {
                    3.0
                } else if s >= 500.0 {
                    2.0
                } else {
                    0.8
                }
            },
        }
    }

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table1_task_and_core_dynamics() {
        let mut b = table_bench();
        // Round 1: both bid $1, price 2/300, supplies 150/150.
        let r1 = b.round();
        assert!(approx(r1.tasks[0].bid.value(), 1.0, 1e-9));
        assert!(approx(r1.tasks[1].bid.value(), 1.0, 1e-9));
        assert!(approx(r1.prices[0].1.value(), 0.006667, 1e-4));
        assert!(approx(r1.tasks[0].supply.value(), 150.0, 1e-6));
        assert!(approx(r1.tasks[1].supply.value(), 150.0, 1e-6));
        // Round 2: bids 1.33/0.66, supplies 200/100 — demands met.
        let r2 = b.round();
        assert!(approx(r2.tasks[0].bid.value(), 1.3333, 1e-3));
        assert!(approx(r2.tasks[1].bid.value(), 0.6667, 1e-3));
        assert!(approx(r2.tasks[0].supply.value(), 200.0, 0.5));
        assert!(approx(r2.tasks[1].supply.value(), 100.0, 0.5));
        assert!(r2.dvfs.is_empty(), "market stable, no DVFS");
    }

    #[test]
    fn table2_cluster_dynamics() {
        // As in Table 2, the demand of ta jumps from 200 to 300 PU; the
        // price inflates to $0.0088 > $0.00796 = base·(1+δ) and the cluster
        // agent raises the supply from 300 to 400 PU. (Bids react to the
        // demand observed in the previous round, so the trace here runs one
        // round behind the paper's compressed narrative.)
        let mut b = table_bench();
        b.round();
        b.round();
        b.demands[0] = 300.0; // observed during round 3, bid on in round 4
        b.round();
        let r4 = b.round();
        assert!(approx(r4.tasks[0].bid.value(), 2.0, 1e-2)); // paper: 1.99
        assert!(approx(r4.prices[0].1.value(), 0.008889, 1e-4)); // paper: 0.0088
        assert!(approx(r4.tasks[0].supply.value(), 225.0, 1.0));
        assert!(approx(r4.tasks[1].supply.value(), 75.0, 1.0));
        assert_eq!(r4.dvfs, vec![(ClusterId(0), VfStep::Up)]);
        // Next round: bids frozen across the switch; the new price $0.0066
        // becomes the base; both tasks satisfied at 400 PU.
        let r5 = b.round();
        assert!(approx(r5.tasks[0].bid.value(), 2.0, 1e-2)); // unchanged
        assert!(approx(r5.prices[0].1.value(), 0.006667, 1e-4));
        assert!(approx(r5.tasks[0].supply.value(), 300.0, 1.0));
        assert!(approx(r5.tasks[1].supply.value(), 100.0, 1.0));
        assert!(r5.dvfs.is_empty());
    }

    #[test]
    fn table3_chip_dynamics_and_savings() {
        // Reproduces the Table 3 scenario: Wtdp = 2.25 W, Wth = 1.75 W,
        // priorities 2:1, power hitting 2 W at 500 PU (threshold) and 3 W
        // at 600 PU (emergency). Exact per-round money values differ
        // slightly from the paper's narrative (the chip agent here applies
        // the normal-state Δ literally every round), but every mechanism —
        // priority-proportional allowances, allowance growth under unmet
        // demand, the threshold freeze, the proportional emergency cut, the
        // savings dynamics, and the final stabilisation with the
        // high-priority task satisfied — is asserted.
        let mut b = table_bench();
        let r1 = b.round();
        // Initial allowance: 1.5 per priority unit × R=3 = $4.5, split 2:1.
        assert!(approx(r1.tasks[0].allowance.value(), 3.0, 1e-9));
        assert!(approx(r1.tasks[1].allowance.value(), 1.5, 1e-9));
        assert_eq!(r1.state, PowerState::Normal);
        let r2 = b.round();
        // Demands met at 300 PU: allowance unchanged at $4.5.
        assert!(approx(r2.allowance.value(), 4.5, 1e-9));
        // Savings accumulate the allowance surplus: ta saved (3−1)+(3−1.33),
        // tb saved (1.5−1)+(1.5−0.67).
        assert!(approx(r2.tasks[0].savings.value(), 3.67, 0.05));
        assert!(approx(r2.tasks[1].savings.value(), 1.33, 0.05));

        // Demand of ta jumps to 300: D=400 > S=300, so the chip agent grows
        // the allowance by Δ = A·(D−S)/D while the cluster steps to 400 PU.
        b.demands[0] = 300.0;
        let r3 = b.round();
        assert!(approx(r3.total_demand.value(), 400.0, 1e-9));
        assert!(r3.allowance.value() > 4.5);
        for _ in 0..3 {
            b.round();
        }
        assert_eq!(b.ladder[b.level], 400.0, "first inflation resolved");

        // Demand of tb jumps to 300: D=600. The market inflates through
        // 500 PU (threshold, 2 W) to 600 PU where power hits 3 W — the
        // emergency state — and the allowance is cut proportionally:
        // Δ/A = (Wtdp−W)/Wtdp = −1/3.
        b.demands[1] = 300.0;
        let mut seen_emergency = false;
        let mut allowance_before_cut = 0.0;
        for _ in 0..12 {
            let before = b.market.allowance().expect("initialised").value();
            let d = b.round();
            if d.state == PowerState::Emergency && !seen_emergency {
                seen_emergency = true;
                allowance_before_cut = before;
                assert!(
                    approx(d.allowance.value(), before * (1.0 - 1.0 / 3.0), 1e-6),
                    "emergency cut should be one third: {} -> {}",
                    before,
                    d.allowance.value()
                );
            }
        }
        assert!(seen_emergency, "overload must reach the emergency state");
        assert!(allowance_before_cut > 0.0);

        // The system must leave emergency and stabilise in the threshold
        // state at 500 PU with the high-priority task meeting its demand
        // (s_ta = 300) and the low-priority task suffering (s_tb = 200) —
        // Table 3, round 16.
        let mut last = None;
        for _ in 0..60 {
            last = Some(b.round());
        }
        let last = last.expect("ran rounds");
        assert_eq!(last.state, PowerState::Threshold);
        assert_eq!(b.ladder[b.level], 500.0, "stabilises at 500 PU");
        assert!(
            approx(last.tasks[0].supply.value(), 300.0, 10.0),
            "high-priority task meets demand: {:?}",
            last.tasks[0]
        );
        assert!(
            approx(last.tasks[1].supply.value(), 200.0, 10.0),
            "low-priority task suffers: {:?}",
            last.tasks[1]
        );
        assert!(last.dvfs.is_empty(), "no further V-F changes");
        // In the threshold state the allowance is frozen.
        let a_before = last.allowance.value();
        let again = b.round();
        assert!(approx(again.allowance.value(), a_before, 1e-9));
    }

    #[test]
    fn purchases_exhaust_the_core_supply() {
        // Price discovery sells exactly S_c: Σ s_t = S_c whenever bids > 0.
        let mut b = table_bench();
        for _ in 0..10 {
            let d = b.round();
            let total: f64 = d.shares.iter().map(|(_, s)| s.value()).sum();
            let supply = d.total_supply.value();
            assert!(approx(total, supply, 1e-6), "{total} vs {supply}");
        }
    }

    #[test]
    fn bids_never_leave_the_legal_interval() {
        let mut b = table_bench();
        b.demands = [500.0, 400.0];
        for _ in 0..50 {
            let d = b.round();
            for t in &d.tasks {
                assert!(t.bid.value() >= b.market.config().min_bid.value() - 1e-12);
                let cap =
                    t.allowance.value() + b.market.savings_of(t.id).value() + t.allowance.value(); // savings already post-update; loose check
                assert!(t.bid.value() <= cap + 1e-6);
            }
        }
    }

    #[test]
    fn deflation_steps_down_when_demand_shrinks() {
        let mut b = table_bench();
        b.power = |_| 0.8; // stay in the normal state throughout
        b.demands = [300.0, 250.0]; // needs 600 PU
        for _ in 0..30 {
            b.round();
        }
        assert_eq!(b.ladder[b.level], 600.0);
        // Demand collapses; prices deflate; the ladder is descended all the
        // way to the minimum frequency (§3.2.4 scenario 1).
        b.demands = [100.0, 50.0];
        for _ in 0..60 {
            b.round();
        }
        assert_eq!(
            b.ladder[b.level], 300.0,
            "market should settle at the bottom level"
        );
    }

    #[test]
    fn normal_state_guard_prevents_level_oscillation() {
        // Demand 450 sits between the 400 and 500 supply points: the
        // market must settle at 500 (demand rounded up), not oscillate.
        let mut b = table_bench();
        b.demands = [250.0, 200.0];
        let mut levels = Vec::new();
        for _ in 0..80 {
            b.round();
            levels.push(b.ladder[b.level]);
        }
        let tail = &levels[40..];
        assert!(
            tail.iter().all(|&l| l == tail[0]),
            "levels still moving: {tail:?}"
        );
        assert_eq!(tail[0], 500.0);
    }

    #[test]
    fn higher_priority_attracts_more_allowance() {
        let mut b = table_bench();
        b.priorities = [7, 1];
        let d = b.round();
        let a0 = d.tasks[0].allowance.value();
        let a1 = d.tasks[1].allowance.value();
        assert!(approx(a0 / a1, 7.0, 1e-6));
    }

    #[test]
    fn savings_respect_the_cap() {
        let mut b = table_bench();
        b.market = Market::new({
            let mut c = PpmConfig::tc2();
            c.tdp = Watts(2.25);
            c.threshold = Watts(1.75);
            c.savings_cap_factor = 2.0;
            c
        });
        b.demands = [10.0, 10.0]; // trivial demand -> bids collapse, savings pile up
        for _ in 0..100 {
            let d = b.round();
            for t in &d.tasks {
                assert!(
                    t.savings.value() <= 2.0 * t.allowance.value() + 1e-9,
                    "savings {} exceed cap at allowance {}",
                    t.savings,
                    t.allowance
                );
            }
        }
    }

    #[test]
    fn allowance_never_falls_below_min_bid_floor() {
        let mut b = table_bench();
        // Force persistent emergency: every supply level burns > Wtdp.
        b.power = |_| 5.0;
        for _ in 0..200 {
            let d = b.round();
            assert!(d.allowance.value() >= 2.0 * 0.01 - 1e-12);
        }
    }

    #[test]
    fn removed_task_frees_agent_state() {
        let mut b = table_bench();
        b.round();
        assert!(b.market.bid_of(TaskId(0)).is_positive());
        b.market.remove_task(TaskId(0));
        assert_eq!(b.market.bid_of(TaskId(0)), Money::ZERO);
        // The freed slot is recycled by the next admitted task.
        let slots_before = b.market.task_agents.len();
        b.round();
        assert_eq!(b.market.task_agents.len(), slots_before);
        assert!(b.market.bid_of(TaskId(0)).is_positive());
    }

    #[test]
    fn idle_boot_defers_the_initial_allowance() {
        // Regression test for the seed bug: `round` cached the initial
        // allowance with `get_or_insert` even when `obs.tasks` was empty,
        // anchoring `A = rate · 0 = 0` (then floor-clamped to b_min)
        // forever. The allowance must stay uninitialised across idle rounds
        // and be seeded from the first *observed* priority mass.
        let mut b = table_bench();
        let mut obs = b.obs();
        let tasks = std::mem::take(&mut obs.tasks);
        for _ in 0..5 {
            let d = b.market.round(&obs);
            assert_eq!(
                b.market.allowance(),
                None,
                "idle rounds must not anchor the money supply"
            );
            assert_eq!(d.allowance, Money::ZERO);
            assert!(d.tasks.is_empty() && d.shares.is_empty());
        }
        // Tasks admitted later: allowance seeds at rate · R = 1.5 · 3.
        obs.tasks = tasks;
        let d = b.market.round(&obs);
        assert!(approx(d.allowance.value(), 4.5, 1e-9));
        assert!(approx(d.tasks[0].allowance.value(), 3.0, 1e-9));
        assert!(approx(d.tasks[1].allowance.value(), 1.5, 1e-9));
    }

    #[test]
    fn orphaned_task_is_skipped_not_fatal() {
        // A task mapped to a core absent from the snapshot (observer race)
        // must not panic the round; it is reported and excluded from the
        // economy, and the remaining tasks trade normally.
        let mut b = table_bench();
        let mut obs = b.obs();
        obs.tasks[1].core = CoreId(99);
        let d = b.market.round(&obs);
        assert_eq!(d.orphans, vec![(TaskId(1), CoreId(99))]);
        assert_eq!(d.tasks.len(), 1);
        assert_eq!(d.tasks[0].id, TaskId(0));
        // Initial allowance comes from the participating mass only (r=2).
        assert!(approx(d.allowance.value(), 3.0, 1e-9));
        // The orphan heals: next round it participates again.
        let d = b.market.round(&b.obs());
        assert!(d.orphans.is_empty());
        assert_eq!(d.tasks.len(), 2);
    }

    #[test]
    fn steady_rounds_take_the_fast_path_bit_identically() {
        // Drive an incremental and a force-full market through the same
        // observation sequence: a steady phase (which must converge and
        // start replaying), a demand perturbation (full recompute), and a
        // second steady phase. Every decision must render byte-identically.
        // Savings climb towards the (loose, 100×) cap before the bench
        // scenario is truly stationary, so each steady phase runs long.
        let mut inc = table_bench();
        let mut full = table_bench();
        full.market.set_incremental(false);
        assert!(inc.market.incremental());
        for i in 0..800 {
            if i == 400 {
                inc.demands[0] = 250.0;
                full.demands[0] = 250.0;
            }
            let di = inc.round();
            let df = full.round();
            assert_eq!(format!("{di:?}"), format!("{df:?}"), "round {i}");
            assert_eq!(inc.level, full.level);
        }
        assert!(
            inc.market.fast_path_hits() > 0,
            "steady phases must converge onto the fast path"
        );
        assert_eq!(
            inc.market.fast_path_hits() + inc.market.full_recomputes(),
            inc.market.rounds()
        );
        assert_eq!(full.market.fast_path_hits(), 0);
    }

    #[test]
    fn fast_path_disarms_when_state_is_mutated_between_rounds() {
        let mut b = table_bench();
        // Converge onto the fast path (savings must reach their cap first).
        for _ in 0..500 {
            b.round();
        }
        assert!(b.market.last_round_fast());
        // Removing a task mutates agent state outside a round: the retained
        // rounds are stale, so the next round must recompute fully even
        // though the observation bytes do not change.
        b.market.remove_task(TaskId(1));
        let hits = b.market.fast_path_hits();
        let d = b.round();
        assert_eq!(b.market.fast_path_hits(), hits, "must not replay");
        // The departed task re-enters as a fresh agent (bid $1 again).
        assert!(approx(d.tasks[1].bid.value(), 1.0, 1e-9));
    }

    #[test]
    fn alternating_observations_hit_the_lag_2_fast_path() {
        // A period-2 input drive: once the agent economy has settled, the
        // chip power alternates between two values (both in the Normal
        // band). No single previous round ever matches (lag 1 misses every
        // round), but each round's inputs are bitwise those of two rounds
        // ago — the lag-2 entry must replay them, bit-identically to an
        // always-full market.
        let mut inc = table_bench();
        let mut full = table_bench();
        full.market.set_incremental(false);
        for _ in 0..800 {
            inc.round();
            full.round();
        }
        let base = inc.obs();
        let hits_before = inc.market.fast_path_hits();
        for i in 0..400u64 {
            let mut obs = base.clone();
            if i % 2 == 1 {
                obs.chip_power = Watts(obs.chip_power.value() + 0.001);
            }
            let di = inc.market.round(&obs);
            let df = full.market.round(&obs);
            assert_eq!(format!("{di:?}"), format!("{df:?}"), "alt round {i}");
        }
        assert!(
            inc.market.fast_path_hits() > hits_before,
            "the lag-2 fast path must engage on a period-2 input drive"
        );
    }

    #[test]
    fn chip_power_wiggle_alone_forces_recompute() {
        // Bitwise diffing is per-section: a chip-power flip dirties only
        // that section, but the round must still recompute (allowance
        // control reads it) and produce what a full market produces.
        let mut inc = table_bench();
        let mut full = table_bench();
        full.market.set_incremental(false);
        for _ in 0..20 {
            inc.round();
            full.round();
        }
        let mut obs = inc.obs();
        obs.chip_power = Watts(obs.chip_power.value() + 0.001);
        let di = inc.market.round(&obs);
        let df = full.market.round(&obs);
        assert!(!inc.market.last_round_fast());
        assert_eq!(inc.market.last_round_dirty_sections(), 1);
        assert_eq!(format!("{di:?}"), format!("{df:?}"));
    }

    #[test]
    fn round_and_round_into_agree() {
        // The buffered entry point must be bit-identical to the wrapper,
        // including when the buffer is reused across rounds.
        let mut a = table_bench();
        let mut b = table_bench();
        let mut buf = MarketDecision::default();
        for i in 0..40 {
            let obs = a.obs();
            let d1 = a.market.round(&obs);
            b.market.round_into(&obs, &mut buf);
            assert_eq!(format!("{d1:?}"), format!("{buf:?}"), "round {i}");
            for (_, step) in &d1.dvfs {
                match step {
                    VfStep::Up => {
                        a.level = (a.level + 1).min(a.ladder.len() - 1);
                        b.level = a.level;
                    }
                    VfStep::Down => {
                        a.level = a.level.saturating_sub(1);
                        b.level = a.level;
                    }
                }
            }
            if i == 20 {
                a.demands[0] = 300.0;
                b.demands[0] = 300.0;
            }
        }
    }
}
