//! The PPM power manager: the paper's kernel-module agents plugged into the
//! simulation executor.
//!
//! Every bidding period (31.7 ms by default) the manager reads the
//! executor's [`SystemSnapshot`], distils it into a [`MarketObs`], runs one
//! [`Market`] round, and queues the decision on an [`ActuationPlan`]: task
//! shares (`s_t = b_t / P_c`, realised through nice values on real hardware,
//! directly as shares here), cluster DVFS steps, and cluster power gating.
//! Every few rounds the LBT module proposes at most one task movement (§3.4:
//! load balancing every 3 bid rounds, migration every 2 load-balance
//! invocations; both disabled in the emergency state).

use std::time::Instant;

use ppm_obs::{Phase, PhaseProfiler, PolicySample};
use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::thermal::Celsius;
use ppm_platform::units::{Money, Price, ProcessingUnits, SimDuration, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_sched::audit::Auditor;
use ppm_sched::executor::{AllocationPolicy, FleetBid, PowerManager, System};
use ppm_sched::metrics::Degradation;
use ppm_sched::nice::Nice;
use ppm_sched::plan::ActuationPlan;
use ppm_sched::snapshot::{SystemSnapshot, TaskSnap};
use ppm_workload::task::TaskId;

use ppm_predict::OnlineEstimator;

use crate::config::PpmConfig;
use crate::events::{Event, EventLog};
use crate::lbt::{
    decide_load_balance, decide_migration, ClusterPowerProfile, ClusterSnapshot, CoreSnapshot,
    LbtSnapshot, Move, TaskSnapshot,
};
use crate::market::{ClusterObs, CoreObs, Market, MarketDecision, MarketObs, TaskObs, VfStep};
use crate::pool::WorkerPool;
use crate::state::PowerState;

/// An outstanding DVFS request being tracked until the regulator confirms
/// it (graceful degradation: real cpufreq transitions occasionally vanish).
#[derive(Debug, Clone, Copy)]
struct DvfsWatch {
    /// Level index we asked for.
    target: usize,
    /// Re-issues so far (bounded).
    attempts: u8,
}

/// An outstanding migration being tracked until the task shows up on its
/// destination core.
#[derive(Debug, Clone, Copy)]
struct MigrationWatch {
    task: TaskId,
    to: CoreId,
    /// Re-issues so far (bounded).
    attempts: u8,
    /// Bid round (manager-local count) before which we hold off retrying —
    /// exponential backoff, so a congested regulator is not hammered.
    next_retry: u64,
}

/// Price-theory power manager (PPM).
#[derive(Debug)]
pub struct PpmManager {
    config: PpmConfig,
    market: Market,
    next_round: SimTime,
    rounds_since_lb: u32,
    lbs_since_migration: u32,
    /// The latest decision; taken back as the reusable `round_into` buffer
    /// each round, so steady-state rounds recycle its capacity.
    last_decision: Option<MarketDecision>,
    /// Reusable observation buffer (cleared and refilled every round).
    obs_buf: MarketObs,
    /// Moves performed, for diagnostics.
    moves: Vec<(SimTime, Move)>,
    /// Tasks seen in the previous round (sorted), for exit cleanup.
    known_tasks: Vec<TaskId>,
    /// Scratch for this round's sorted task ids.
    current_tasks: Vec<TaskId>,
    /// Scratch for grouping shares by core in nice actuation.
    nice_scratch: Vec<(CoreId, TaskId, f64)>,
    /// Per-cluster profiled power behaviour for LBT speculation, cached at
    /// `init` (the power model is static).
    lbt_profiles: Vec<ClusterPowerProfile>,
    /// Online demand estimator (when `config.online_estimation` is set).
    estimator: OnlineEstimator,
    /// Structured decision log.
    events: EventLog,
    last_state: PowerState,
    /// Bid rounds this manager has run (cadence base for retry backoff).
    bid_rounds: u64,
    /// Last plausible chip-power reading and when it was taken, for the
    /// dropped-sensor fallback (staleness-bounded).
    last_good_power: Option<(SimTime, Watts)>,
    /// Last accepted junction temperature (thermal glitch filter).
    last_good_temp: Option<Celsius>,
    /// Consecutive rounds the thermal reading was rejected as a glitch.
    temp_rejects: u32,
    /// Per-cluster outstanding DVFS requests awaiting confirmation.
    dvfs_watch: Vec<Option<DvfsWatch>>,
    /// Outstanding LBT migration awaiting confirmation.
    migration_watch: Option<MigrationWatch>,
    /// Money audit state: per-task savings as of the last audited round
    /// (sorted by id) and that round's announced allowance.
    audit_savings: Vec<(TaskId, Money)>,
    audit_prev_allowance: Option<Money>,
    /// Last market round the auditor has seen.
    audited_round: u64,
    /// Consecutive *derived* audits (not replay-skipped ones) that raised
    /// no violations, saturating at 2 — the precondition for reusing the
    /// money books on a fast-path round. Two are required because a lag-2
    /// market replay duplicates the checks of the round two back, so both
    /// parities' most recent derivations must have been clean.
    audit_clean_streak: u8,
    /// Live graceful-degradation counters, incremented exactly where the
    /// corresponding [`Event`]s are pushed (so telemetry and hardened-run
    /// totals never replay the event stream).
    degradation: Degradation,
    /// Cumulative shed count last logged per open-loop task, dense by task
    /// id (grows only on admission — steady state is indexed reads).
    shed_seen: Vec<u64>,
}

impl PpmManager {
    /// Build a manager with `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PpmConfig) -> PpmManager {
        let mut market = Market::new(config.clone());
        if config.market_workers > 1 {
            // One pool for the manager's lifetime: `market_workers` shards
            // total, of which the planning thread runs one itself
            // (DESIGN.md §13).
            market.attach_pool(std::sync::Arc::new(WorkerPool::new(
                config.market_workers - 1,
            )));
        }
        PpmManager {
            config,
            market,
            next_round: SimTime::ZERO,
            rounds_since_lb: 0,
            lbs_since_migration: 0,
            last_decision: None,
            obs_buf: MarketObs::empty(),
            moves: Vec::new(),
            known_tasks: Vec::new(),
            current_tasks: Vec::new(),
            nice_scratch: Vec::new(),
            lbt_profiles: Vec::new(),
            estimator: OnlineEstimator::new(),
            events: EventLog::new(),
            last_state: PowerState::Normal,
            bid_rounds: 0,
            last_good_power: None,
            last_good_temp: None,
            temp_rejects: 0,
            dvfs_watch: Vec::new(),
            migration_watch: None,
            audit_savings: Vec::new(),
            audit_prev_allowance: None,
            audited_round: 0,
            audit_clean_streak: 0,
            degradation: Degradation::default(),
            shed_seen: Vec::new(),
        }
    }

    /// Rounds a last-good power reading stays usable as a fallback before
    /// the manager must trust the raw sensor again.
    const POWER_STALENESS_ROUNDS: u64 = 8;
    /// Bounded re-issues of a lost DVFS request or failed migration.
    const MAX_ACTUATION_RETRIES: u8 = 3;
    /// Largest credible junction-temperature step between two bid rounds
    /// (°C); the RC model moves well under 1 °C per 31.7 ms round even at
    /// peak power, so anything bigger is a sensor glitch.
    const MAX_TEMP_STEP: f64 = 5.0;
    /// Consecutive rejected thermal readings before one is accepted anyway
    /// (a real step change must not be filtered forever).
    const MAX_TEMP_REJECTS: u32 = 3;

    /// The paper's default TC2 configuration.
    pub fn tc2() -> PpmManager {
        PpmManager::new(PpmConfig::tc2())
    }

    /// The configuration in force.
    pub fn config(&self) -> &PpmConfig {
        &self.config
    }

    /// The market (for inspecting bids, savings, state).
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// The decision of the most recent bidding round.
    pub fn last_decision(&self) -> Option<&MarketDecision> {
        self.last_decision.as_ref()
    }

    /// All task movements the LBT module has performed.
    pub fn moves(&self) -> &[(SimTime, Move)] {
        &self.moves
    }

    /// The online estimator (only populated when online estimation is on).
    pub fn estimator(&self) -> &OnlineEstimator {
        &self.estimator
    }

    /// The structured decision log (rounds, state changes, DVFS steps,
    /// migrations, task churn).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Feed the estimator with this round's observations.
    fn observe_costs(&mut self, snap: &SystemSnapshot) {
        for t in &snap.tasks {
            if let Some(cost) = t.cost_per_beat {
                let class = snap.core(t.core).class;
                self.estimator.observe(t.id, class, t.target_rate, cost);
            }
        }
    }

    /// Chip power with the dropped-sensor fallback: a zero reading while
    /// tasks run is physically impossible (leakage alone is positive), so
    /// substitute the last good reading while it is fresh enough. On a
    /// clean trace the raw reading is positive from the first executed
    /// quantum onwards and this is the identity.
    fn plausible_chip_power(&mut self, snap: &SystemSnapshot) -> Watts {
        let raw = snap.chip_power;
        if raw.value() <= 0.0 && !snap.tasks.is_empty() {
            if let Some((at, w)) = self.last_good_power {
                let bound = SimDuration(self.config.bid_period.0 * Self::POWER_STALENESS_ROUNDS);
                if snap.now.since(at) <= bound {
                    self.degradation.sensor_fallbacks += 1;
                    self.events.push(
                        snap.now,
                        Event::SensorFallback {
                            observed: raw,
                            used: w,
                        },
                    );
                    return w;
                }
            }
            return raw;
        }
        self.last_good_power = Some((snap.now, raw));
        raw
    }

    /// Junction temperature with the spike filter: a jump beyond the RC
    /// model's physical slew rate is held back (the previous accepted value
    /// is used) for up to [`Self::MAX_TEMP_REJECTS`] consecutive rounds, so
    /// one glitched read cannot trip the thermal-pressure emergency while a
    /// genuine sustained rise still gets through. On a clean trace the
    /// per-round step is far below the threshold and this is the identity.
    fn plausible_hottest(&mut self, snap: &SystemSnapshot) -> Option<Celsius> {
        let h = snap.hottest?;
        if let Some(prev) = self.last_good_temp {
            let glitch = (h.value() - prev.value()).abs() > Self::MAX_TEMP_STEP;
            if glitch && self.temp_rejects < Self::MAX_TEMP_REJECTS {
                self.temp_rejects += 1;
                return Some(prev);
            }
        }
        self.temp_rejects = 0;
        self.last_good_temp = Some(h);
        Some(h)
    }

    /// Distil the executor snapshot into `self.obs_buf` (capacity is
    /// reused).
    fn observe_into(&mut self, snap: &SystemSnapshot) {
        let plausible_power = self.plausible_chip_power(snap);
        let plausible_hottest = self.plausible_hottest(snap);
        let obs = &mut self.obs_buf;
        obs.tasks.clear();
        obs.tasks.extend(snap.tasks.iter().map(|t| TaskObs {
            id: t.id,
            core: t.core,
            priority: t.priority,
            demand: t.demand,
        }));
        obs.cores.clear();
        obs.cores.extend(snap.cores.iter().map(|c| CoreObs {
            id: c.id,
            cluster: c.cluster,
        }));
        obs.clusters.clear();
        obs.clusters
            .extend(snap.clusters.iter().map(|cl| ClusterObs {
                id: cl.id,
                supply: cl.supply_per_core,
                supply_up: cl.supply_up(),
                supply_down: cl.supply_down(),
                power: cl.power,
            }));
        // Thermal pressure (extension): translate junction-temperature
        // headroom into the equivalent power signal so the chip agent's
        // state machine — and hence the money supply — reacts to heat
        // exactly as it reacts to a TDP excursion.
        let mut chip_power = plausible_power;
        if let (Some((th, crit)), Some(hottest)) = (self.config.thermal_limit, plausible_hottest) {
            if hottest > crit {
                chip_power = chip_power.max(self.config.tdp * 1.05);
            } else if hottest > th {
                chip_power = chip_power.max(self.config.threshold * 1.01);
            }
        }
        obs.chip_power = chip_power;
    }

    /// Queue one market decision on the plan.
    fn apply(
        &mut self,
        snap: &SystemSnapshot,
        plan: &mut ActuationPlan,
        decision: &MarketDecision,
    ) {
        if self.config.actuate_via_nice {
            self.apply_via_nice(snap, plan, decision);
        } else {
            for &(task, share) in &decision.shares {
                plan.set_share(task, share);
            }
        }
        for &(cluster, step) in &decision.dvfs {
            let cl = snap.cluster(cluster);
            let level = match step {
                VfStep::Up => cl.step_up(),
                VfStep::Down => cl.step_down(),
            };
            plan.request_level(cluster, VfLevel(level));
            // Watch the request until the regulator confirms it; a lost
            // command is re-issued by `retry_lost_dvfs` next round.
            self.dvfs_watch[cluster.0] = Some(DvfsWatch {
                target: level,
                attempts: 0,
            });
        }
    }

    /// Re-issue DVFS requests the regulator never acknowledged. On a clean
    /// trace every request is in force (or in flight) by the next round's
    /// snapshot — `effective_target` reflects pending transitions — so the
    /// watch clears without a retry and this queues nothing.
    fn retry_lost_dvfs(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        for ci in 0..self.dvfs_watch.len().min(snap.clusters.len()) {
            let Some(mut w) = self.dvfs_watch[ci] else {
                continue;
            };
            let cl = &snap.clusters[ci];
            if cl.off
                || cl.effective_target == w.target
                || w.attempts >= Self::MAX_ACTUATION_RETRIES
            {
                // Landed, moot (gated), or out of patience: resync with
                // whatever the hardware actually does.
                self.dvfs_watch[ci] = None;
                continue;
            }
            w.attempts += 1;
            plan.request_level(ClusterId(ci), VfLevel(w.target));
            self.degradation.dvfs_retries += 1;
            self.events.push(
                snap.now,
                Event::DvfsRetry {
                    cluster: ClusterId(ci),
                    level: VfLevel(w.target),
                    attempt: w.attempts,
                },
            );
            self.dvfs_watch[ci] = Some(w);
        }
    }

    /// Re-issue a migration the executor never performed, with exponential
    /// backoff (1, 2, 4 rounds). On a clean trace the task is on its
    /// destination core by the next round's snapshot, so the watch clears
    /// without a retry and this queues nothing.
    fn retry_lost_migration(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        let Some(mut w) = self.migration_watch else {
            return;
        };
        let Some(t) = snap.task(w.task) else {
            // The mover exited (or crashed) before arriving; nothing owed.
            self.migration_watch = None;
            return;
        };
        if t.core == w.to {
            self.migration_watch = None;
            return;
        }
        if self.bid_rounds < w.next_retry {
            return;
        }
        if w.attempts >= Self::MAX_ACTUATION_RETRIES {
            self.migration_watch = None;
            return;
        }
        w.attempts += 1;
        w.next_retry = self.bid_rounds + (1 << w.attempts);
        let target_cluster = snap.core(w.to).cluster;
        if plan.cluster_off(snap, target_cluster) {
            plan.power_on(target_cluster);
        }
        plan.migrate(w.task, w.to);
        self.degradation.migration_retries += 1;
        self.events.push(
            snap.now,
            Event::MigrationRetry {
                task: w.task,
                to: w.to,
                attempt: w.attempts,
            },
        );
        self.migration_watch = Some(w);
    }

    /// The paper's kernel realization of resource distribution: translate
    /// each core's market shares into nice values ("lower nice value
    /// manifests as higher priority and more resource consumption") and let
    /// CFS weighted fair sharing approximate the ratios.
    fn apply_via_nice(
        &mut self,
        snap: &SystemSnapshot,
        plan: &mut ActuationPlan,
        decision: &MarketDecision,
    ) {
        // Group by core via a sorted scratch vector instead of a HashMap:
        // deterministic actuation order and no per-round allocation. No
        // migration is queued before shares, so the snapshot placement is
        // the effective one.
        self.nice_scratch.clear();
        self.nice_scratch
            .extend(decision.shares.iter().map(|&(task, share)| {
                let core = snap.task(task).expect("share for active task").core;
                (core, task, share.value())
            }));
        self.nice_scratch
            .sort_unstable_by_key(|&(core, task, _)| (core, task));
        let mut start = 0;
        while start < self.nice_scratch.len() {
            let core = self.nice_scratch[start].0;
            let mut end = start + 1;
            while end < self.nice_scratch.len() && self.nice_scratch[end].0 == core {
                end += 1;
            }
            let group = &self.nice_scratch[start..end];
            let total: f64 = group.iter().map(|&(_, _, s)| s).sum();
            if total > 0.0 {
                // CFS only sees weight ratios: scale the shares so the mean
                // target weight is the nice-0 weight, then snap each to the
                // closest table entry.
                let n = group.len() as f64;
                for &(_, task, share) in group {
                    let target = Nice::DEFAULT.weight() as f64 * n * share / total;
                    plan.set_nice(task, Nice::for_weight(target));
                }
            }
            start = end;
        }
    }

    /// Gate clusters with no tasks; ungate clusters that host tasks again.
    /// Runs through the plan overlays so migrations queued earlier in this
    /// same invocation count toward residency.
    fn manage_gating(&self, snap: &SystemSnapshot, plan: &mut ActuationPlan) {
        if !self.config.power_down_idle_clusters {
            return;
        }
        for ci in 0..snap.clusters.len() {
            let id = ClusterId(ci);
            let has_tasks = plan.cluster_has_tasks(snap, id);
            let off = plan.cluster_off(snap, id);
            if has_tasks && off {
                plan.power_on(id);
            } else if !has_tasks && !off {
                plan.power_off(id);
            }
        }
    }

    /// [`PpmManager::manage_gating`] against the live system, for `init`
    /// (the one hook with mutable system access).
    fn manage_gating_now(&self, sys: &mut System) {
        if !self.config.power_down_idle_clusters {
            return;
        }
        for i in 0..sys.chip().clusters().len() {
            let id = sys.chip().clusters()[i].id();
            let has_tasks = sys.cluster_has_tasks(id);
            let off = sys.chip().cluster(id).is_off();
            if has_tasks && off {
                sys.power_on(id);
            } else if !has_tasks && !off {
                sys.power_off(id);
            }
        }
    }

    /// Cache each cluster's profiled power behaviour (static: derived from
    /// the chip's power model and V-F tables).
    fn cache_lbt_profiles(&mut self, sys: &System) {
        let chip = sys.chip();
        let model = chip.power_model();
        self.lbt_profiles = chip
            .clusters()
            .iter()
            .map(|cl| {
                let params = model.params(cl.class());
                let n = cl.core_count() as f64;
                let idle = cl
                    .table()
                    .iter()
                    .map(|(_, p)| {
                        model.uncore(cl.class())
                            + Watts(params.leakage_coeff * p.voltage.volts() * n)
                    })
                    .collect();
                let watts_per_pu = cl
                    .table()
                    .iter()
                    .map(|(_, p)| {
                        let v = p.voltage.volts();
                        params.dynamic_coeff * v * v
                    })
                    .collect();
                ClusterPowerProfile { idle, watts_per_pu }
            })
            .collect();
    }

    /// Build the LBT snapshot from the executor snapshot and market state.
    fn lbt_snapshot(&self, snap: &SystemSnapshot) -> LbtSnapshot {
        let clusters = snap
            .clusters
            .iter()
            .map(|cl| {
                // Constrained-core price from the last round; fall back to a
                // minimum-bid-implied price.
                let price = self.cluster_price(snap, cl.id);
                let cores = cl
                    .cores
                    .iter()
                    .map(|&core| CoreSnapshot {
                        id: core,
                        tasks: snap.tasks_on(core).map(|t| self.task_snapshot(t)).collect(),
                    })
                    .collect();
                ClusterSnapshot {
                    id: cl.id,
                    class: cl.class,
                    ladder: cl.ladder.clone(),
                    level: cl.level,
                    price,
                    power: self.lbt_profiles[cl.id.0].clone(),
                    cores,
                }
            })
            .collect();
        LbtSnapshot {
            clusters,
            tolerance: self.config.tolerance,
            min_bid: self.config.min_bid,
            supply_capped: self.market.state() != PowerState::Normal,
        }
    }

    fn task_snapshot(&self, t: &TaskSnap) -> TaskSnapshot {
        // Off-line profile by default; the online estimator (the paper's
        // stated future work) replaces it when enabled and warmed up.
        let mut demand = ppm_workload::perclass::PerClass::new(t.demand_little, t.demand_big);
        if self.config.online_estimation {
            if let Some(est) = self.estimator.demand_per_class(t.id) {
                demand = est;
            }
        }
        TaskSnapshot {
            id: t.id,
            priority: t.priority,
            demand,
            supply: t.granted,
            bid: self.market.bid_of(t.id),
        }
    }

    /// Price of the constrained core of `cluster` from the last decision.
    fn cluster_price(&self, snap: &SystemSnapshot, cluster: ClusterId) -> Price {
        let Some(decision) = &self.last_decision else {
            return Price::ZERO;
        };
        // Constrained core: highest demand among this cluster's cores.
        // `decision.tasks` and `decision.prices` are sorted by id, so the
        // lookups are binary searches.
        let mut best: Option<(ProcessingUnits, CoreId)> = None;
        for &core in &snap.cluster(cluster).cores {
            let d: ProcessingUnits = snap
                .tasks_on(core)
                .map(|t| {
                    decision
                        .tasks
                        .binary_search_by_key(&t.id, |r| r.id)
                        .map_or(ProcessingUnits::ZERO, |i| decision.tasks[i].demand)
                })
                .sum();
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, core));
            }
        }
        best.and_then(|(_, core)| {
            decision
                .prices
                .binary_search_by_key(&core, |&(c, _)| c)
                .ok()
                .map(|i| decision.prices[i].1)
        })
        .unwrap_or(Price::ZERO)
    }

    /// Run the LBT module and queue at most one move.
    fn run_lbt(&mut self, snap: &SystemSnapshot, plan: &mut ActuationPlan, migrate: bool) {
        let snapshot = self.lbt_snapshot(snap);
        let decision = if migrate {
            decide_migration(&snapshot).or_else(|| decide_load_balance(&snapshot))
        } else {
            decide_load_balance(&snapshot)
        };
        if let Some(m) = decision {
            // Moving to a gated cluster requires powering it up first.
            let from_cluster = snap
                .core(snap.task(m.task).expect("mover is active").core)
                .cluster;
            let target_cluster = snap.core(m.to_core).cluster;
            if plan.cluster_off(snap, target_cluster) {
                plan.power_on(target_cluster);
            }
            // LBT never proposes a same-core move (movers sit on the
            // constrained core, targets never do) and PPM sets no affinity
            // masks, so the queued migration is real; log it.
            if plan.core_of(snap, m.task) != m.to_core {
                plan.migrate(m.task, m.to_core);
                self.moves.push((snap.now, m));
                self.migration_watch = Some(MigrationWatch {
                    task: m.task,
                    to: m.to_core,
                    attempts: 0,
                    next_retry: self.bid_rounds + 1,
                });
                self.events.push(
                    snap.now,
                    Event::Migration {
                        task: m.task,
                        to: m.to_core,
                        inter_cluster: from_cluster != target_cluster,
                    },
                );
            }
        }
    }
}

impl PowerManager for PpmManager {
    fn name(&self) -> &'static str {
        "PPM"
    }

    fn init(&mut self, sys: &mut System) {
        sys.set_policy(if self.config.actuate_via_nice {
            AllocationPolicy::FairWeights
        } else {
            AllocationPolicy::Market
        });
        sys.set_tdp_accounting(self.config.tdp);
        // Until the first round distributes real shares, let every task
        // claim a fair slice so nothing starves during the first 31.7 ms.
        let ids = sys.task_ids();
        for id in ids {
            let core = sys.core_of(id);
            let supply = sys.chip().core_supply(core);
            let n = sys.tasks_on(core).len().max(1) as f64;
            sys.set_share(id, supply / n);
        }
        self.cache_lbt_profiles(sys);
        self.manage_gating_now(sys);
    }

    fn plan(&mut self, snap: &SystemSnapshot, _dt: SimDuration, plan: &mut ActuationPlan) {
        self.plan_inner(snap, plan, None);
    }

    fn plan_profiled(
        &mut self,
        snap: &SystemSnapshot,
        _dt: SimDuration,
        plan: &mut ActuationPlan,
        prof: &mut PhaseProfiler,
    ) {
        self.plan_inner(snap, plan, Some(prof));
    }

    fn sample_policy(&self, out: &mut PolicySample) {
        out.reset(self.obs_buf.cores.len());
        if let Some(a) = self.market.allowance() {
            out.allowance = a.value();
            // Money supply = allowance in circulation + every live agent's
            // savings (exiting tasks take their savings with them).
            let savings: f64 = self
                .known_tasks
                .iter()
                .map(|&t| self.market.savings_of(t).value())
                .sum();
            out.money_supply = a.value() + savings;
        }
        if let Some(d) = &self.last_decision {
            for &(core, price) in &d.prices {
                out.set_core_price(core.0, price.value());
            }
        }
        if self.market.rounds() > 0 {
            out.market_fast_hit = f64::from(u8::from(self.market.last_round_fast()));
            out.market_dirty_stages = f64::from(self.market.last_round_dirty_sections());
        }
        out.market_workers = self.market.workers() as f64;
    }

    fn degradation(&self) -> Degradation {
        self.degradation
    }

    fn audit(&mut self, _snap: &SystemSnapshot, auditor: &mut Auditor) {
        self.audit_impl(auditor);
    }

    /// Equilibrium marginal utility for the fleet exchange: the discovered
    /// per-core price mass per observed watt. When the chip's TDP is
    /// squeezed, supply shrinks, prices rise, and the chip bids higher for
    /// budget — exactly the §3.2 scarcity signal, one level up. `desired`
    /// scales the draw by the demand/supply imbalance (slew-bounded the
    /// way the chip agent's Δ is).
    fn fleet_bid(&self) -> Option<FleetBid> {
        let d = self.last_decision.as_ref()?;
        let power = self.obs_buf.chip_power;
        let price_mass: f64 = d.prices.iter().map(|&(_, p)| p.value()).sum();
        let value_per_watt = price_mass / power.value().max(1e-6);
        let imbalance = if d.total_supply.is_positive() {
            (d.total_demand.value() / d.total_supply.value()).clamp(0.5, 2.0)
        } else {
            1.0
        };
        Some(FleetBid {
            value_per_watt,
            power,
            desired: power * imbalance,
        })
    }

    /// Adopt the exchange's cleared allowance as the chip TDP. The
    /// threshold keeps its configured ratio below the TDP, so the buffer
    /// zone scales with the budget. Bitwise-equal budgets are recognised
    /// as no-ops inside the market (the fast path stays armed); a changed
    /// budget invalidates the retained rounds.
    fn set_power_budget(&mut self, tdp: Watts) -> bool {
        let ratio = self.config.threshold.value() / self.config.tdp.value();
        let threshold = Watts(tdp.value() * ratio);
        if self.market.set_power_budget(tdp, threshold) {
            self.config.tdp = tdp;
            self.config.threshold = threshold;
        }
        true
    }
}

impl PpmManager {
    /// The body behind [`PowerManager::plan`] / `plan_profiled`: one
    /// bidding round on cadence, optionally timing the market's bid /
    /// price-discovery / DVFS sections and the LBT module. Timing never
    /// feeds back into any decision.
    fn plan_inner(
        &mut self,
        snap: &SystemSnapshot,
        plan: &mut ActuationPlan,
        mut prof: Option<&mut PhaseProfiler>,
    ) {
        if snap.now < self.next_round {
            return;
        }
        self.next_round = snap.now + self.config.bid_period;
        self.bid_rounds += 1;
        if self.dvfs_watch.len() != snap.clusters.len() {
            self.dvfs_watch.resize(snap.clusters.len(), None);
        }

        if self.config.online_estimation {
            self.observe_costs(snap);
        }
        self.observe_into(snap);
        // Graceful degradation: chase actuations the hardware lost before
        // queueing this round's fresh decisions (plan order means a fresh
        // request for the same knob wins).
        self.retry_lost_dvfs(snap, plan);
        self.retry_lost_migration(snap, plan);
        // Task churn: retire the market agents of departed tasks (their
        // savings leave the economy with them) and log admissions. The
        // sorted merge-diff replaces HashSet differences, so churn events
        // fire in task-id order on every run.
        //
        // Fast path: the snapshot's advisory change mask says the task
        // section kept its digest, and an exact in-order id comparison
        // (the hard guarantee — digests are probabilistic) confirms the
        // membership is the same as last round's, so the sort + merge-diff
        // is skipped entirely. `snap.tasks` (hence `obs_buf.tasks`) is
        // ascending by id, and `known_tasks` is sorted, so a zip compare
        // is exact.
        let now = snap.now;
        let membership_unchanged = !snap.changed.tasks
            && self.obs_buf.tasks.len() == self.known_tasks.len()
            && self
                .obs_buf
                .tasks
                .iter()
                .zip(&self.known_tasks)
                .all(|(t, &k)| t.id == k);
        if !membership_unchanged {
            self.diff_task_churn(now);
        }
        // Run the round into the recycled decision buffer.
        let mut decision = self.last_decision.take().unwrap_or_default();
        match prof.as_deref_mut() {
            Some(p) => self
                .market
                .round_into_profiled(&self.obs_buf, &mut decision, p),
            None => self.market.round_into(&self.obs_buf, &mut decision),
        }
        self.events.push(
            now,
            Event::Round {
                round: self.market.rounds(),
                allowance: decision.allowance,
                power: self.obs_buf.chip_power,
                state: decision.state,
            },
        );
        for &(task, core) in &decision.orphans {
            self.degradation.tasks_orphaned += 1;
            self.events.push(now, Event::TaskOrphaned { task, core });
        }
        if decision.state != self.last_state {
            self.events.push(
                now,
                Event::StateChange {
                    from: self.last_state,
                    to: decision.state,
                },
            );
            self.last_state = decision.state;
        }
        for &(cluster, step) in &decision.dvfs {
            self.events.push(now, Event::Dvfs { cluster, step });
        }
        // Open-loop back-pressure: log the per-task shed delta since the
        // previous round, so overload shows up in the decision log exactly
        // once per burst rather than once per dropped request.
        for t in &snap.tasks {
            if let Some(o) = t.open_loop {
                if t.id.0 >= self.shed_seen.len() {
                    self.shed_seen.resize(t.id.0 + 1, 0);
                }
                let prev = self.shed_seen[t.id.0];
                if o.shed > prev {
                    self.events.push(
                        now,
                        Event::RequestShed {
                            task: t.id,
                            dropped: o.shed - prev,
                        },
                    );
                    self.shed_seen[t.id.0] = o.shed;
                }
            }
        }
        self.apply(snap, plan, &decision);
        let state = decision.state;
        self.last_decision = Some(decision);

        // LBT cadence (§3.4), disabled in the emergency state.
        self.rounds_since_lb += 1;
        if self.config.lbt_enabled
            && state != PowerState::Emergency
            && self.rounds_since_lb >= self.config.load_balance_every
        {
            self.rounds_since_lb = 0;
            self.lbs_since_migration += 1;
            let migrate = self.lbs_since_migration >= self.config.migrate_every;
            if migrate {
                self.lbs_since_migration = 0;
            }
            let lbt_mark = prof.as_ref().map(|_| Instant::now());
            self.run_lbt(snap, plan, migrate);
            if let (Some(p), Some(m)) = (prof, lbt_mark) {
                p.record(Phase::Lbt, m.elapsed().as_nanos() as u64);
            }
        }
        self.manage_gating(snap, plan);
    }

    /// The sorted merge-diff behind task-churn handling: retire departed
    /// tasks' market agents, log admissions, and refresh `known_tasks`.
    fn diff_task_churn(&mut self, now: SimTime) {
        self.current_tasks.clear();
        self.current_tasks
            .extend(self.obs_buf.tasks.iter().map(|t| t.id));
        self.current_tasks.sort_unstable();
        let (mut i, mut j) = (0, 0);
        while i < self.known_tasks.len() || j < self.current_tasks.len() {
            let old = self.known_tasks.get(i).copied();
            let new = self.current_tasks.get(j).copied();
            match (old, new) {
                (Some(o), Some(n)) if o == n => {
                    i += 1;
                    j += 1;
                }
                (Some(o), Some(n)) if o < n => {
                    self.market.remove_task(o);
                    self.estimator.remove_task(o);
                    self.events.push(now, Event::TaskExited { task: o });
                    i += 1;
                }
                (Some(_), Some(n)) => {
                    self.events.push(now, Event::TaskAdmitted { task: n });
                    j += 1;
                }
                (Some(o), None) => {
                    self.market.remove_task(o);
                    self.estimator.remove_task(o);
                    self.events.push(now, Event::TaskExited { task: o });
                    i += 1;
                }
                (None, Some(n)) => {
                    self.events.push(now, Event::TaskAdmitted { task: n });
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        std::mem::swap(&mut self.known_tasks, &mut self.current_tasks);
    }

    /// Money conservation (§3.2): re-derive every agent's balance-sheet
    /// update from the round records and flag any divergence. The checks
    /// recompute the market's own formulas on the market's own inputs, so
    /// on a correct implementation they hold bit-exactly. This is the body
    /// behind [`PowerManager::audit`].
    fn audit_impl(&mut self, auditor: &mut Auditor) {
        let round = self.market.rounds();
        if round == self.audited_round {
            return; // no new round this quantum
        }
        // Fast-path reuse: a replay round's decision is byte-identical to a
        // retained round's (one or two back), so every check below would
        // recompute exactly the same f64 expressions on exactly the same
        // inputs as the derivation that audited that retained round —
        // including conservation, because a replay certifies the state
        // recurrence m_{R-1} = m_{R-1-lag}, making the clamp(m + a − b, …)
        // identity at round R the literal same computation as at round
        // R−lag. With lag ≤ 2, a chain of replays traces every skipped
        // check back to one of the last *two* derived audits, so reuse the
        // books only when both were violation-free and no round was skipped
        // in between; otherwise fall through and re-derive.
        if round == self.audited_round + 1
            && self.market.last_round_fast()
            && self.audit_clean_streak >= 2
        {
            self.audited_round = round;
            return;
        }
        self.audited_round = round;
        let violations_before = auditor.violations().len();
        // Split borrows: the decision is read while the audit state is
        // rebuilt.
        let Self {
            config,
            last_decision,
            audit_savings,
            audit_prev_allowance,
            ..
        } = self;
        let Some(d) = last_decision.as_ref() else {
            return;
        };
        const EPS: f64 = 1e-9;
        let min_bid = config.min_bid.value();
        let cap_factor = config.savings_cap_factor;
        // Allowance bounds: clamp(A + Δ) ∈ [min_bid · participants, ·1e12].
        let floor = min_bid * d.tasks.len().max(1) as f64;
        let a_next = d.allowance.value();
        if a_next < floor - EPS || a_next > floor * 1e12 * (1.0 + 1e-9) + EPS {
            auditor.report(
                "money-allowance-bounds",
                format!("allowance {a_next} outside [{floor}, {floor}e12]"),
            );
        }
        // Distribution: Σ a_t over participants never exceeds the allowance
        // announced by the previous round.
        if let Some(prev_a) = *audit_prev_allowance {
            let distributed: f64 = d.tasks.iter().map(|t| t.allowance.value()).sum();
            if distributed > prev_a.value() * (1.0 + 1e-9) + EPS {
                auditor.report(
                    "money-overdistributed",
                    format!(
                        "Σ task allowances {distributed} > allowance {}",
                        prev_a.value()
                    ),
                );
            }
        }
        for t in &d.tasks {
            let a = t.allowance.value();
            let b = t.bid.value();
            let m = t.savings.value();
            // Bid floor: every bidding path clamps at min_bid (a frozen bid
            // replays an older — also clamped — bid).
            if b < min_bid - EPS {
                auditor.report(
                    "money-bid-floor",
                    format!("task {}: bid {b} < min bid {min_bid}", t.id.0),
                );
            }
            // Savings band: m' ∈ [0, cap_factor · a].
            if m < -EPS || m > a * cap_factor + EPS {
                auditor.report(
                    "money-savings-cap",
                    format!(
                        "task {}: savings {m} outside [0, {}]",
                        t.id.0,
                        a * cap_factor
                    ),
                );
            }
            // Conservation: m' must equal clamp(m + a − b, 0, cap_factor·a)
            // computed from the balance we recorded last round. The inputs
            // are the market's own f64s, so the recomputation is bit-exact.
            if let Ok(i) = audit_savings.binary_search_by_key(&t.id, |&(id, _)| id) {
                let prev = audit_savings[i].1.value();
                let expect = (prev + a - b).clamp(0.0, a * cap_factor);
                if (m - expect).abs() > EPS {
                    auditor.report(
                        "money-conservation",
                        format!(
                            "task {}: savings {m}, expected clamp({prev} + {a} - {b}) = {expect}",
                            t.id.0
                        ),
                    );
                }
            }
        }
        audit_savings.clear();
        audit_savings.extend(d.tasks.iter().map(|t| (t.id, t.savings)));
        *audit_prev_allowance = Some(d.allowance);
        if auditor.violations().len() == violations_before {
            self.audit_clean_streak = self.audit_clean_streak.saturating_add(1).min(2);
        } else {
            self.audit_clean_streak = 0;
        }
    }
}

/// Place tasks on the LITTLE cluster round-robin, as after boot on TC2
/// (Linux boots on the LITTLE cluster in the paper's setup).
pub fn place_on_little(sys: &mut System) {
    let little: Vec<CoreId> = sys
        .chip()
        .clusters()
        .iter()
        .filter(|c| c.class() == ppm_platform::core::CoreClass::Little)
        .flat_map(|c| c.cores().to_vec())
        .collect();
    assert!(!little.is_empty(), "chip has no LITTLE cluster");
    let ids = sys.task_ids();
    for (i, id) in ids.into_iter().enumerate() {
        let target = little[i % little.len()];
        if sys.core_of(id) != target {
            sys.migrate(id, target);
        }
    }
}

/// Handy constructor: a TC2 system with `tasks`, placed on LITTLE, run by a
/// PPM manager — the common experimental setup.
pub fn tc2_ppm_system(
    tasks: Vec<ppm_workload::task::Task>,
    config: PpmConfig,
) -> (System, PpmManager) {
    let chip = ppm_platform::chip::Chip::tc2();
    let mut sys = System::new(chip, AllocationPolicy::Market);
    let little0 = CoreId(0);
    for t in tasks {
        sys.add_task(t, little0);
    }
    place_on_little(&mut sys);
    (sys, PpmManager::new(config))
}

// Re-export for examples' convenience.
pub use crate::market::VfStep as AppliedVfStep;

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_platform::units::SimDuration;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn task(id: usize, b: Benchmark, i: Input, prio: u32) -> Task {
        Task::new(
            TaskId(id),
            BenchmarkSpec::of(b, i).expect("variant"),
            Priority(prio),
        )
    }

    #[test]
    fn light_load_settles_at_low_power_and_meets_qos() {
        // One easy task: PPM should meet its heart-rate goal at far below
        // the maximum power.
        let (sys, mgr) = tc2_ppm_system(
            vec![task(0, Benchmark::Blackscholes, Input::Large, 1)],
            PpmConfig::tc2(),
        );
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(30));
        let m = sim.metrics();
        let miss = m.task(TaskId(0)).expect("observed").miss_fraction();
        assert!(miss < 0.10, "miss fraction {miss}");
        // Power far below the 8 W chip peak: a lone 200-PU task on LITTLE.
        assert!(
            m.average_power().value() < 1.0,
            "power {}",
            m.average_power()
        );
    }

    #[test]
    fn idle_big_cluster_is_gated() {
        let (sys, mgr) = tc2_ppm_system(
            vec![task(0, Benchmark::Blackscholes, Input::Large, 1)],
            PpmConfig::tc2(),
        );
        let mut sim = Simulation::new(sys, mgr);
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim.system().chip().cluster(ClusterId(1)).is_off());
    }

    #[test]
    fn demanding_task_is_migrated_to_big_cluster() {
        // tracking_f demands ~800 PU on LITTLE (over a shared core) but only
        // ~500 on big: with two of them on LITTLE, LBT must move work over.
        let (sys, mgr) = tc2_ppm_system(
            vec![
                task(0, Benchmark::Tracking, Input::FullHd, 1),
                task(1, Benchmark::Multicnt, Input::FullHd, 1),
                task(2, Benchmark::Texture, Input::FullHd, 1),
                task(3, Benchmark::X264, Input::Native, 1),
            ],
            PpmConfig::tc2(),
        );
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(40));
        let moved_to_big = sim
            .system()
            .task_ids()
            .iter()
            .filter(|&&id| {
                sim.system().chip().core(sim.system().core_of(id)).class()
                    == ppm_platform::core::CoreClass::Big
            })
            .count();
        assert!(
            moved_to_big >= 1,
            "heavy tasks should spill to the big cluster; moves: {:?}",
            sim.manager().moves()
        );
    }

    #[test]
    fn tdp_cap_is_enforced() {
        // Heavy load under an artificial 4 W cap: the emergency mechanism
        // must keep time-above-TDP small.
        let (sys, mgr) = tc2_ppm_system(
            vec![
                task(0, Benchmark::Tracking, Input::FullHd, 1),
                task(1, Benchmark::Multicnt, Input::FullHd, 1),
                task(2, Benchmark::Texture, Input::FullHd, 1),
                task(3, Benchmark::Swaptions, Input::Native, 1),
                task(4, Benchmark::X264, Input::Native, 1),
                task(5, Benchmark::Blackscholes, Input::Native, 1),
            ],
            PpmConfig::tc2_with_tdp(Watts(4.0)),
        );
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(60));
        let m = sim.metrics();
        // Discrete V-F levels can straddle the cap, so the paper expects
        // the overloaded system to "oscillate around the TDP"; what must
        // hold is that excursions are small and brief and the budget is
        // respected on average.
        let above = m.time_above_tdp.as_secs_f64() / m.total_time().as_secs_f64();
        assert!(above < 0.30, "time above TDP: {:.1}%", above * 100.0);
        assert!(
            m.chip_energy.peak_power().value() < 4.0 * 1.10,
            "peak {} strays far above the cap",
            m.chip_energy.peak_power()
        );
        assert!(m.average_power().value() < 4.0, "avg {}", m.average_power());
    }

    #[test]
    fn higher_priority_task_gets_better_qos_under_contention() {
        // The Figure 7 setup: two demanding tasks pinned to one big core,
        // LBT disabled, swaptions at priority 7 vs bodytrack at 1.
        let chip = ppm_platform::chip::Chip::tc2();
        let mut sys = System::new(chip, AllocationPolicy::Market);
        // A LITTLE core, where the two native inputs genuinely contend
        // (sum of demands ~970 PU of the 1000 PU top supply, with
        // bodytrack's phase peaks crossing it).
        sys.add_task(task(0, Benchmark::Swaptions, Input::Native, 7), CoreId(0));
        sys.add_task(task(1, Benchmark::Bodytrack, Input::Native, 1), CoreId(0));
        let mgr = PpmManager::new(PpmConfig::tc2().without_lbt());
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(60));
        let m = sim.metrics();
        let swap = m.task(TaskId(0)).expect("t0").out_of_range_fraction();
        let body = m.task(TaskId(1)).expect("t1").out_of_range_fraction();
        assert!(
            swap < body,
            "high-priority swaptions ({swap:.2}) should beat bodytrack ({body:.2})"
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use ppm_platform::units::SimDuration;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    #[test]
    #[ignore]
    fn debug_tdp_scenario() {
        use crate::manager::tc2_ppm_system;
        let mk =
            |id: usize, b, i| Task::new(TaskId(id), BenchmarkSpec::of(b, i).unwrap(), Priority(1));
        let (sys, mgr) = tc2_ppm_system(
            vec![
                mk(0, Benchmark::Tracking, Input::FullHd),
                mk(1, Benchmark::Multicnt, Input::FullHd),
                mk(2, Benchmark::Texture, Input::FullHd),
                mk(3, Benchmark::Swaptions, Input::Native),
                mk(4, Benchmark::X264, Input::Native),
                mk(5, Benchmark::Blackscholes, Input::Native),
            ],
            PpmConfig::tc2_with_tdp(ppm_platform::units::Watts(4.0)),
        );
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        for _ in 0..260 {
            sim.run_for(SimDuration::from_millis(250));
            let s = sim.system();
            let d = sim.manager().last_decision().unwrap();
            println!(
                "t={:.2}s W={:.2} A={:.2} state={:?} lvl={:?} D={:.0} S={:.0} map={:?}",
                s.now().as_secs_f64(),
                s.chip_power().value(),
                d.allowance.value(),
                d.state,
                s.chip()
                    .clusters()
                    .iter()
                    .map(|c| if c.is_off() { 99 } else { c.level().0 })
                    .collect::<Vec<_>>(),
                d.total_demand.value(),
                d.total_supply.value(),
                s.task_ids()
                    .iter()
                    .map(|&t| s.core_of(t).0)
                    .collect::<Vec<_>>()
            );
        }
        let m = sim.metrics();
        println!(
            "ABOVE_TDP fraction: {:.3}",
            m.time_above_tdp.as_secs_f64() / m.total_time().as_secs_f64()
        );
    }

    #[test]
    #[ignore]
    fn debug_priority_scenario() {
        let chip = ppm_platform::chip::Chip::tc2();
        let mut sys = System::new(chip, AllocationPolicy::Market);
        let t0 = Task::new(
            TaskId(0),
            BenchmarkSpec::of(Benchmark::Swaptions, Input::Native).unwrap(),
            Priority(7),
        );
        let t1 = Task::new(
            TaskId(1),
            BenchmarkSpec::of(Benchmark::Bodytrack, Input::Native).unwrap(),
            Priority(1),
        );
        sys.add_task(t0, CoreId(3));
        sys.add_task(t1, CoreId(3));
        let mgr = PpmManager::new(PpmConfig::tc2().without_lbt());
        let mut sim = Simulation::new(sys, mgr);
        for step in 0..100 {
            sim.run_for(SimDuration::from_millis(200));
            let s = sim.system();
            let d = sim.manager().last_decision().unwrap();
            println!(
                "t={:.1}s W={:.2} A={:.2} state={:?} lvl={:?} hr0={:.2} hr1={:.2} | {:?}",
                s.now().as_secs_f64(),
                s.chip_power().value(),
                d.allowance.value(),
                d.state,
                s.chip()
                    .clusters()
                    .iter()
                    .map(|c| c.level().0)
                    .collect::<Vec<_>>(),
                s.task(TaskId(0)).normalized_heart_rate(),
                s.task(TaskId(1)).normalized_heart_rate(),
                d.tasks
                    .iter()
                    .map(|t| format!(
                        "b={:.2} m={:.2} s={:.0} d={:.0} a={:.2}",
                        t.bid.value(),
                        t.savings.value(),
                        t.supply.value(),
                        t.demand.value(),
                        t.allowance.value()
                    ))
                    .collect::<Vec<_>>()
            );
            if step > 40 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod nice_actuation_tests {
    use super::*;
    use ppm_platform::units::SimDuration;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn run(config: PpmConfig) -> f64 {
        let mk = |id: usize, b, i, p| {
            Task::new(
                TaskId(id),
                BenchmarkSpec::of(b, i).expect("variant"),
                Priority(p),
            )
        };
        let (sys, mgr) = tc2_ppm_system(
            vec![
                mk(0, Benchmark::Texture, Input::Vga, 1),
                mk(1, Benchmark::Tracking, Input::Vga, 1),
                mk(2, Benchmark::H264, Input::Soccer, 1),
                mk(3, Benchmark::Blackscholes, Input::Large, 1),
            ],
            config,
        );
        let mut sim = Simulation::new(sys, mgr).with_warmup(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_secs(30));
        sim.metrics().any_miss_fraction()
    }

    #[test]
    fn nice_quantization_approximates_exact_shares() {
        // The kernel realization (CFS weights from the 40-entry nice table)
        // must land close to the idealized exact-share actuation.
        let exact = run(PpmConfig::tc2());
        let nice = run(PpmConfig::tc2().with_nice_actuation());
        assert!(
            nice < exact + 0.15,
            "nice actuation miss {nice:.2} vs exact {exact:.2}"
        );
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use crate::events::Event;
    use ppm_platform::units::SimDuration;
    use ppm_sched::executor::Simulation;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    #[test]
    fn manager_logs_rounds_dvfs_and_churn() {
        let (sys, mgr) = tc2_ppm_system(
            vec![Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::Tracking, Input::FullHd).expect("variant"),
                Priority(1),
            )],
            PpmConfig::tc2(),
        );
        let mut sim = Simulation::new(sys, mgr);
        sim.run_for(SimDuration::from_secs(5));
        sim.system_mut().add_task(
            Task::new(
                TaskId(1),
                BenchmarkSpec::of(Benchmark::Texture, Input::Vga).expect("variant"),
                Priority(1),
            ),
            ppm_platform::core::CoreId(1),
        );
        sim.run_for(SimDuration::from_secs(2));
        sim.system_mut().remove_task(TaskId(1));
        sim.run_for(SimDuration::from_secs(1));

        let log = sim.manager().events();
        assert!(!log.is_empty());
        let rounds = log.filtered(|e| matches!(e, Event::Round { .. })).count();
        assert!(rounds > 100, "one event per bid round: {rounds}");
        assert!(
            log.filtered(|e| matches!(e, Event::Dvfs { .. })).count() > 0,
            "tracking_f at 800 PU forces DVFS activity"
        );
        assert_eq!(
            log.filtered(|e| matches!(e, Event::TaskAdmitted { task } if task.0 == 1))
                .count(),
            1
        );
        assert_eq!(
            log.filtered(|e| matches!(e, Event::TaskExited { task } if task.0 == 1))
                .count(),
            1
        );
    }
}
