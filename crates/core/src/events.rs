//! Structured event log of the framework's decisions.
//!
//! The paper's agents are kernel modules whose behaviour was analysed from
//! traces; this module is the equivalent instrumentation: a bounded ring
//! buffer of typed events (rounds, state changes, DVFS steps, migrations)
//! the manager records and experiments/debugging read back.

use std::collections::VecDeque;
use std::fmt;

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::units::{Money, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_workload::task::TaskId;

use crate::market::VfStep;
use crate::state::PowerState;

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A bidding round completed.
    Round {
        /// Round index.
        round: u64,
        /// Global allowance after the round.
        allowance: Money,
        /// Chip power observed.
        power: Watts,
        /// Power state.
        state: PowerState,
    },
    /// The chip power state changed.
    StateChange {
        /// Previous state.
        from: PowerState,
        /// New state.
        to: PowerState,
    },
    /// A cluster agent requested a DVFS step.
    Dvfs {
        /// The cluster.
        cluster: ClusterId,
        /// Direction.
        step: VfStep,
    },
    /// The LBT module moved a task.
    Migration {
        /// The task.
        task: TaskId,
        /// Destination core.
        to: CoreId,
        /// Whether the move crossed clusters.
        inter_cluster: bool,
    },
    /// A task entered the system.
    TaskAdmitted {
        /// The task.
        task: TaskId,
    },
    /// A task left the system.
    TaskExited {
        /// The task.
        task: TaskId,
    },
    /// A task was skipped by a market round because its core was missing
    /// from the observation snapshot (scheduler/observer race).
    TaskOrphaned {
        /// The task.
        task: TaskId,
        /// The unobserved core it claimed to run on.
        core: CoreId,
    },
    /// A power reading was rejected as implausible (dropped sensor read)
    /// and the last good reading was used instead.
    SensorFallback {
        /// The reading as observed.
        observed: Watts,
        /// The last good value substituted for it.
        used: Watts,
    },
    /// A DVFS request that did not reach the regulator was re-issued.
    DvfsRetry {
        /// The cluster.
        cluster: ClusterId,
        /// The level being re-requested.
        level: VfLevel,
        /// Retry attempt (1-based, bounded).
        attempt: u8,
    },
    /// A migration that did not land was re-issued.
    MigrationRetry {
        /// The task.
        task: TaskId,
        /// Destination core.
        to: CoreId,
        /// Retry attempt (1-based, bounded).
        attempt: u8,
    },
    /// An open-loop task's bounded request queue overflowed and shed its
    /// oldest requests since the previous round.
    RequestShed {
        /// The task.
        task: TaskId,
        /// Requests dropped since the last `RequestShed` for this task.
        dropped: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Round {
                round,
                allowance,
                power,
                state,
            } => write!(f, "round {round}: A={allowance} W={power} ({state})"),
            Event::StateChange { from, to } => write!(f, "state {from} -> {to}"),
            Event::Dvfs { cluster, step } => write!(
                f,
                "{cluster} {}",
                match step {
                    VfStep::Up => "step up",
                    VfStep::Down => "step down",
                }
            ),
            Event::Migration {
                task,
                to,
                inter_cluster,
            } => write!(
                f,
                "{task} -> {to} ({})",
                if *inter_cluster { "inter" } else { "intra" }
            ),
            Event::TaskAdmitted { task } => write!(f, "{task} admitted"),
            Event::TaskExited { task } => write!(f, "{task} exited"),
            Event::TaskOrphaned { task, core } => {
                write!(f, "{task} orphaned on unobserved {core}")
            }
            Event::SensorFallback { observed, used } => {
                write!(f, "sensor fallback: observed {observed}, using {used}")
            }
            Event::DvfsRetry {
                cluster,
                level,
                attempt,
            } => write!(f, "{cluster} retry level {} (attempt {attempt})", level.0),
            Event::MigrationRetry { task, to, attempt } => {
                write!(f, "{task} retry -> {to} (attempt {attempt})")
            }
            Event::RequestShed { task, dropped } => {
                write!(f, "{task} shed {dropped} queued request(s)")
            }
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: Event,
}

impl fmt::Display for LoggedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.event)
    }
}

/// Bounded ring buffer of [`LoggedEvent`]s.
///
/// ```
/// use ppm_core::events::{Event, EventLog};
/// use ppm_platform::units::SimTime;
/// use ppm_workload::task::TaskId;
///
/// let mut log = EventLog::with_capacity(2);
/// log.push(SimTime::ZERO, Event::TaskAdmitted { task: TaskId(0) });
/// log.push(SimTime::ZERO, Event::TaskAdmitted { task: TaskId(1) });
/// log.push(SimTime::ZERO, Event::TaskExited { task: TaskId(0) });
/// assert_eq!(log.len(), 2); // the oldest entry was evicted
/// ```
#[derive(Debug, Clone)]
pub struct EventLog {
    events: VecDeque<LoggedEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A log with the default capacity.
    pub fn new() -> EventLog {
        EventLog::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A log holding at most `capacity` events (older ones are evicted).
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn with_capacity(capacity: usize) -> EventLog {
        assert!(capacity > 0, "capacity must be positive");
        EventLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, at: SimTime, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(LoggedEvent { at, event });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been logged (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LoggedEvent> {
        self.events.iter()
    }

    /// The most recent events, newest last.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &LoggedEvent> {
        self.events.iter().skip(self.events.len().saturating_sub(n))
    }

    /// Retain only events matching `predicate` (e.g. migrations).
    pub fn filtered<'a, F: Fn(&Event) -> bool + 'a>(
        &'a self,
        predicate: F,
    ) -> impl Iterator<Item = &'a LoggedEvent> {
        self.events.iter().filter(move |e| predicate(&e.event))
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(id: usize) -> Event {
        Event::TaskAdmitted { task: TaskId(id) }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.push(SimTime::from_millis(i as u64), admit(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.iter().next().expect("non-empty");
        assert_eq!(first.event, admit(2));
    }

    #[test]
    fn tail_returns_newest() {
        let mut log = EventLog::new();
        for i in 0..10 {
            log.push(SimTime::from_millis(i as u64), admit(i));
        }
        let tail: Vec<_> = log.tail(2).collect();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].event, admit(9));
    }

    #[test]
    fn filter_selects_event_kinds() {
        let mut log = EventLog::new();
        log.push(SimTime::ZERO, admit(0));
        log.push(
            SimTime::ZERO,
            Event::Dvfs {
                cluster: ClusterId(0),
                step: VfStep::Up,
            },
        );
        log.push(SimTime::ZERO, admit(1));
        let dvfs: Vec<_> = log.filtered(|e| matches!(e, Event::Dvfs { .. })).collect();
        assert_eq!(dvfs.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = LoggedEvent {
            at: SimTime::from_secs(1),
            event: Event::StateChange {
                from: PowerState::Normal,
                to: PowerState::Threshold,
            },
        };
        assert_eq!(e.to_string(), "[1.000s] state normal -> threshold");
    }

    #[test]
    fn clear_resets() {
        let mut log = EventLog::with_capacity(1);
        log.push(SimTime::ZERO, admit(0));
        log.push(SimTime::ZERO, admit(1));
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
