//! The Load-Balancing and Task-migration (LBT) module (§3.3).
//!
//! Given the steady-state market (supplies, demands, bids, prices), the LBT
//! module searches for a better task-to-core mapping:
//!
//! * **Task migration** moves one task from the *constrained core* of a
//!   cluster to the *most over-supplied unconstrained core* of another
//!   cluster — the paper's overhead-bounding heuristic.
//! * **Load balancing** does the same within one cluster.
//!
//! Candidate mappings are compared with the paper's two metrics:
//! `perf(M)` — the priority-lexicographic order over supply/demand ratios —
//! and `spend(M) = Σ b_t`, whose reduction provably reduces power (§3.3).
//! Steady-state prices at other V-F levels are extrapolated with the Eq. 2
//! recursion `P_{Z+1} = P_Z · (1+δ)`.
//!
//! The module operates on plain [`LbtSnapshot`]s — exactly the
//! information that is "hierarchically disseminated from the cluster agents
//! to the chip agents and subsequently to the task agents" — so the
//! scalability study (Table 7) can drive it directly with synthetic
//! snapshots of up to 256 clusters × 16 cores × 32 tasks.

use std::fmt;

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::{CoreClass, CoreId};
use ppm_platform::units::{Money, Price, ProcessingUnits, Watts};
use ppm_workload::perclass::PerClass;
use ppm_workload::task::TaskId;

/// Steady-state view of one task, as the LBT module sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSnapshot {
    /// The task.
    pub id: TaskId,
    /// Its priority `r_t`.
    pub priority: u32,
    /// Off-line-profiled demand on each core class (the speculation input
    /// of §5.2).
    pub demand: PerClass<ProcessingUnits>,
    /// Steady-state supply on its current core.
    pub supply: ProcessingUnits,
    /// Steady-state bid on its current core.
    pub bid: Money,
}

impl TaskSnapshot {
    /// The task's demand on a core of `class`.
    pub fn demand_on(&self, class: CoreClass) -> ProcessingUnits {
        self.demand[class]
    }
}

/// One core and the tasks mapped to it.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSnapshot {
    /// The core.
    pub id: CoreId,
    /// Tasks currently mapped here.
    pub tasks: Vec<TaskSnapshot>,
}

impl CoreSnapshot {
    /// Summed demand `D_c` of the mapped tasks on `class` cores.
    pub fn total_demand(&self, class: CoreClass) -> ProcessingUnits {
        self.tasks.iter().map(|t| t.demand_on(class)).sum()
    }
}

/// Coarse power profile of a cluster, one entry per V-F level. The paper's
/// LBT module speculates with off-line-profiled power per core type (§5.2);
/// this is the equivalent: the fixed cost of keeping the cluster online at
/// a level plus the marginal cost per PU actually consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPowerProfile {
    /// Idle (zero-utilization) cluster power at each level: uncore plus
    /// all-core leakage. An *empty* cluster is assumed power-gated (0 W).
    pub idle: Vec<Watts>,
    /// Marginal watts per consumed PU at each level (`C_dyn · V²` in the
    /// CMOS model: utilization × frequency is exactly the PU consumption).
    pub watts_per_pu: Vec<f64>,
}

impl ClusterPowerProfile {
    /// Estimated cluster power at `level` when `used` PU are consumed in
    /// total and the cluster hosts at least one task. Empty clusters gate.
    pub fn power(&self, level: usize, used: ProcessingUnits, has_tasks: bool) -> Watts {
        if !has_tasks {
            return Watts::ZERO;
        }
        self.idle[level] + Watts(self.watts_per_pu[level] * used.value())
    }
}

/// One cluster: its ladder of per-core supplies, current level and price.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// The cluster.
    pub id: ClusterId,
    /// Core class of every core in the cluster.
    pub class: CoreClass,
    /// Per-core supply at each V-F level, ascending.
    pub ladder: Vec<ProcessingUnits>,
    /// Current V-F level (index into `ladder`).
    pub level: usize,
    /// Price per PU currently observed on the constrained core.
    pub price: Price,
    /// Profiled power behaviour used for migration speculation.
    pub power: ClusterPowerProfile,
    /// The cores of the cluster.
    pub cores: Vec<CoreSnapshot>,
}

impl ClusterSnapshot {
    /// Index of the constrained core: the one with the highest demand.
    pub fn constrained_core(&self) -> usize {
        let mut best = 0;
        let mut best_d = ProcessingUnits::ZERO;
        for (i, c) in self.cores.iter().enumerate() {
            let d = c.total_demand(self.class);
            if i == 0 || d > best_d {
                best = i;
                best_d = d;
            }
        }
        best
    }

    /// Index of the most over-supplied core other than the constrained one
    /// (the paper's sole migration target per cluster). Falls back to the
    /// only core when the cluster has just one.
    pub fn most_oversupplied_unconstrained(&self) -> usize {
        if self.cores.len() == 1 {
            return 0;
        }
        let constrained = self.constrained_core();
        let supply = self.ladder[self.level];
        let mut best = usize::MAX;
        let mut best_slack = f64::NEG_INFINITY;
        for (i, c) in self.cores.iter().enumerate() {
            if i == constrained {
                continue;
            }
            let slack = supply.value() - c.total_demand(self.class).value();
            if slack > best_slack {
                best_slack = slack;
                best = i;
            }
        }
        best
    }

    /// The level whose supply covers `demand` (rounded up), saturating at
    /// the top of the ladder.
    pub fn level_for(&self, demand: ProcessingUnits) -> usize {
        self.ladder
            .iter()
            .position(|&s| s >= demand)
            .unwrap_or(self.ladder.len() - 1)
    }
}

/// Full steady-state snapshot consumed by the LBT decision procedures.
///
/// Not to be confused with the executor's `ppm_sched::SystemSnapshot` (the
/// raw observable state): an `LbtSnapshot` is the *market-level* view the
/// PPM manager derives from it for migration speculation.
#[derive(Debug, Clone, PartialEq)]
pub struct LbtSnapshot {
    /// All clusters.
    pub clusters: Vec<ClusterSnapshot>,
    /// Tolerance factor δ used in the Eq. 2 price extrapolation.
    pub tolerance: f64,
    /// Minimum bid, which floors estimated prices on idle clusters.
    pub min_bid: Money,
    /// True when the chip is power-constrained (threshold or emergency
    /// state): "the steady-state supply of a cluster is estimated to be the
    /// same as the steady-state demand, *unless the supply is constrained
    /// by the TDP*" (§3.3) — under the cap, clusters cannot be assumed to
    /// raise their V-F level to meet demand.
    pub supply_capped: bool,
}

/// Steady-state estimate for one cluster under a hypothetical mapping.
#[derive(Debug, Clone)]
pub struct ClusterEstimate {
    /// Estimated settled V-F level.
    pub level: usize,
    /// Estimated price at that level (Eq. 2 recursion).
    pub price: Price,
    /// Estimated `(task, priority, supply/demand ratio)` triples.
    pub ratios: Vec<(TaskId, u32, f64)>,
    /// Estimated aggregate spending of the cluster's tasks.
    pub spend: Money,
    /// Estimated cluster power from the profiled power model.
    pub power: Watts,
}

/// Tolerance for ratio/spend comparisons.
const EPS: f64 = 1e-6;

/// Estimate the steady state of `cluster` when its cores host `assignment`
/// (one task list per core, same order as `cluster.cores`).
///
/// The estimate follows §3.3: the cluster settles at the lowest level whose
/// supply covers the constrained demand (demand rounded up to the next
/// supply value); the price at that level follows the Eq. 2 recursion from
/// the currently observed price; each core's supply is divided among its
/// tasks proportionally to priority but capped at demand; the steady-state
/// bid of a task is `price × supply`.
pub fn estimate_cluster(
    snapshot: &LbtSnapshot,
    cluster: &ClusterSnapshot,
    assignment: &[Vec<&TaskSnapshot>],
) -> ClusterEstimate {
    debug_assert_eq!(assignment.len(), cluster.cores.len());
    let class = cluster.class;
    // Constrained demand decides the settled level.
    let constrained_demand = assignment
        .iter()
        .map(|ts| -> ProcessingUnits { ts.iter().map(|t| t.demand_on(class)).sum() })
        .fold(ProcessingUnits::ZERO, ProcessingUnits::max);
    let level = if snapshot.supply_capped {
        // Power-constrained: the cluster can shed load (lower level) but
        // cannot be assumed to raise it.
        cluster.level_for(constrained_demand).min(cluster.level)
    } else {
        cluster.level_for(constrained_demand)
    };
    let supply = cluster.ladder[level];
    // Eq. 2: extrapolate the price across the level distance.
    let mut price = cluster.price;
    if level > cluster.level {
        for _ in cluster.level..level {
            price = price.inflated_by(snapshot.tolerance);
        }
    } else {
        for _ in level..cluster.level {
            price = price.deflated_by(snapshot.tolerance);
        }
    }
    // A cluster with no market yet (idle, price 0) would otherwise estimate
    // free resources; floor at the price implied by minimum bids.
    if !price.is_positive() && supply.is_positive() {
        price = Price(snapshot.min_bid.value() / supply.value());
    }

    let mut ratios = Vec::new();
    let mut spend = Money::ZERO;
    let mut used = ProcessingUnits::ZERO;
    for tasks in assignment {
        if tasks.is_empty() {
            continue;
        }
        // Priority-proportional split capped at demand (water-filling).
        let mut grants = vec![ProcessingUnits::ZERO; tasks.len()];
        let mut remaining = supply;
        let mut active: Vec<usize> = (0..tasks.len()).collect();
        while !active.is_empty() && remaining.is_positive() {
            let total_r: f64 = active.iter().map(|&i| tasks[i].priority as f64).sum();
            if total_r <= 0.0 {
                break;
            }
            let mut saturated = Vec::new();
            let mut consumed = ProcessingUnits::ZERO;
            for &i in &active {
                let share = remaining * (tasks[i].priority as f64 / total_r);
                let headroom = tasks[i].demand_on(class) - grants[i];
                if share >= headroom {
                    grants[i] = tasks[i].demand_on(class);
                    consumed += headroom;
                    saturated.push(i);
                } else {
                    grants[i] += share;
                    consumed += share;
                }
            }
            remaining -= consumed;
            if saturated.is_empty() {
                break;
            }
            active.retain(|i| !saturated.contains(i));
        }
        for (i, t) in tasks.iter().enumerate() {
            let d = t.demand_on(class);
            let ratio = if d.is_positive() { grants[i] / d } else { 1.0 };
            ratios.push((t.id, t.priority, ratio.min(1.0)));
            spend += price * grants[i];
            used += grants[i];
        }
    }
    let has_tasks = !ratios.is_empty();
    let power = cluster.power.power(level, used, has_tasks);
    ClusterEstimate {
        level,
        price,
        ratios,
        spend,
        power,
    }
}

/// `perf(M′) > perf(M)` over the tasks whose ratios changed (§3.3): some
/// task improves its supply/demand ratio and no higher-priority task is
/// worse off.
pub fn perf_better(new: &[(TaskId, u32, f64)], old: &[(TaskId, u32, f64)]) -> bool {
    let old_of = |id: TaskId| old.iter().find(|(i, _, _)| *i == id).map(|&(_, _, r)| r);
    let improved: Vec<&(TaskId, u32, f64)> = new
        .iter()
        .filter(|(id, _, r)| old_of(*id).is_none_or(|o| *r > o + EPS))
        .collect();
    improved.iter().any(|&&(_, prio, _)| {
        new.iter().all(|&(uid, uprio, ur)| {
            if uprio <= prio {
                return true;
            }
            old_of(uid).is_none_or(|o| ur >= o - EPS)
        })
    })
}

/// `perf(M′) ≥ perf(M)` over changed tasks: no task's ratio degrades.
pub fn perf_not_worse(new: &[(TaskId, u32, f64)], old: &[(TaskId, u32, f64)]) -> bool {
    new.iter().all(|&(id, _, r)| {
        old.iter()
            .find(|(oid, _, _)| *oid == id)
            .is_none_or(|&(_, _, o)| r >= o - EPS)
    })
}

/// A move proposed by the LBT module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// The migrating task.
    pub task: TaskId,
    /// Destination core.
    pub to_core: CoreId,
    /// Why the move was selected.
    pub goal: MoveGoal,
    /// Estimated change in aggregate spending `spend(M′) − spend(M)`.
    pub spend_delta: Money,
    /// Estimated change in chip power from the profiled power model.
    pub power_delta: Watts,
}

/// The objective that justified a move (Figure 3's two branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveGoal {
    /// All demands were met; the move reduces aggregate spending (power).
    PowerEfficiency,
    /// Some demand was unmet; the move raises the highest-priority
    /// unsatisfied task's supply/demand ratio.
    Performance,
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "move {} -> {} ({})",
            self.task,
            self.to_core,
            match self.goal {
                MoveGoal::PowerEfficiency => "power",
                MoveGoal::Performance => "performance",
            }
        )
    }
}

/// Assignment of a cluster as plain reference lists (one per core).
fn assignment_of(cluster: &ClusterSnapshot) -> Vec<Vec<&TaskSnapshot>> {
    cluster
        .cores
        .iter()
        .map(|c| c.tasks.iter().collect())
        .collect()
}

/// Candidate evaluation shared by migration and load balancing: move `task`
/// from `(src_cluster, src_core)` to `(dst_cluster, dst_core)` and estimate
/// the affected clusters before/after.
struct Candidate {
    task: TaskId,
    to_core: CoreId,
    old_ratios: Vec<(TaskId, u32, f64)>,
    new_ratios: Vec<(TaskId, u32, f64)>,
    spend_delta: Money,
    power_delta: Watts,
}

fn evaluate_move(
    snapshot: &LbtSnapshot,
    src_ci: usize,
    src_core: usize,
    dst_ci: usize,
    dst_core: usize,
    task: &TaskSnapshot,
) -> Candidate {
    let src = &snapshot.clusters[src_ci];
    let old_ratios;
    let new_ratios;
    let spend_delta;
    let power_delta;

    if src_ci == dst_ci {
        // Intra-cluster: one estimate pair.
        let before = estimate_cluster(snapshot, src, &assignment_of(src));
        let mut asg = assignment_of(src);
        asg[src_core].retain(|t| t.id != task.id);
        asg[dst_core].push(task);
        let after = estimate_cluster(snapshot, src, &asg);
        old_ratios = before.ratios;
        new_ratios = after.ratios;
        spend_delta = after.spend - before.spend;
        power_delta = after.power - before.power;
    } else {
        let dst = &snapshot.clusters[dst_ci];
        let src_before = estimate_cluster(snapshot, src, &assignment_of(src));
        let dst_before = estimate_cluster(snapshot, dst, &assignment_of(dst));
        let mut src_asg = assignment_of(src);
        src_asg[src_core].retain(|t| t.id != task.id);
        let mut dst_asg = assignment_of(dst);
        dst_asg[dst_core].push(task);
        let src_after = estimate_cluster(snapshot, src, &src_asg);
        let dst_after = estimate_cluster(snapshot, dst, &dst_asg);
        let mut old = src_before.ratios;
        old.extend(dst_before.ratios);
        let mut new = src_after.ratios;
        new.extend(dst_after.ratios);
        old_ratios = old;
        new_ratios = new;
        spend_delta = (src_after.spend + dst_after.spend) - (src_before.spend + dst_before.spend);
        power_delta = (src_after.power + dst_after.power) - (src_before.power + dst_before.power);
    }
    Candidate {
        task: task.id,
        to_core: snapshot.clusters[dst_ci].cores[dst_core].id,
        old_ratios,
        new_ratios,
        spend_delta,
        power_delta,
    }
}

/// Figure 3's decision procedure over `targets`: either reduce spending
/// without hurting performance (all demands met) or raise the ratio of the
/// highest-priority unsatisfied task. `targets` yields
/// `(dst_cluster_index, dst_core_index)` pairs per source cluster.
fn decide<F>(snapshot: &LbtSnapshot, mut targets_for: F) -> Option<Move>
where
    F: FnMut(usize) -> Vec<(usize, usize)>,
{
    // Do all tasks meet their demand in the current steady-state estimate?
    let mut all_meet = true;
    let mut estimates = Vec::with_capacity(snapshot.clusters.len());
    for cl in &snapshot.clusters {
        let est = estimate_cluster(snapshot, cl, &assignment_of(cl));
        all_meet &= est.ratios.iter().all(|&(_, _, r)| r >= 1.0 - EPS);
        estimates.push(est);
    }

    let mut best: Option<(Move, f64)> = None; // (move, performance gain key)
    for (src_ci, cl) in snapshot.clusters.iter().enumerate() {
        let constrained = cl.constrained_core();
        let est = &estimates[src_ci];
        // Candidate movers: task agents in the constrained core; when some
        // demands are unmet, only the unsatisfied ones there contemplate
        // moving (Figure 3).
        let movers: Vec<&TaskSnapshot> = cl.cores[constrained]
            .tasks
            .iter()
            .filter(|t| {
                if all_meet {
                    true
                } else {
                    est.ratios
                        .iter()
                        .find(|(id, _, _)| *id == t.id)
                        .is_some_and(|&(_, _, r)| r < 1.0 - EPS)
                }
            })
            .collect();
        if movers.is_empty() {
            continue;
        }
        for (dst_ci, dst_core) in targets_for(src_ci) {
            for task in &movers {
                let cand = evaluate_move(snapshot, src_ci, constrained, dst_ci, dst_core, task);
                if all_meet {
                    // Power goal (Figure 3, left branch): the profiled
                    // power estimate must drop while performance does not.
                    // (The formal criterion is spend(M′) < spend(M); the
                    // implementation speculates with profiled power per
                    // core type, as §5.2 describes, which also prices the
                    // fixed cost of keeping a cluster online.)
                    if cand.power_delta.value() < -EPS
                        && perf_not_worse(&cand.new_ratios, &cand.old_ratios)
                    {
                        let better = match &best {
                            None => true,
                            Some((m, _)) => cand.power_delta < m.power_delta,
                        };
                        if better {
                            best = Some((
                                Move {
                                    task: cand.task,
                                    to_core: cand.to_core,
                                    goal: MoveGoal::PowerEfficiency,
                                    spend_delta: cand.spend_delta,
                                    power_delta: cand.power_delta,
                                },
                                0.0,
                            ));
                        }
                    }
                } else {
                    // Performance goal (Figure 3, right branch): the
                    // mover's ratio must improve without hurting
                    // higher-priority tasks; prefer the highest-priority
                    // mover, then the largest gain, then better power.
                    if !perf_better(&cand.new_ratios, &cand.old_ratios) {
                        continue;
                    }
                    let old_r = cand
                        .old_ratios
                        .iter()
                        .find(|(id, _, _)| *id == cand.task)
                        .map_or(0.0, |&(_, _, r)| r);
                    let new_r = cand
                        .new_ratios
                        .iter()
                        .find(|(id, _, _)| *id == cand.task)
                        .map_or(0.0, |&(_, _, r)| r);
                    let gain = (task.priority as f64) * 1e6 + (new_r - old_r);
                    let better = match &best {
                        None => true,
                        Some((m, best_gain)) => {
                            gain > *best_gain + EPS
                                || ((gain - *best_gain).abs() <= EPS
                                    && cand.power_delta < m.power_delta)
                        }
                    };
                    if better && new_r > old_r + EPS {
                        best = Some((
                            Move {
                                task: cand.task,
                                to_core: cand.to_core,
                                goal: MoveGoal::Performance,
                                spend_delta: cand.spend_delta,
                                power_delta: cand.power_delta,
                            },
                            gain,
                        ));
                    }
                }
            }
        }
    }
    best.map(|(m, _)| m)
}

/// Cross-cluster task migration (§3.3): consider, for every cluster's
/// constrained core, moving one task to the most over-supplied
/// unconstrained core of each *other* cluster. At most one move is approved
/// per invocation.
pub fn decide_migration(snapshot: &LbtSnapshot) -> Option<Move> {
    let targets: Vec<(usize, usize)> = snapshot
        .clusters
        .iter()
        .enumerate()
        .map(|(ci, cl)| (ci, cl.most_oversupplied_unconstrained()))
        .collect();
    decide(snapshot, |src_ci| {
        targets
            .iter()
            .copied()
            .filter(|&(ci, _)| ci != src_ci)
            .collect()
    })
}

/// Intra-cluster load balancing (§3.3): move one task from the constrained
/// core to the most over-supplied unconstrained core of the *same* cluster.
pub fn decide_load_balance(snapshot: &LbtSnapshot) -> Option<Move> {
    decide(snapshot, |src_ci| {
        let cl = &snapshot.clusters[src_ci];
        if cl.cores.len() < 2 {
            return Vec::new();
        }
        let dst = cl.most_oversupplied_unconstrained();
        if dst == cl.constrained_core() {
            Vec::new()
        } else {
            vec![(src_ci, dst)]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: usize, prio: u32, d_little: f64, speedup: f64, supply: f64) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            priority: prio,
            demand: PerClass::new(
                ProcessingUnits(d_little),
                ProcessingUnits(d_little / speedup),
            ),
            supply: ProcessingUnits(supply),
            bid: Money(1.0),
        }
    }

    /// Per-level voltage ramp matching `linear_table` (900..1250 mV).
    fn volts(level: usize, levels: usize) -> f64 {
        0.9 + 0.35 * level as f64 / (levels - 1) as f64
    }

    /// TC2-shaped snapshot: 3 LITTLE cores (350..1000), 2 big (500..1200),
    /// with power profiles derived from the TC2 power-model coefficients.
    fn tc2_snapshot(little: Vec<Vec<TaskSnapshot>>, big: Vec<Vec<TaskSnapshot>>) -> LbtSnapshot {
        let ladder_l: Vec<ProcessingUnits> = [350, 400, 500, 600, 700, 800, 900, 1000]
            .iter()
            .map(|&f| ProcessingUnits(f as f64))
            .collect();
        let ladder_b: Vec<ProcessingUnits> = [500, 600, 700, 800, 900, 1000, 1100, 1200]
            .iter()
            .map(|&f| ProcessingUnits(f as f64))
            .collect();
        let profile_l = ClusterPowerProfile {
            idle: (0..8)
                .map(|l| Watts(0.05 + 3.0 * 0.02 * volts(l, 8)))
                .collect(),
            watts_per_pu: (0..8).map(|l| 0.0004 * volts(l, 8).powi(2)).collect(),
        };
        let profile_b = ClusterPowerProfile {
            idle: (0..8)
                .map(|l| Watts(0.125 + 2.0 * 0.1 * volts(l, 8)))
                .collect(),
            watts_per_pu: (0..8).map(|l| 0.0015 * volts(l, 8).powi(2)).collect(),
        };
        LbtSnapshot {
            clusters: vec![
                ClusterSnapshot {
                    id: ClusterId(0),
                    class: CoreClass::Little,
                    ladder: ladder_l,
                    level: 2,
                    price: Price(0.005),
                    power: profile_l,
                    cores: little
                        .into_iter()
                        .enumerate()
                        .map(|(i, tasks)| CoreSnapshot {
                            id: CoreId(i),
                            tasks,
                        })
                        .collect(),
                },
                ClusterSnapshot {
                    id: ClusterId(1),
                    class: CoreClass::Big,
                    ladder: ladder_b,
                    level: 0,
                    price: Price(0.004),
                    power: profile_b,
                    cores: big
                        .into_iter()
                        .enumerate()
                        .map(|(i, tasks)| CoreSnapshot {
                            id: CoreId(3 + i),
                            tasks,
                        })
                        .collect(),
                },
            ],
            tolerance: 0.2,
            min_bid: Money(0.01),
            supply_capped: false,
        }
    }

    #[test]
    fn constrained_core_is_highest_demand() {
        let s = tc2_snapshot(
            vec![
                vec![task(0, 1, 300.0, 1.8, 300.0)],
                vec![task(1, 1, 700.0, 1.8, 500.0)],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        assert_eq!(s.clusters[0].constrained_core(), 1);
        // Most over-supplied unconstrained: the empty core 2.
        assert_eq!(s.clusters[0].most_oversupplied_unconstrained(), 2);
    }

    #[test]
    fn estimate_settles_at_level_covering_demand() {
        let s = tc2_snapshot(
            vec![vec![task(0, 1, 650.0, 1.8, 500.0)], vec![], vec![]],
            vec![vec![], vec![]],
        );
        let est = estimate_cluster(&s, &s.clusters[0], &assignment_of(&s.clusters[0]));
        // 650 PU demand -> level with 700 PU supply (index 4).
        assert_eq!(est.level, 4);
        // Price inflated two levels from 0.005 (level 2): 0.005·1.2².
        assert!((est.price.value() - 0.005 * 1.44).abs() < 1e-9);
        // Lone task meets demand.
        assert_eq!(est.ratios.len(), 1);
        assert!((est.ratios[0].2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_caps_ratio_below_one_when_overloaded() {
        let s = tc2_snapshot(
            vec![
                vec![task(0, 1, 800.0, 1.8, 500.0), task(1, 1, 800.0, 1.8, 500.0)],
                vec![],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        let est = estimate_cluster(&s, &s.clusters[0], &assignment_of(&s.clusters[0]));
        // 1600 PU demand saturates at the 1000 PU top level; equal
        // priorities split it 500/500 -> ratios 0.625.
        assert_eq!(est.level, 7);
        for &(_, _, r) in &est.ratios {
            assert!((r - 0.625).abs() < 1e-9, "ratio {r}");
        }
    }

    #[test]
    fn priority_weighted_split_favours_high_priority() {
        let s = tc2_snapshot(
            vec![
                vec![task(0, 3, 800.0, 1.8, 500.0), task(1, 1, 800.0, 1.8, 500.0)],
                vec![],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        let est = estimate_cluster(&s, &s.clusters[0], &assignment_of(&s.clusters[0]));
        let r0 = est
            .ratios
            .iter()
            .find(|(i, _, _)| *i == TaskId(0))
            .expect("t0")
            .2;
        let r1 = est
            .ratios
            .iter()
            .find(|(i, _, _)| *i == TaskId(1))
            .expect("t1")
            .2;
        assert!(r0 > r1);
        assert!((r0 - 750.0 / 800.0).abs() < 1e-9);
        assert!((r1 - 250.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn migration_moves_unsatisfied_task_to_big_cluster() {
        // Two heavy tasks overload a LITTLE core while the big cluster
        // idles: the performance branch must move one across.
        let s = tc2_snapshot(
            vec![
                vec![task(0, 1, 900.0, 1.8, 500.0), task(1, 1, 900.0, 1.8, 500.0)],
                vec![],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        let m = decide_migration(&s).expect("a move is warranted");
        assert_eq!(m.goal, MoveGoal::Performance);
        assert!(m.to_core == CoreId(3) || m.to_core == CoreId(4));
    }

    #[test]
    fn migration_prefers_little_cluster_when_it_saves_money() {
        // A single light task sits alone on a big core whose price makes it
        // expensive; the LITTLE cluster is cheaper: the power branch should
        // repatriate it. (The classic big.LITTLE energy argument.)
        let s = tc2_snapshot(
            vec![vec![], vec![], vec![]],
            vec![vec![task(0, 1, 300.0, 1.8, 300.0)], vec![]],
        );
        let m = decide_migration(&s).expect("a power move is warranted");
        assert_eq!(m.goal, MoveGoal::PowerEfficiency);
        assert!(m.to_core.0 <= 2, "target should be a LITTLE core: {m}");
        assert!(m.power_delta.value() < 0.0);
    }

    #[test]
    fn no_move_when_current_mapping_is_best() {
        // One light task per LITTLE core, big cluster idle: demands met at
        // a low level and nothing cheaper exists (big price floor higher).
        let s = tc2_snapshot(
            vec![
                vec![task(0, 1, 200.0, 1.8, 350.0)],
                vec![task(1, 1, 200.0, 1.8, 350.0)],
                vec![task(2, 1, 200.0, 1.8, 350.0)],
            ],
            vec![vec![], vec![]],
        );
        assert_eq!(decide_migration(&s), None);
    }

    #[test]
    fn load_balancing_spreads_within_cluster() {
        // Two tasks pile on core 0 forcing a high level; core 1 is empty:
        // balancing moves one task over, halving the constrained demand.
        let s = tc2_snapshot(
            vec![
                vec![task(0, 1, 400.0, 1.8, 250.0), task(1, 1, 400.0, 1.8, 250.0)],
                vec![],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        let m = decide_load_balance(&s).expect("balance is warranted");
        assert!(m.to_core.0 <= 2);
        assert_ne!(m.to_core, CoreId(0));
    }

    #[test]
    fn load_balance_ignores_single_core_clusters() {
        let ladder: Vec<ProcessingUnits> = vec![ProcessingUnits(300.0), ProcessingUnits(600.0)];
        let s = LbtSnapshot {
            clusters: vec![ClusterSnapshot {
                id: ClusterId(0),
                class: CoreClass::Little,
                ladder,
                level: 0,
                price: Price(0.01),
                power: ClusterPowerProfile {
                    idle: vec![Watts(0.1), Watts(0.15)],
                    watts_per_pu: vec![0.0003, 0.0005],
                },
                cores: vec![CoreSnapshot {
                    id: CoreId(0),
                    tasks: vec![task(0, 1, 500.0, 1.8, 300.0), task(1, 1, 500.0, 1.8, 300.0)],
                }],
            }],
            tolerance: 0.2,
            min_bid: Money(0.01),
            supply_capped: false,
        };
        assert_eq!(decide_load_balance(&s), None);
    }

    #[test]
    fn perf_comparison_follows_priority_order() {
        let old = vec![(TaskId(0), 2, 0.8), (TaskId(1), 1, 0.5)];
        // Low-priority task improves, high-priority untouched: better.
        let new = vec![(TaskId(0), 2, 0.8), (TaskId(1), 1, 0.9)];
        assert!(perf_better(&new, &old));
        // Low-priority improves at the expense of the high-priority: the
        // improving task (prio 1) requires all higher-priority tasks to be
        // no worse, so this is NOT better.
        let new = vec![(TaskId(0), 2, 0.6), (TaskId(1), 1, 1.0)];
        assert!(!perf_better(&new, &old));
        // High-priority improves while the low-priority degrades: better by
        // the paper's definition (only strictly-higher priorities protect).
        let new = vec![(TaskId(0), 2, 1.0), (TaskId(1), 1, 0.2)];
        assert!(perf_better(&new, &old));
        // Everything worse: not better, and not `perf_not_worse` either.
        let new = vec![(TaskId(0), 2, 0.5), (TaskId(1), 1, 0.3)];
        assert!(!perf_better(&new, &old));
        assert!(!perf_not_worse(&new, &old));
        // Identical: not strictly better, but not worse.
        assert!(!perf_better(&old, &old));
        assert!(perf_not_worse(&old, &old));
    }

    #[test]
    fn migration_count_is_bounded_under_repeated_invocation() {
        // §3.3.1: applying the chosen move and re-running must terminate —
        // no cyclic movement. Simulate by applying moves to the snapshot.
        let mut s = tc2_snapshot(
            vec![
                vec![
                    task(0, 3, 700.0, 1.8, 300.0),
                    task(1, 2, 600.0, 1.8, 300.0),
                    task(2, 1, 500.0, 1.8, 300.0),
                ],
                vec![],
                vec![],
            ],
            vec![vec![], vec![]],
        );
        let mut moves = 0;
        for _ in 0..20 {
            let Some(m) = decide_migration(&s).or_else(|| decide_load_balance(&s)) else {
                break;
            };
            moves += 1;
            // Apply the move to the snapshot.
            let mut moved: Option<TaskSnapshot> = None;
            for cl in &mut s.clusters {
                for core in &mut cl.cores {
                    if let Some(pos) = core.tasks.iter().position(|t| t.id == m.task) {
                        moved = Some(core.tasks.remove(pos));
                    }
                }
            }
            let t = moved.expect("task exists");
            for cl in &mut s.clusters {
                for core in &mut cl.cores {
                    if core.id == m.to_core {
                        core.tasks.push(t);
                    }
                }
            }
        }
        assert!(moves > 0, "the overloaded core must shed tasks");
        assert!(
            moves < 20,
            "LBT must reach a fixed point, got {moves} moves"
        );
    }
}

/// Aggregate view of a remote cluster as disseminated to a constrained
/// core's task agents (§3.3: "all the information required for the
/// estimation is hierarchically disseminated … and kept consistent with
/// periodic message passing").
#[derive(Debug, Clone)]
pub struct RemoteCluster {
    /// Core class of the remote cluster.
    pub class: CoreClass,
    /// Current price on the remote constrained core.
    pub price: Price,
    /// Current V-F level.
    pub level: usize,
    /// Per-core supply ladder.
    pub ladder: Vec<ProcessingUnits>,
    /// Per-core `(summed demand, summed priority)` aggregates, one entry
    /// per core of the cluster.
    pub cores: Vec<(ProcessingUnits, u32)>,
}

/// The best move found by a constrained-core scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// Which local task should migrate.
    pub task: TaskId,
    /// Index of the destination cluster in the `remotes` slice.
    pub cluster: usize,
    /// Index of the destination core within that cluster.
    pub core: usize,
    /// Estimated supply/demand ratio of the task after the move.
    pub ratio: f64,
    /// Estimated steady-state spending of the task after the move.
    pub spend: Money,
}

/// The distributed LBT computation one constrained core performs — the
/// workload measured in Table 7.
///
/// For each of the `tasks` mapped to the constrained core, estimate the
/// performance (supply/demand ratio) and spending of migrating it to the
/// most over-supplied core of each remote cluster, using the Eq. 2 price
/// recursion for the steady-state price. Complexity `O(V·C + T·V·L)` for
/// `V` remote clusters of `C` cores, `T` local tasks, and `L` V-F levels —
/// the `T × V × M` of §5.5.
///
/// Returns the candidate with the best ratio (ties broken by spending), or
/// `None` when `tasks` or `remotes` is empty.
pub fn constrained_core_scan(
    tasks: &[TaskSnapshot],
    remotes: &[RemoteCluster],
    tolerance: f64,
) -> Option<ScanResult> {
    // Pick each remote cluster's target core once: most over-supplied.
    let targets: Vec<(usize, ProcessingUnits, u32)> = remotes
        .iter()
        .map(|r| {
            let supply = r.ladder[r.level];
            let mut best = (0usize, ProcessingUnits::ZERO, 0u32);
            let mut best_slack = f64::NEG_INFINITY;
            for (i, &(d, p)) in r.cores.iter().enumerate() {
                let slack = supply.value() - d.value();
                if slack > best_slack {
                    best_slack = slack;
                    best = (i, d, p);
                }
            }
            best
        })
        .collect();

    let mut best: Option<ScanResult> = None;
    for t in tasks {
        for (ci, r) in remotes.iter().enumerate() {
            let (core_idx, core_demand, core_priority) = targets[ci];
            let d = t.demand_on(r.class);
            let new_demand = core_demand + d;
            // Steady-state level: lowest supply covering the new demand.
            let level = r
                .ladder
                .iter()
                .position(|&s| s >= new_demand)
                .unwrap_or(r.ladder.len() - 1);
            let supply = r.ladder[level];
            // Eq. 2 price recursion across the level distance.
            let mut price = r.price;
            if level > r.level {
                for _ in r.level..level {
                    price = price.inflated_by(tolerance);
                }
            } else {
                for _ in level..r.level {
                    price = price.deflated_by(tolerance);
                }
            }
            // Priority-proportional steady-state share, capped at demand.
            let total_r = (core_priority + t.priority) as f64;
            let share = (supply * (t.priority as f64 / total_r)).min(d);
            let ratio = if d.is_positive() { share / d } else { 1.0 };
            let spend = price * share;
            let better = match &best {
                None => true,
                Some(b) => {
                    ratio > b.ratio + EPS || ((ratio - b.ratio).abs() <= EPS && spend < b.spend)
                }
            };
            if better {
                best = Some(ScanResult {
                    task: t.id,
                    cluster: ci,
                    core: core_idx,
                    ratio,
                    spend,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod scan_tests {
    use super::*;

    fn task(id: usize, prio: u32, d_little: f64) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            priority: prio,
            demand: PerClass::new(ProcessingUnits(d_little), ProcessingUnits(d_little / 1.8)),
            supply: ProcessingUnits(d_little * 0.6),
            bid: Money(1.0),
        }
    }

    fn remote(class: CoreClass, cores: usize, free: bool) -> RemoteCluster {
        RemoteCluster {
            class,
            price: Price(0.005),
            level: 1,
            ladder: vec![
                ProcessingUnits(400.0),
                ProcessingUnits(800.0),
                ProcessingUnits(1200.0),
            ],
            cores: (0..cores)
                .map(|i| {
                    if free {
                        (ProcessingUnits::ZERO, 0)
                    } else {
                        (ProcessingUnits(300.0 + 50.0 * i as f64), 2)
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn scan_finds_a_candidate() {
        let tasks = vec![task(0, 1, 500.0), task(1, 2, 700.0)];
        let remotes = vec![
            remote(CoreClass::Big, 4, false),
            remote(CoreClass::Little, 4, true),
        ];
        let r = constrained_core_scan(&tasks, &remotes, 0.2).expect("candidates exist");
        assert!(r.ratio > 0.0 && r.ratio <= 1.0);
        assert!(r.cluster < remotes.len());
    }

    #[test]
    fn scan_prefers_the_emptier_cluster() {
        let tasks = vec![task(0, 1, 600.0)];
        // Cluster 0 is crowded; cluster 1 has idle cores of the same class.
        let remotes = vec![
            remote(CoreClass::Little, 4, false),
            remote(CoreClass::Little, 4, true),
        ];
        let r = constrained_core_scan(&tasks, &remotes, 0.2).expect("candidate");
        assert_eq!(r.cluster, 1, "empty cores give the better ratio");
    }

    #[test]
    fn scan_handles_empty_inputs() {
        assert!(constrained_core_scan(&[], &[remote(CoreClass::Big, 2, true)], 0.2).is_none());
        assert!(constrained_core_scan(&[task(0, 1, 100.0)], &[], 0.2).is_none());
    }
}
