//! PPM framework configuration.

use std::fmt;

use ppm_platform::thermal::Celsius;
use ppm_platform::units::{Money, SimDuration, Watts};

/// Tunables of the price-theory power-management framework.
///
/// Defaults follow the paper's experimental setup on TC2: tolerance factor
/// δ = 0.2 (the Table 2 example value), a bidding round every 31.7 ms (the
/// shortest task period), load balancing every 3 bid rounds and migration
/// every 2 load-balance rounds (§3.4), TDP 8 W with the threshold ("buffer
/// zone") at 7 W.
#[derive(Debug, Clone, PartialEq)]
pub struct PpmConfig {
    /// Tolerance factor δ: the inflation/deflation rate a cluster agent
    /// tolerates before changing the V-F level by one step.
    pub tolerance: f64,
    /// Minimum bid `b_min` every task agent must place.
    pub min_bid: Money,
    /// Initial global allowance per unit of total priority; the chip agent
    /// starts with `A = initial_allowance_per_priority × R`.
    pub initial_allowance_per_priority: f64,
    /// Savings cap as a multiple of the task's current allowance ("we cap
    /// the savings of a task agent at a fraction of its current allowance").
    /// Large caps let tasks "keep the system in an emergency state longer
    /// than permissible" (§3.2.3); the default is tuned so savings-funded
    /// TDP excursions stay short on the TC2 power model.
    pub savings_cap_factor: f64,
    /// Thermal design power `W_tdp`.
    pub tdp: Watts,
    /// Threshold-state lower bound `W_th` (buffer-zone start).
    pub threshold: Watts,
    /// Bidding-round period (`max(linux sched epoch, shortest task period)`).
    pub bid_period: SimDuration,
    /// Load balancing runs every this many bid rounds.
    pub load_balance_every: u32,
    /// Task migration runs every this many load-balance invocations.
    pub migrate_every: u32,
    /// Power down clusters with no active tasks.
    pub power_down_idle_clusters: bool,
    /// Enable the LBT module (Figures 7/8 disable it to isolate the
    /// supply-demand dynamics).
    pub lbt_enabled: bool,
    /// Replace the off-line demand profiles with the online
    /// power-performance estimator (the paper's stated future work; see
    /// the `ppm-predict` crate).
    pub online_estimation: bool,
    /// Actuate resource shares through Linux nice values (the paper's
    /// kernel realization: "this is achieved by manipulating the nice
    /// values of each task") instead of exact shares. Nice levels quantize
    /// the share ratios to the kernel's 40-entry weight table.
    pub actuate_via_nice: bool,
    /// Optional thermal limit `(T_threshold, T_critical)`: when the hottest
    /// cluster crosses these junction temperatures, the chip agent treats
    /// the system as being in the threshold/emergency state even if the
    /// instantaneous power is inside the TDP. The TDP is a proxy for
    /// temperature; this closes the loop against the RC thermal model
    /// (an extension beyond the paper — see DESIGN.md).
    pub thermal_limit: Option<(Celsius, Celsius)>,
    /// Threads the market's bidding round fans out over (DESIGN.md §13).
    /// `1` (the default) keeps the round fully serial with no pool; `n > 1`
    /// spawns a persistent pool of `n - 1` workers and shards the
    /// post-placement stages per cluster range, with a deterministic
    /// slot-order merge that keeps decisions bit-identical to the serial
    /// path. Values above the host core count only add contention.
    pub market_workers: usize,
}

impl PpmConfig {
    /// The paper's TC2 configuration.
    pub fn tc2() -> PpmConfig {
        PpmConfig {
            tolerance: 0.2,
            min_bid: Money(0.01),
            initial_allowance_per_priority: 1.5,
            savings_cap_factor: 3.0,
            tdp: Watts(8.0),
            threshold: Watts(7.0),
            bid_period: SimDuration::from_micros(31_700),
            load_balance_every: 3,
            migrate_every: 2,
            power_down_idle_clusters: true,
            lbt_enabled: true,
            online_estimation: false,
            actuate_via_nice: false,
            thermal_limit: None,
            market_workers: 1,
        }
    }

    /// TC2 configuration with an artificial power cap, as in the Figure 6
    /// study (4 W TDP; the buffer zone scales proportionally).
    pub fn tc2_with_tdp(tdp: Watts) -> PpmConfig {
        PpmConfig {
            tdp,
            // A generous buffer zone (~the largest single V-F step's power
            // swing) so the system cannot jump from normal to emergency
            // without passing through the threshold state (§3.2.4).
            threshold: tdp * 0.875,
            ..PpmConfig::tc2()
        }
    }

    /// Disable load balancing and migration (the §5.4 priority/savings
    /// studies).
    pub fn without_lbt(mut self) -> PpmConfig {
        self.lbt_enabled = false;
        self
    }

    /// Use the online power-performance estimator instead of the off-line
    /// demand profiles.
    pub fn with_online_estimation(mut self) -> PpmConfig {
        self.online_estimation = true;
        self
    }

    /// Actuate shares through quantized nice values, as the paper's kernel
    /// modules do.
    pub fn with_nice_actuation(mut self) -> PpmConfig {
        self.actuate_via_nice = true;
        self
    }

    /// Enforce a junction-temperature limit alongside the power budget
    /// (requires a thermal model attached to the system).
    pub fn with_thermal_limit(mut self, threshold: Celsius, critical: Celsius) -> PpmConfig {
        self.thermal_limit = Some((threshold, critical));
        self
    }

    /// Fan the market round out over `workers` threads (1 = serial).
    pub fn with_market_workers(mut self, workers: usize) -> PpmConfig {
        self.market_workers = workers;
        self
    }

    /// Derive the bidding period per §3.4: `max(linux sched epoch,
    /// shortest task period)`, where a heartbeat task's period is the
    /// reciprocal of its target rate. The paper's task set bottoms out at
    /// 31.7 ms; a set of slower tasks gets a correspondingly slower market.
    pub fn bid_period_for(target_rates_hz: &[f64]) -> SimDuration {
        const LINUX_SCHED_EPOCH: SimDuration = SimDuration(10_000);
        // The shortest period belongs to the fastest-beating task.
        let fastest = target_rates_hz
            .iter()
            .copied()
            .filter(|r| *r > 0.0)
            .fold(0.0_f64, f64::max);
        if fastest <= 0.0 {
            return SimDuration::from_micros(31_700);
        }
        let period = SimDuration::from_micros((1e6 / fastest) as u64);
        if period.as_micros() > LINUX_SCHED_EPOCH.as_micros() {
            period
        } else {
            LINUX_SCHED_EPOCH
        }
    }

    /// Load-balancing period: `load_balance_every × bid_period` (§3.4).
    pub fn load_balance_period(&self) -> SimDuration {
        self.bid_period * self.load_balance_every as u64
    }

    /// Task-migration period: `migrate_every × load_balance_period` (§3.4).
    pub fn migration_period(&self) -> SimDuration {
        self.load_balance_period() * self.migrate_every as u64
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..1.0).contains(&self.tolerance) || self.tolerance <= 0.0 {
            return Err(ConfigError("tolerance must lie in (0, 1)"));
        }
        if !self.min_bid.is_positive() {
            return Err(ConfigError("min_bid must be positive"));
        }
        if self.threshold >= self.tdp {
            return Err(ConfigError("threshold must be below the TDP"));
        }
        if self.bid_period.is_zero() {
            return Err(ConfigError("bid_period must be positive"));
        }
        if self.load_balance_every == 0 || self.migrate_every == 0 {
            return Err(ConfigError("LBT multipliers must be positive"));
        }
        if self.savings_cap_factor < 0.0 {
            return Err(ConfigError("savings cap must be non-negative"));
        }
        if let Some((th, crit)) = self.thermal_limit {
            if th >= crit {
                return Err(ConfigError("thermal threshold must be below critical"));
            }
        }
        if self.market_workers == 0 || self.market_workers > 64 {
            return Err(ConfigError("market_workers must lie in [1, 64]"));
        }
        Ok(())
    }
}

impl Default for PpmConfig {
    fn default() -> Self {
        PpmConfig::tc2()
    }
}

/// A configuration constraint violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError(pub &'static str);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PPM configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc2_defaults_follow_the_paper() {
        let c = PpmConfig::tc2();
        assert_eq!(c.tolerance, 0.2);
        assert_eq!(c.bid_period, SimDuration::from_micros(31_700));
        // §3.4: LB every 95.1 ms, migration every 190.2 ms.
        assert_eq!(c.load_balance_period(), SimDuration::from_micros(95_100));
        assert_eq!(c.migration_period(), SimDuration::from_micros(190_200));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn capped_config_scales_threshold() {
        let c = PpmConfig::tc2_with_tdp(Watts(4.0));
        assert_eq!(c.tdp, Watts(4.0));
        assert_eq!(c.threshold, Watts(3.5));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = PpmConfig::tc2();
        c.tolerance = 0.0;
        assert!(c.validate().is_err());
        let mut c = PpmConfig::tc2();
        c.threshold = c.tdp;
        assert!(c.validate().is_err());
        let mut c = PpmConfig::tc2();
        c.min_bid = Money::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn without_lbt_disables_module() {
        assert!(!PpmConfig::tc2().without_lbt().lbt_enabled);
    }

    #[test]
    fn market_workers_default_and_bounds() {
        let c = PpmConfig::tc2();
        assert_eq!(c.market_workers, 1, "serial by default");
        assert_eq!(c.clone().with_market_workers(4).market_workers, 4);
        let mut bad = c.clone();
        bad.market_workers = 0;
        assert!(bad.validate().is_err());
        bad.market_workers = 65;
        assert!(bad.validate().is_err());
        assert!(c.with_market_workers(64).validate().is_ok());
    }

    #[test]
    fn bid_period_follows_the_fastest_task() {
        // The paper's fastest task beats at ~31.5 hb/s -> 31.7 ms rounds.
        let p = PpmConfig::bid_period_for(&[10.0, 31.545, 20.0]);
        assert!((p.as_micros() as i64 - 31_700).abs() < 100, "{p}");
        // Very fast tasks clamp at the scheduler epoch.
        assert_eq!(
            PpmConfig::bid_period_for(&[500.0]),
            SimDuration::from_millis(10)
        );
        // No rates: the paper's default.
        assert_eq!(
            PpmConfig::bid_period_for(&[]),
            SimDuration::from_micros(31_700)
        );
    }
}
