//! A small persistent worker pool for sharded market rounds.
//!
//! The paper's §3 market is decentralized — per-core supply agents and
//! per-cluster DVFS agents interact only through prices — so the
//! post-placement stages of a bidding round can run per cluster shard in
//! parallel. This pool lifts the `std::thread::scope` + atomic-job-index
//! idiom from `ppm-bench`'s sweep runner into a reusable primitive whose
//! threads are spawned **once** and parked on a condvar between rounds:
//! dispatching a job allocates nothing and costs two mutex round-trips,
//! which is what makes per-31.7 ms-round use viable.
//!
//! [`WorkerPool::run`] publishes one job — a `Fn(usize)` over shard
//! indices — to all workers, executes shard 0 on the calling thread, and
//! blocks until every worker has finished. A pool with `n` worker threads
//! therefore serves `n + 1` shards per dispatch. Determinism is the
//! caller's contract: shards must own disjoint output buffers, and the
//! caller merges them in slot order after `run` returns.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the job closure. Only ever dereferenced
/// between publication in [`WorkerPool::run`] and the final `remaining`
/// decrement, a window the caller outlives by construction (it blocks on
/// `done` until `remaining == 0`), so the erasure is sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&` calls from many threads are
// fine) and the pool guarantees it outlives every dereference (see
// `JobPtr` docs), so sending the pointer between threads is safe.
unsafe impl Send for JobPtr {}

/// State shared between the dispatching thread and the workers.
struct State {
    /// The current job, valid while `generation` names it.
    job: Option<JobPtr>,
    /// Incremented once per dispatch; workers use it to tell a fresh job
    /// from the one they just finished (a condvar wake alone cannot).
    generation: u64,
    /// Workers still running the current job.
    remaining: usize,
    /// Set once by `Drop`; workers exit their loop when they see it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work: Condvar,
    /// The dispatcher parks here until `remaining` hits zero.
    done: Condvar,
}

/// Persistent worker threads for sharded market rounds: spawned once,
/// parked between dispatches, joined on drop. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes dispatches: the pool is shared by `Arc` (cloned markets
    /// keep one set of threads), and the generation/remaining bookkeeping
    /// assumes one job in flight at a time.
    dispatch: Mutex<()>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` persistent threads. `workers == 0` is a
    /// valid degenerate pool: [`WorkerPool::run`] then just calls the job
    /// once on the calling thread.
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                remaining: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppm-market-{i}"))
                    .spawn(move || worker_loop(&shared, i + 1))
                    .expect("spawn market worker")
            })
            .collect();
        WorkerPool {
            shared,
            dispatch: Mutex::new(()),
            threads,
        }
    }

    /// Worker threads in the pool (shards per dispatch is one more: the
    /// calling thread runs shard 0).
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Total shards a dispatch fans out over: `workers() + 1`.
    pub fn shards(&self) -> usize {
        self.threads.len() + 1
    }

    /// Run `job` once per shard index in `0..self.shards()`: index 0 on
    /// the calling thread, the rest on the parked workers. Blocks until
    /// every shard has finished; allocates nothing.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let n = self.threads.len();
        if n == 0 {
            job(0);
            return;
        }
        let _dispatch = self.dispatch.lock().expect("pool dispatch mutex");
        // SAFETY: `run` does not return until `remaining == 0`, i.e. until
        // every worker has finished calling the job and will not touch the
        // pointer again (workers only read `state.job` under the lock while
        // `generation` names this dispatch), so the borrow outlives every
        // dereference despite the erased lifetime.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.job = Some(JobPtr(erased));
            st.generation += 1;
            st.remaining = n;
            self.shared.work.notify_all();
        }
        job(0);
        let mut st = self.shared.state.lock().expect("pool mutex");
        while st.remaining > 0 {
            st = self.shared.done.wait(st).expect("pool mutex");
        }
        st.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("generation advanced without a job");
                }
                st = shared.work.wait(st).expect("pool mutex");
            }
        };
        // SAFETY: the dispatcher keeps the pointee alive until `remaining`
        // reaches zero, which only happens after this call returns.
        (unsafe { &*job.0 })(index);
        let mut st = shared.state.lock().expect("pool mutex");
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_shard_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.shards(), 4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "shard {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|i| {
                total.fetch_add(i + 1, Ordering::SeqCst);
            });
        }
        // Σ (i+1) over shards {0,1,2} = 6, 100 times.
        assert_eq!(total.load(Ordering::SeqCst), 600);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.shards(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn disjoint_slot_outputs_merge_deterministically() {
        // The market's usage pattern: each shard owns a disjoint output
        // slot; the caller merges in slot order after run() returns.
        let pool = WorkerPool::new(3);
        let slots: Vec<Mutex<Option<usize>>> = (0..4).map(|_| Mutex::new(None)).collect();
        pool.run(&|i| {
            *slots[i].lock().expect("slot") = Some(i * 10);
        });
        let merged: Vec<usize> = slots
            .iter()
            .map(|s| s.lock().expect("slot").expect("filled"))
            .collect();
        assert_eq!(merged, vec![0, 10, 20, 30]);
    }

    #[test]
    fn drop_joins_cleanly_even_without_dispatch() {
        let pool = WorkerPool::new(4);
        drop(pool);
    }
}
