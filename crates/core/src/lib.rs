//! # ppm-core — Price-theory based power management (PPM)
//!
//! The primary contribution of *"Price Theory Based Power Management for
//! Heterogeneous Multi-Cores"* (ASPLOS 2014): a distributed market in which
//! Processing Units are traded with virtual money.
//!
//! * Task agents bid for PU according to their demand (Eq. 1) and save
//!   surplus allowance.
//! * Core agents discover prices (`P_c = Σ b_t / S_c`) and sell supply.
//! * Cluster agents fight price inflation/deflation with DVFS steps,
//!   watching the constrained core (§3.2.2).
//! * The chip agent steers total power via the money supply: allowances grow
//!   while demand is unmet, freeze inside the TDP buffer zone, and shrink
//!   proportionally above the TDP (§3.2.3).
//! * The LBT module proposes one load-balance/migration move at a time from
//!   constrained cores to the most over-supplied unconstrained cores
//!   (§3.3), comparing mappings with `perf(M)` and `spend(M)`.
//!
//! [`manager::PpmManager`] packages all of it as a
//! [`ppm_sched::executor::PowerManager`].
//!
//! ```
//! use ppm_core::config::PpmConfig;
//! use ppm_core::manager::tc2_ppm_system;
//! use ppm_platform::units::SimDuration;
//! use ppm_sched::executor::Simulation;
//! use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
//! use ppm_workload::task::{Priority, Task, TaskId};
//!
//! # fn main() -> Result<(), ppm_workload::benchmarks::UnknownVariantError> {
//! let spec = BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large)?;
//! let (sys, mgr) = tc2_ppm_system(
//!     vec![Task::new(TaskId(0), spec, Priority(1))],
//!     PpmConfig::tc2(),
//! );
//! let mut sim = Simulation::new(sys, mgr);
//! sim.run_for(SimDuration::from_secs(2));
//! assert!(sim.metrics().average_power().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod agents;
pub mod config;
pub mod events;
pub mod lbt;
pub mod manager;
pub mod market;
pub mod pool;
pub mod state;

pub use crate::config::{ConfigError, PpmConfig};
pub use crate::events::{Event, EventLog, LoggedEvent};
pub use crate::lbt::{decide_load_balance, decide_migration, LbtSnapshot, Move, MoveGoal};
pub use crate::manager::{place_on_little, tc2_ppm_system, PpmManager};
pub use crate::market::{Market, MarketDecision, MarketObs, VfStep};
pub use crate::pool::WorkerPool;
pub use crate::state::PowerState;
