//! Chip power states and the global-allowance Δ policy (§3.2.3).

use std::fmt;

use ppm_platform::units::{Money, ProcessingUnits, Watts};

use crate::config::PpmConfig;

/// The three regions of the power spectrum the chip agent distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// `W < W_th`: meet demand; allowance grows while demand is unmet.
    Normal,
    /// `W_th ≤ W ≤ W_tdp`: the buffer zone; allowance held constant so the
    /// overloaded system stabilises here (hysteresis).
    Threshold,
    /// `W > W_tdp`: allowance cut proportionally to the TDP excursion.
    Emergency,
}

impl PowerState {
    /// Classify a chip power reading.
    pub fn classify(power: Watts, config: &PpmConfig) -> PowerState {
        if power.value() > config.tdp.value() {
            PowerState::Emergency
        } else if power.value() >= config.threshold.value() {
            PowerState::Threshold
        } else {
            PowerState::Normal
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerState::Normal => write!(f, "normal"),
            PowerState::Threshold => write!(f, "threshold"),
            PowerState::Emergency => write!(f, "emergency"),
        }
    }
}

/// Largest per-round relative allowance change, up or down.
///
/// The raw §3.2.3 formulas are unbounded: a deeply overloaded chip can see
/// `(D−S)/D` near 1 (allowance doubling every 31.7 ms) and `(W_tdp−W)/W_tdp`
/// below −1 (the money supply zeroed in one round), either of which slams
/// the market from one end of the V-F ladder to the other instead of letting
/// it settle in the buffer zone. One third per round — exactly the rate of
/// both running-example updates in Table 3 (4.5→6.0 and 6.0→4.0) — keeps the
/// paper's numbers while bounding the slew.
pub const MAX_DELTA_RATE: f64 = 1.0 / 3.0;

/// Smallest relative emergency cut per application.
///
/// Near the TDP the raw `(W_tdp−W)/W_tdp` rate becomes vanishingly small
/// (a 2 % excursion cuts 2 %), letting the overloaded market linger just
/// above the budget for many rounds. A 10 % minimum keeps each emergency
/// visit decisive while remaining far gentler than the Table 3 example's
/// −33 % cut.
pub const MIN_EMERGENCY_CUT_RATE: f64 = 0.15;

/// The chip agent's allowance change `Δ` for the next round (§3.2.3):
///
/// * Normal: `Δ = A·(D−S)/D` when total demand `D` exceeds total supply `S`
///   (the chip is under-provisioned and task agents need more money),
///   otherwise 0.
/// * Threshold: `Δ = 0` (stability through constant allowance).
/// * Emergency: `Δ = A·(W_tdp−W)/W_tdp` — negative, proportional to the
///   excursion above the TDP.
///
/// Both non-zero cases are slew-limited to [`MAX_DELTA_RATE`].
pub fn allowance_delta(
    state: PowerState,
    allowance: Money,
    demand: ProcessingUnits,
    supply: ProcessingUnits,
    power: Watts,
    config: &PpmConfig,
) -> Money {
    match state {
        PowerState::Normal => {
            if demand > supply && demand.is_positive() {
                let rate = ((demand - supply).value() / demand.value()).min(MAX_DELTA_RATE);
                allowance * rate
            } else {
                Money::ZERO
            }
        }
        PowerState::Threshold => Money::ZERO,
        PowerState::Emergency => {
            let rate = ((config.tdp - power).value() / config.tdp.value())
                .clamp(-MAX_DELTA_RATE, -MIN_EMERGENCY_CUT_RATE);
            allowance * rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PpmConfig {
        // The Table 3 example: Wtdp 2.25 W, Wth 1.75 W.
        let mut c = PpmConfig::tc2();
        c.tdp = Watts(2.25);
        c.threshold = Watts(1.75);
        c
    }

    #[test]
    fn classification_matches_table3_example() {
        let c = cfg();
        assert_eq!(PowerState::classify(Watts(0.8), &c), PowerState::Normal);
        assert_eq!(PowerState::classify(Watts(2.0), &c), PowerState::Threshold);
        assert_eq!(PowerState::classify(Watts(3.0), &c), PowerState::Emergency);
        // Boundaries: W_th inclusive to threshold, W_tdp inclusive too.
        assert_eq!(PowerState::classify(Watts(1.75), &c), PowerState::Threshold);
        assert_eq!(PowerState::classify(Watts(2.25), &c), PowerState::Threshold);
    }

    #[test]
    fn normal_state_delta_matches_table3_round5() {
        // Table 3: A=$4.5, D=600, S=400 -> Δ=1.5, A becomes $6.0.
        let d = allowance_delta(
            PowerState::Normal,
            Money(4.5),
            ProcessingUnits(600.0),
            ProcessingUnits(400.0),
            Watts(0.8),
            &cfg(),
        );
        assert!((d.value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normal_state_holds_when_supply_meets_demand() {
        let d = allowance_delta(
            PowerState::Normal,
            Money(4.5),
            ProcessingUnits(400.0),
            ProcessingUnits(400.0),
            Watts(0.8),
            &cfg(),
        );
        assert_eq!(d, Money::ZERO);
    }

    #[test]
    fn threshold_state_freezes_allowance() {
        let d = allowance_delta(
            PowerState::Threshold,
            Money(6.0),
            ProcessingUnits(600.0),
            ProcessingUnits(500.0),
            Watts(2.0),
            &cfg(),
        );
        assert_eq!(d, Money::ZERO);
    }

    #[test]
    fn emergency_delta_matches_table3_round8() {
        // Table 3: A=$6.0 at 3 W with Wtdp 2.25 W -> Δ = 6*(2.25-3)/2.25 = -2.
        let d = allowance_delta(
            PowerState::Emergency,
            Money(6.0),
            ProcessingUnits(600.0),
            ProcessingUnits(600.0),
            Watts(3.0),
            &cfg(),
        );
        assert!((d.value() + 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod slew_tests {
    use super::*;

    #[test]
    fn deltas_are_slew_limited() {
        let mut c = PpmConfig::tc2();
        c.tdp = Watts(2.25);
        c.threshold = Watts(1.75);
        // Deep under-supply: raw rate (1000-100)/1000 = 0.9, clamped to 1/3.
        let up = allowance_delta(
            PowerState::Normal,
            Money(3.0),
            ProcessingUnits(1000.0),
            ProcessingUnits(100.0),
            Watts(0.8),
            &c,
        );
        assert!((up.value() - 1.0).abs() < 1e-12);
        // Deep excursion: raw rate (2.25-9)/2.25 = -3, clamped to -1/3.
        let down = allowance_delta(
            PowerState::Emergency,
            Money(3.0),
            ProcessingUnits(100.0),
            ProcessingUnits(100.0),
            Watts(9.0),
            &c,
        );
        assert!((down.value() + 1.0).abs() < 1e-12);
    }
}
