//! `cpufreq`-style frequency governors.
//!
//! The HL baseline pairs the heterogeneity-aware scheduler with the Linux
//! *ondemand* governor ("changes the frequency value based on processor
//! utilization", §5.3). Performance and powersave governors are provided for
//! experimental controls.

use ppm_platform::cluster::ClusterId;
use ppm_platform::units::{SimDuration, SimTime};
use ppm_platform::vf::VfLevel;

use crate::executor::System;

/// A per-cluster frequency policy.
pub trait FrequencyGovernor {
    /// Governor name (`ondemand`, `performance`, …).
    fn name(&self) -> &'static str;

    /// Observe `sys` and, if warranted, request a new level for `cluster`.
    fn govern(&mut self, sys: &mut System, cluster: ClusterId, dt: SimDuration);
}

/// Linux *ondemand*: jump to the highest frequency when utilization exceeds
/// the up-threshold, otherwise pick the lowest frequency that keeps
/// utilization at the target.
#[derive(Debug, Clone)]
pub struct Ondemand {
    /// Utilization above which the governor jumps to the maximum level.
    pub up_threshold: f64,
    /// Utilization the governor aims for when scaling down.
    pub target_utilization: f64,
    /// Sampling period.
    pub sampling_period: SimDuration,
    next_sample: SimTime,
}

impl Ondemand {
    /// The classic defaults (up-threshold 95 %, 50 ms sampling).
    pub fn new() -> Ondemand {
        Ondemand {
            up_threshold: 0.95,
            target_utilization: 0.80,
            sampling_period: SimDuration::from_millis(50),
            next_sample: SimTime::ZERO,
        }
    }
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand::new()
    }
}

impl FrequencyGovernor for Ondemand {
    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn govern(&mut self, sys: &mut System, cluster: ClusterId, _dt: SimDuration) {
        if sys.now() < self.next_sample {
            return;
        }
        self.next_sample = sys.now() + self.sampling_period;
        let cl = sys.chip().cluster(cluster);
        if cl.is_off() {
            return;
        }
        // Busiest core governs the cluster (shared regulator).
        let util = cl
            .cores()
            .iter()
            .map(|&c| sys.core_utilization(c))
            .fold(0.0_f64, f64::max);
        let table = cl.table().clone();
        let current = cl.level();
        let target = if util >= self.up_threshold {
            table.max_level()
        } else {
            // Lowest level that would serve the current busy cycles at the
            // target utilization.
            let busy_pu = util * cl.supply_per_core().value();
            table.level_for_demand(ppm_platform::units::ProcessingUnits(
                busy_pu / self.target_utilization,
            ))
        };
        if target != current {
            sys.request_level(cluster, target);
        }
    }
}

/// Linux *conservative*: like ondemand but stepping one level at a time,
/// trading responsiveness for fewer/smaller frequency swings.
#[derive(Debug, Clone)]
pub struct Conservative {
    /// Utilization above which the level steps up.
    pub up_threshold: f64,
    /// Utilization below which the level steps down.
    pub down_threshold: f64,
    /// Sampling period.
    pub sampling_period: SimDuration,
    next_sample: SimTime,
}

impl Conservative {
    /// The classic defaults (80 %/20 %, 100 ms sampling).
    pub fn new() -> Conservative {
        Conservative {
            up_threshold: 0.80,
            down_threshold: 0.20,
            sampling_period: SimDuration::from_millis(100),
            next_sample: SimTime::ZERO,
        }
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Conservative::new()
    }
}

impl FrequencyGovernor for Conservative {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn govern(&mut self, sys: &mut System, cluster: ClusterId, _dt: SimDuration) {
        if sys.now() < self.next_sample {
            return;
        }
        self.next_sample = sys.now() + self.sampling_period;
        let cl = sys.chip().cluster(cluster);
        if cl.is_off() {
            return;
        }
        let util = cl
            .cores()
            .iter()
            .map(|&c| sys.core_utilization(c))
            .fold(0.0_f64, f64::max);
        let level = cl.level();
        let table = cl.table();
        let target = if util >= self.up_threshold {
            table.step_up(level)
        } else if util <= self.down_threshold {
            table.step_down(level)
        } else {
            level
        };
        if target != level {
            sys.request_level(cluster, target);
        }
    }
}

/// Always runs the cluster at its highest level.
#[derive(Debug, Clone, Copy, Default)]
pub struct Performance;

impl FrequencyGovernor for Performance {
    fn name(&self) -> &'static str {
        "performance"
    }

    fn govern(&mut self, sys: &mut System, cluster: ClusterId, _dt: SimDuration) {
        let top = sys.chip().cluster(cluster).table().max_level();
        if sys.chip().cluster(cluster).effective_target() != top {
            sys.request_level(cluster, top);
        }
    }
}

/// Always runs the cluster at its lowest level.
#[derive(Debug, Clone, Copy, Default)]
pub struct Powersave;

impl FrequencyGovernor for Powersave {
    fn name(&self) -> &'static str {
        "powersave"
    }

    fn govern(&mut self, sys: &mut System, cluster: ClusterId, _dt: SimDuration) {
        if sys.chip().cluster(cluster).effective_target() != VfLevel(0) {
            sys.request_level(cluster, VfLevel(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{AllocationPolicy, PowerManager, Simulation, System};
    use ppm_platform::chip::Chip;
    use ppm_platform::core::CoreId;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task, TaskId};

    /// Manager applying one governor to every cluster.
    struct GovernorManager<G>(G);

    impl<G: FrequencyGovernor> PowerManager for GovernorManager<G> {
        fn name(&self) -> &'static str {
            "governor-test"
        }
        fn tick(&mut self, sys: &mut System, dt: SimDuration) {
            for ci in 0..sys.chip().clusters().len() {
                self.0.govern(sys, ClusterId(ci), dt);
            }
        }
    }

    fn loaded_system() -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::X264, Input::Native).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        sys
    }

    #[test]
    fn ondemand_ramps_up_under_load() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Ondemand::new()));
        sim.run_for(SimDuration::from_millis(500));
        // A CPU-bound task saturates the core; ondemand jumps to max.
        let level = sim.system().chip().cluster(ClusterId(0)).level();
        assert_eq!(
            level,
            sim.system()
                .chip()
                .cluster(ClusterId(0))
                .table()
                .max_level()
        );
    }

    #[test]
    fn ondemand_leaves_idle_cluster_alone() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Ondemand::new()));
        sim.run_for(SimDuration::from_millis(500));
        // Nothing runs on the big cluster.
        assert_eq!(
            sim.system().chip().cluster(ClusterId(1)).level(),
            VfLevel(0)
        );
    }

    #[test]
    fn conservative_steps_one_level_at_a_time() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Conservative::new()));
        // After one sampling period: exactly one step up, not a jump to max.
        sim.run_for(SimDuration::from_millis(150));
        assert_eq!(
            sim.system().chip().cluster(ClusterId(0)).level(),
            VfLevel(1)
        );
        // Eventually it also reaches the top under sustained load.
        sim.run_for(SimDuration::from_secs(2));
        let little = sim.system().chip().cluster(ClusterId(0));
        assert_eq!(little.level(), little.table().max_level());
    }

    #[test]
    fn performance_pins_top_powersave_pins_bottom() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Performance));
        sim.run_for(SimDuration::from_millis(10));
        let little = sim.system().chip().cluster(ClusterId(0));
        assert_eq!(little.level(), little.table().max_level());

        let mut sim = Simulation::new(loaded_system(), GovernorManager(Powersave));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.system().chip().cluster(ClusterId(0)).level(),
            VfLevel(0)
        );
    }
}
