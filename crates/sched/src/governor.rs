//! `cpufreq`-style frequency governors.
//!
//! The HL baseline pairs the heterogeneity-aware scheduler with the Linux
//! *ondemand* governor ("changes the frequency value based on processor
//! utilization", §5.3). Performance and powersave governors are provided for
//! experimental controls.
//!
//! Governors follow the snapshot-in / plan-out boundary: they read a
//! [`SystemSnapshot`] and *return* the level they want, which the caller
//! queues as a [`RequestLevel`](crate::plan::Action::RequestLevel) action.

use ppm_platform::cluster::ClusterId;
use ppm_platform::units::{SimDuration, SimTime};
use ppm_platform::vf::VfLevel;

use crate::snapshot::SystemSnapshot;

/// A per-cluster frequency policy.
pub trait FrequencyGovernor {
    /// Governor name (`ondemand`, `performance`, …).
    fn name(&self) -> &'static str;

    /// Observe the snapshot and, if warranted, return a new level to request
    /// for `cluster`.
    fn govern(
        &mut self,
        snap: &SystemSnapshot,
        cluster: ClusterId,
        dt: SimDuration,
    ) -> Option<VfLevel>;
}

/// Linux *ondemand*: jump to the highest frequency when utilization exceeds
/// the up-threshold, otherwise pick the lowest frequency that keeps
/// utilization at the target.
#[derive(Debug, Clone)]
pub struct Ondemand {
    /// Utilization above which the governor jumps to the maximum level.
    pub up_threshold: f64,
    /// Utilization the governor aims for when scaling down.
    pub target_utilization: f64,
    /// Sampling period.
    pub sampling_period: SimDuration,
    next_sample: SimTime,
}

impl Ondemand {
    /// The classic defaults (up-threshold 95 %, 50 ms sampling).
    pub fn new() -> Ondemand {
        Ondemand {
            up_threshold: 0.95,
            target_utilization: 0.80,
            sampling_period: SimDuration::from_millis(50),
            next_sample: SimTime::ZERO,
        }
    }
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand::new()
    }
}

impl FrequencyGovernor for Ondemand {
    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn govern(
        &mut self,
        snap: &SystemSnapshot,
        cluster: ClusterId,
        _dt: SimDuration,
    ) -> Option<VfLevel> {
        if snap.now < self.next_sample {
            return None;
        }
        self.next_sample = snap.now + self.sampling_period;
        let cl = snap.cluster(cluster);
        if cl.off {
            return None;
        }
        // Busiest core governs the cluster (shared regulator).
        let util = cl
            .cores
            .iter()
            .map(|&c| snap.core(c).utilization)
            .fold(0.0_f64, f64::max);
        let current = cl.level;
        let target = if util >= self.up_threshold {
            cl.max_level()
        } else {
            // Lowest level that would serve the current busy cycles at the
            // target utilization.
            let busy_pu = util * cl.supply_per_core.value();
            cl.level_for_demand(ppm_platform::units::ProcessingUnits(
                busy_pu / self.target_utilization,
            ))
        };
        (target != current).then_some(VfLevel(target))
    }
}

/// Linux *conservative*: like ondemand but stepping one level at a time,
/// trading responsiveness for fewer/smaller frequency swings.
#[derive(Debug, Clone)]
pub struct Conservative {
    /// Utilization above which the level steps up.
    pub up_threshold: f64,
    /// Utilization below which the level steps down.
    pub down_threshold: f64,
    /// Sampling period.
    pub sampling_period: SimDuration,
    next_sample: SimTime,
}

impl Conservative {
    /// The classic defaults (80 %/20 %, 100 ms sampling).
    pub fn new() -> Conservative {
        Conservative {
            up_threshold: 0.80,
            down_threshold: 0.20,
            sampling_period: SimDuration::from_millis(100),
            next_sample: SimTime::ZERO,
        }
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Conservative::new()
    }
}

impl FrequencyGovernor for Conservative {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn govern(
        &mut self,
        snap: &SystemSnapshot,
        cluster: ClusterId,
        _dt: SimDuration,
    ) -> Option<VfLevel> {
        if snap.now < self.next_sample {
            return None;
        }
        self.next_sample = snap.now + self.sampling_period;
        let cl = snap.cluster(cluster);
        if cl.off {
            return None;
        }
        let util = cl
            .cores
            .iter()
            .map(|&c| snap.core(c).utilization)
            .fold(0.0_f64, f64::max);
        let level = cl.level;
        let target = if util >= self.up_threshold {
            cl.step_up()
        } else if util <= self.down_threshold {
            cl.step_down()
        } else {
            level
        };
        (target != level).then_some(VfLevel(target))
    }
}

/// Always runs the cluster at its highest level.
#[derive(Debug, Clone, Copy, Default)]
pub struct Performance;

impl FrequencyGovernor for Performance {
    fn name(&self) -> &'static str {
        "performance"
    }

    fn govern(
        &mut self,
        snap: &SystemSnapshot,
        cluster: ClusterId,
        _dt: SimDuration,
    ) -> Option<VfLevel> {
        let cl = snap.cluster(cluster);
        let top = cl.max_level();
        (cl.effective_target != top).then_some(VfLevel(top))
    }
}

/// Always runs the cluster at its lowest level.
#[derive(Debug, Clone, Copy, Default)]
pub struct Powersave;

impl FrequencyGovernor for Powersave {
    fn name(&self) -> &'static str {
        "powersave"
    }

    fn govern(
        &mut self,
        snap: &SystemSnapshot,
        cluster: ClusterId,
        _dt: SimDuration,
    ) -> Option<VfLevel> {
        (snap.cluster(cluster).effective_target != 0).then_some(VfLevel(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{AllocationPolicy, PowerManager, Simulation, System};
    use crate::plan::ActuationPlan;
    use ppm_platform::chip::Chip;
    use ppm_platform::core::CoreId;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task, TaskId};

    /// Manager applying one governor to every cluster.
    struct GovernorManager<G>(G);

    impl<G: FrequencyGovernor> PowerManager for GovernorManager<G> {
        fn name(&self) -> &'static str {
            "governor-test"
        }
        fn plan(&mut self, snap: &SystemSnapshot, dt: SimDuration, plan: &mut ActuationPlan) {
            for ci in 0..snap.clusters.len() {
                if let Some(level) = self.0.govern(snap, ClusterId(ci), dt) {
                    plan.request_level(ClusterId(ci), level);
                }
            }
        }
    }

    fn loaded_system() -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::X264, Input::Native).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        sys
    }

    #[test]
    fn ondemand_ramps_up_under_load() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Ondemand::new()));
        sim.run_for(SimDuration::from_millis(500));
        // A CPU-bound task saturates the core; ondemand jumps to max.
        let level = sim.system().chip().cluster(ClusterId(0)).level();
        assert_eq!(
            level,
            sim.system()
                .chip()
                .cluster(ClusterId(0))
                .table()
                .max_level()
        );
    }

    #[test]
    fn ondemand_leaves_idle_cluster_alone() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Ondemand::new()));
        sim.run_for(SimDuration::from_millis(500));
        // Nothing runs on the big cluster.
        assert_eq!(
            sim.system().chip().cluster(ClusterId(1)).level(),
            VfLevel(0)
        );
    }

    #[test]
    fn conservative_steps_one_level_at_a_time() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Conservative::new()));
        // After one sampling period: exactly one step up, not a jump to max.
        sim.run_for(SimDuration::from_millis(150));
        assert_eq!(
            sim.system().chip().cluster(ClusterId(0)).level(),
            VfLevel(1)
        );
        // Eventually it also reaches the top under sustained load.
        sim.run_for(SimDuration::from_secs(2));
        let little = sim.system().chip().cluster(ClusterId(0));
        assert_eq!(little.level(), little.table().max_level());
    }

    #[test]
    fn performance_pins_top_powersave_pins_bottom() {
        let mut sim = Simulation::new(loaded_system(), GovernorManager(Performance));
        sim.run_for(SimDuration::from_millis(10));
        let little = sim.system().chip().cluster(ClusterId(0));
        assert_eq!(little.level(), little.table().max_level());

        let mut sim = Simulation::new(loaded_system(), GovernorManager(Powersave));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.system().chip().cluster(ClusterId(0)).level(),
            VfLevel(0)
        );
    }
}
