//! Linux nice values and the CFS weight table.
//!
//! The paper's core agents distribute resources "by manipulating the nice
//! values of each task": CFS gives each task CPU time proportional to its
//! weight, and nice levels map to weights through the kernel's
//! `sched_prio_to_weight` table (each nice step changes the share by ~25 %).
//! We reproduce that table verbatim so a desired share can be translated to
//! the closest achievable nice value, exactly as the paper's kernel modules
//! had to.

use std::fmt;

/// A Linux nice value in `[-20, 19]`; lower nice means a larger share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nice(i8);

/// The kernel's `sched_prio_to_weight` table, nice −20 first.
const PRIO_TO_WEIGHT: [u32; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

impl Nice {
    /// The default nice level (0).
    pub const DEFAULT: Nice = Nice(0);
    /// The most favourable level (−20).
    pub const MIN: Nice = Nice(-20);
    /// The least favourable level (19).
    pub const MAX: Nice = Nice(19);

    /// Construct from a raw value, clamping into `[-20, 19]`.
    pub fn new(value: i8) -> Nice {
        Nice(value.clamp(-20, 19))
    }

    /// The raw nice value.
    pub fn value(self) -> i8 {
        self.0
    }

    /// CFS weight of this nice level.
    pub fn weight(self) -> u32 {
        PRIO_TO_WEIGHT[(self.0 + 20) as usize]
    }

    /// The nice level whose weight best approximates `share` of a core when
    /// competing against `other_weight_total` (the summed weight of the
    /// other tasks on the core).
    ///
    /// Solves `w / (w + other) ≈ share` for `w` and picks the closest table
    /// entry. A `share ≥ 1` maps to nice −20; `share ≤ 0` to nice 19.
    pub fn for_share(share: f64, other_weight_total: u32) -> Nice {
        if share >= 1.0 {
            return Nice::MIN;
        }
        if share <= 0.0 {
            return Nice::MAX;
        }
        let target_w = share * other_weight_total as f64 / (1.0 - share);
        let mut best = Nice::DEFAULT;
        let mut best_err = f64::INFINITY;
        for n in -20..=19_i8 {
            let nice = Nice(n);
            let err = (nice.weight() as f64 - target_w).abs();
            if err < best_err {
                best_err = err;
                best = nice;
            }
        }
        best
    }

    /// The nice level whose CFS weight is closest to `weight`.
    ///
    /// The natural way to realise a vector of target shares: scale them to
    /// weights (any common factor works — CFS only sees ratios) and map
    /// each through the table.
    pub fn for_weight(weight: f64) -> Nice {
        let mut best = Nice::DEFAULT;
        let mut best_err = f64::INFINITY;
        for n in -20..=19_i8 {
            let nice = Nice(n);
            // Compare in log space: the table is geometric, and a 25%
            // overshoot is as bad as a 25% undershoot.
            let err = (nice.weight() as f64 / weight.max(1e-9)).ln().abs();
            if err < best_err {
                best_err = err;
                best = nice;
            }
        }
        best
    }

    /// The share of a core this level receives against `other_weight_total`.
    pub fn share_against(self, other_weight_total: u32) -> f64 {
        let w = self.weight() as f64;
        w / (w + other_weight_total as f64)
    }
}

impl Default for Nice {
    fn default() -> Self {
        Nice::DEFAULT
    }
}

impl fmt::Display for Nice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nice{:+}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_table_anchor_points() {
        assert_eq!(Nice::new(0).weight(), 1024);
        assert_eq!(Nice::new(-20).weight(), 88761);
        assert_eq!(Nice::new(19).weight(), 15);
        assert_eq!(Nice::new(1).weight(), 820);
    }

    #[test]
    fn each_step_changes_share_about_25_percent() {
        // The kernel designs the table so one nice step is ~1.25x weight.
        for n in -20..19_i8 {
            let r = Nice::new(n).weight() as f64 / Nice::new(n + 1).weight() as f64;
            assert!((1.15..=1.40).contains(&r), "step {n}: ratio {r}");
        }
    }

    #[test]
    fn construction_clamps() {
        assert_eq!(Nice::new(-100), Nice::MIN);
        assert_eq!(Nice::new(100), Nice::MAX);
    }

    #[test]
    fn for_share_inverts_share_against() {
        let other = 2048; // two nice-0 competitors
        for &target in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let n = Nice::for_share(target, other);
            let got = n.share_against(other);
            assert!(
                (got - target).abs() < 0.08,
                "target {target}: {n} gives {got}"
            );
        }
    }

    #[test]
    fn for_weight_preserves_ratios() {
        // Two tasks wanting a 3:1 split: the chosen weights must be within
        // one nice step (~25%) of that ratio.
        let a = Nice::for_weight(1536.0); // 2 * 1024 * 0.75
        let b = Nice::for_weight(512.0);
        let ratio = a.weight() as f64 / b.weight() as f64;
        assert!((2.3..=3.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn extreme_shares_saturate() {
        assert_eq!(Nice::for_share(1.5, 1024), Nice::MIN);
        assert_eq!(Nice::for_share(-0.1, 1024), Nice::MAX);
    }
}
