//! Run metrics: QoS misses, power/energy, migrations, and time-series traces.
//!
//! These implement the measurements behind the paper's evaluation figures:
//! "percentage of time the reference heart rate range of any task in the
//! workload is not met" (Figures 4 and 6), average power (Figure 5), and the
//! normalized heart-rate traces (Figures 7 and 8).

use ppm_platform::power::EnergyMeter;
use ppm_platform::units::{Joules, SimDuration, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_workload::task::TaskId;

/// Per-task QoS accounting.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    /// Time the observed heart rate was below the reference minimum
    /// (the paper's miss condition).
    pub time_below_range: SimDuration,
    /// Time the observed rate was outside the range on either side
    /// (the Figure 7 metric).
    pub time_out_of_range: SimDuration,
    /// Total observed time.
    pub observed: SimDuration,
    /// Energy attributed to this task: its dynamic consumption plus an
    /// equal split of its cluster's static power.
    pub energy: Joules,
}

impl TaskMetrics {
    /// Fraction of time below the reference range.
    pub fn miss_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            0.0
        } else {
            self.time_below_range.as_secs_f64() / self.observed.as_secs_f64()
        }
    }

    /// Fraction of time outside the range on either side.
    pub fn out_of_range_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            0.0
        } else {
            self.time_out_of_range.as_secs_f64() / self.observed.as_secs_f64()
        }
    }
}

/// One decimated trace sample (Figures 7/8 style).
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Sample time.
    pub at: SimTime,
    /// Instantaneous chip power.
    pub chip_power: Watts,
    /// Per-cluster V-F levels.
    pub levels: Vec<VfLevel>,
    /// Per-task normalized heart rate (1.0 = on target), keyed by task.
    pub normalized_heart_rate: Vec<(TaskId, f64)>,
}

/// Aggregated metrics for one simulation run.
///
/// All storage is dense and index-ordered (no `HashMap`s): iteration never
/// depends on hasher seeds, so printouts and traces are bit-identical
/// across runs, threads, and platforms.
#[derive(Debug, Default)]
pub struct RunMetrics {
    /// Dense per-task slots, indexed by task id (ids are admitted densely).
    per_task: Vec<TaskMetrics>,
    /// Whether the task at that index was ever observed.
    seen: Vec<bool>,
    /// Time during which at least one task was below its range.
    any_miss: SimDuration,
    /// Total accounted time.
    total: SimDuration,
    /// Chip-level energy/power integration.
    pub chip_energy: EnergyMeter,
    /// Per-cluster energy/power integration (indexed by cluster id).
    pub cluster_energy: Vec<EnergyMeter>,
    /// Intra-cluster migrations performed.
    pub migrations_intra: u64,
    /// Inter-cluster migrations performed.
    pub migrations_inter: u64,
    /// Completed V-F level transitions.
    pub vf_transitions: u64,
    /// Time spent above the TDP (for cap-enforcement checks).
    pub time_above_tdp: SimDuration,
    /// Per-cluster time spent at each V-F level, indexed by level
    /// (thermal-cycling analysis).
    level_residency: Vec<Vec<SimDuration>>,
    /// Graceful-degradation totals rolled up from the manager's live
    /// counters (no event-stream replay needed).
    pub degradation: Degradation,
    trace: Vec<TraceSample>,
}

/// Totals of the manager's graceful-degradation paths: how often it fell
/// back to a last-good sensor reading, re-issued a lost DVFS request or
/// migration, or skipped a task bound to a core it no longer knows.
///
/// Managers keep these as live counters (incremented exactly where the
/// corresponding `Event` is pushed) and report them through
/// [`PowerManager::degradation`](crate::executor::PowerManager::degradation);
/// the executor copies the latest value here every quantum, so a hardened
/// run's totals come for free — without replaying the event stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// Implausible sensor readings replaced by a last-good value.
    pub sensor_fallbacks: u64,
    /// DVFS requests re-issued because the hardware did not take them.
    pub dvfs_retries: u64,
    /// Migrations re-issued after a failed attempt.
    pub migration_retries: u64,
    /// Tasks observed on cores the policy could not place (skipped for
    /// the round rather than crashing).
    pub tasks_orphaned: u64,
}

impl Degradation {
    /// Sum of all degradation counters.
    pub fn total(&self) -> u64 {
        self.sensor_fallbacks + self.dvfs_retries + self.migration_retries + self.tasks_orphaned
    }
}

impl RunMetrics {
    /// Fresh metrics for a chip with `clusters` clusters.
    pub fn new(clusters: usize) -> RunMetrics {
        RunMetrics {
            cluster_energy: (0..clusters).map(|_| EnergyMeter::new()).collect(),
            level_residency: (0..clusters).map(|_| Vec::new()).collect(),
            ..RunMetrics::default()
        }
    }

    /// Pre-size the dense per-task and residency storage so steady-state
    /// recording never reallocates (the executor calls this on admission).
    pub fn reserve(&mut self, tasks: usize, levels_per_cluster: usize) {
        if self.per_task.len() < tasks {
            self.per_task.resize_with(tasks, TaskMetrics::default);
            self.seen.resize(tasks, false);
        }
        for res in &mut self.level_residency {
            if res.len() < levels_per_cluster {
                res.resize(levels_per_cluster, SimDuration::ZERO);
            }
        }
    }

    /// Dense slot for `task`, growing storage on first sight.
    fn slot(&mut self, task: TaskId) -> &mut TaskMetrics {
        if self.per_task.len() <= task.0 {
            self.per_task.resize_with(task.0 + 1, TaskMetrics::default);
            self.seen.resize(task.0 + 1, false);
        }
        self.seen[task.0] = true;
        &mut self.per_task[task.0]
    }

    /// Account one quantum of residency at `level` for `cluster`.
    pub fn record_residency(&mut self, cluster: usize, level: usize, dt: SimDuration) {
        if let Some(res) = self.level_residency.get_mut(cluster) {
            if res.len() <= level {
                res.resize(level + 1, SimDuration::ZERO);
            }
            res[level] += dt;
        }
    }

    /// Time `cluster` spent at each level, indexed by level (levels the
    /// cluster never visited read as zero).
    pub fn level_residency(&self, cluster: usize) -> &[SimDuration] {
        &self.level_residency[cluster]
    }

    /// Account one quantum for one task.
    pub fn record_task(&mut self, task: TaskId, dt: SimDuration, below: bool, outside: bool) {
        let m = self.slot(task);
        m.observed += dt;
        if below {
            m.time_below_range += dt;
        }
        if outside {
            m.time_out_of_range += dt;
        }
    }

    /// Attribute energy consumed during one quantum to a task.
    pub fn record_task_energy(&mut self, task: TaskId, power: Watts, dt: SimDuration) {
        self.slot(task).energy += power.energy_over(dt);
    }

    /// Account one quantum at the system level.
    pub fn record_system(&mut self, dt: SimDuration, any_below: bool, above_tdp: bool) {
        self.total += dt;
        if any_below {
            self.any_miss += dt;
        }
        if above_tdp {
            self.time_above_tdp += dt;
        }
    }

    /// Per-task metrics, if the task was ever observed.
    pub fn task(&self, task: TaskId) -> Option<&TaskMetrics> {
        self.seen
            .get(task.0)
            .copied()
            .unwrap_or(false)
            .then(|| &self.per_task[task.0])
    }

    /// The Figure 4/6 metric: fraction of time *any* task missed its range.
    pub fn any_miss_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.any_miss.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Average chip power over the run (Figure 5 metric).
    pub fn average_power(&self) -> Watts {
        self.chip_energy.average_power()
    }

    /// Total accounted time.
    pub fn total_time(&self) -> SimDuration {
        self.total
    }

    /// Append a trace sample.
    pub fn push_trace(&mut self, sample: TraceSample) {
        self.trace.push(sample);
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[TraceSample] {
        &self.trace
    }

    /// All tasks seen, sorted by id.
    pub fn tasks(&self) -> Vec<TaskId> {
        self.seen
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| TaskId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_compute_from_durations() {
        let mut m = RunMetrics::new(2);
        let dt = SimDuration::from_millis(10);
        for i in 0..100 {
            let below = i < 25;
            m.record_task(TaskId(0), dt, below, below);
            m.record_system(dt, below, false);
        }
        let t = m.task(TaskId(0)).expect("recorded");
        assert!((t.miss_fraction() - 0.25).abs() < 1e-9);
        assert!((m.any_miss_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_includes_both_sides() {
        let mut m = RunMetrics::new(1);
        let dt = SimDuration::from_millis(10);
        m.record_task(TaskId(1), dt, true, true); // below
        m.record_task(TaskId(1), dt, false, true); // above
        m.record_task(TaskId(1), dt, false, false); // in range
        let t = m.task(TaskId(1)).expect("recorded");
        assert!((t.miss_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((t.out_of_range_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::new(0);
        assert_eq!(m.any_miss_fraction(), 0.0);
        assert_eq!(m.average_power(), Watts::ZERO);
        assert!(m.task(TaskId(0)).is_none());
        assert!(m.tasks().is_empty());
    }

    #[test]
    fn tdp_violation_time_accumulates() {
        let mut m = RunMetrics::new(1);
        m.record_system(SimDuration::from_millis(5), false, true);
        m.record_system(SimDuration::from_millis(5), false, false);
        assert_eq!(m.time_above_tdp, SimDuration::from_millis(5));
    }
}
