//! Run metrics: QoS misses, power/energy, migrations, and time-series traces.
//!
//! These implement the measurements behind the paper's evaluation figures:
//! "percentage of time the reference heart rate range of any task in the
//! workload is not met" (Figures 4 and 6), average power (Figure 5), and the
//! normalized heart-rate traces (Figures 7 and 8).

use std::collections::HashMap;

use ppm_platform::power::EnergyMeter;
use ppm_platform::units::{Joules, SimDuration, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_workload::task::TaskId;

/// Per-task QoS accounting.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    /// Time the observed heart rate was below the reference minimum
    /// (the paper's miss condition).
    pub time_below_range: SimDuration,
    /// Time the observed rate was outside the range on either side
    /// (the Figure 7 metric).
    pub time_out_of_range: SimDuration,
    /// Total observed time.
    pub observed: SimDuration,
    /// Energy attributed to this task: its dynamic consumption plus an
    /// equal split of its cluster's static power.
    pub energy: Joules,
}

impl TaskMetrics {
    /// Fraction of time below the reference range.
    pub fn miss_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            0.0
        } else {
            self.time_below_range.as_secs_f64() / self.observed.as_secs_f64()
        }
    }

    /// Fraction of time outside the range on either side.
    pub fn out_of_range_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            0.0
        } else {
            self.time_out_of_range.as_secs_f64() / self.observed.as_secs_f64()
        }
    }
}

/// One decimated trace sample (Figures 7/8 style).
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Sample time.
    pub at: SimTime,
    /// Instantaneous chip power.
    pub chip_power: Watts,
    /// Per-cluster V-F levels.
    pub levels: Vec<VfLevel>,
    /// Per-task normalized heart rate (1.0 = on target), keyed by task.
    pub normalized_heart_rate: Vec<(TaskId, f64)>,
}

/// Aggregated metrics for one simulation run.
#[derive(Debug, Default)]
pub struct RunMetrics {
    per_task: HashMap<TaskId, TaskMetrics>,
    /// Time during which at least one task was below its range.
    any_miss: SimDuration,
    /// Total accounted time.
    total: SimDuration,
    /// Chip-level energy/power integration.
    pub chip_energy: EnergyMeter,
    /// Per-cluster energy/power integration (indexed by cluster id).
    pub cluster_energy: Vec<EnergyMeter>,
    /// Intra-cluster migrations performed.
    pub migrations_intra: u64,
    /// Inter-cluster migrations performed.
    pub migrations_inter: u64,
    /// Completed V-F level transitions.
    pub vf_transitions: u64,
    /// Time spent above the TDP (for cap-enforcement checks).
    pub time_above_tdp: SimDuration,
    /// Per-cluster time spent at each V-F level (thermal-cycling analysis).
    level_residency: Vec<HashMap<usize, SimDuration>>,
    trace: Vec<TraceSample>,
}

impl RunMetrics {
    /// Fresh metrics for a chip with `clusters` clusters.
    pub fn new(clusters: usize) -> RunMetrics {
        RunMetrics {
            cluster_energy: (0..clusters).map(|_| EnergyMeter::new()).collect(),
            level_residency: (0..clusters).map(|_| HashMap::new()).collect(),
            ..RunMetrics::default()
        }
    }

    /// Account one quantum of residency at `level` for `cluster`.
    pub fn record_residency(&mut self, cluster: usize, level: usize, dt: SimDuration) {
        if let Some(map) = self.level_residency.get_mut(cluster) {
            *map.entry(level).or_insert(SimDuration::ZERO) += dt;
        }
    }

    /// Time `cluster` spent at each level, keyed by level index.
    pub fn level_residency(&self, cluster: usize) -> &HashMap<usize, SimDuration> {
        &self.level_residency[cluster]
    }

    /// Account one quantum for one task.
    pub fn record_task(&mut self, task: TaskId, dt: SimDuration, below: bool, outside: bool) {
        let m = self.per_task.entry(task).or_default();
        m.observed += dt;
        if below {
            m.time_below_range += dt;
        }
        if outside {
            m.time_out_of_range += dt;
        }
    }

    /// Attribute energy consumed during one quantum to a task.
    pub fn record_task_energy(&mut self, task: TaskId, power: Watts, dt: SimDuration) {
        self.per_task.entry(task).or_default().energy += power.energy_over(dt);
    }

    /// Account one quantum at the system level.
    pub fn record_system(&mut self, dt: SimDuration, any_below: bool, above_tdp: bool) {
        self.total += dt;
        if any_below {
            self.any_miss += dt;
        }
        if above_tdp {
            self.time_above_tdp += dt;
        }
    }

    /// Per-task metrics, if the task was ever observed.
    pub fn task(&self, task: TaskId) -> Option<&TaskMetrics> {
        self.per_task.get(&task)
    }

    /// The Figure 4/6 metric: fraction of time *any* task missed its range.
    pub fn any_miss_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.any_miss.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Average chip power over the run (Figure 5 metric).
    pub fn average_power(&self) -> Watts {
        self.chip_energy.average_power()
    }

    /// Total accounted time.
    pub fn total_time(&self) -> SimDuration {
        self.total
    }

    /// Append a trace sample.
    pub fn push_trace(&mut self, sample: TraceSample) {
        self.trace.push(sample);
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[TraceSample] {
        &self.trace
    }

    /// All tasks seen, sorted by id.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = self.per_task.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_compute_from_durations() {
        let mut m = RunMetrics::new(2);
        let dt = SimDuration::from_millis(10);
        for i in 0..100 {
            let below = i < 25;
            m.record_task(TaskId(0), dt, below, below);
            m.record_system(dt, below, false);
        }
        let t = m.task(TaskId(0)).expect("recorded");
        assert!((t.miss_fraction() - 0.25).abs() < 1e-9);
        assert!((m.any_miss_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_includes_both_sides() {
        let mut m = RunMetrics::new(1);
        let dt = SimDuration::from_millis(10);
        m.record_task(TaskId(1), dt, true, true); // below
        m.record_task(TaskId(1), dt, false, true); // above
        m.record_task(TaskId(1), dt, false, false); // in range
        let t = m.task(TaskId(1)).expect("recorded");
        assert!((t.miss_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((t.out_of_range_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::new(0);
        assert_eq!(m.any_miss_fraction(), 0.0);
        assert_eq!(m.average_power(), Watts::ZERO);
        assert!(m.task(TaskId(0)).is_none());
        assert!(m.tasks().is_empty());
    }

    #[test]
    fn tdp_violation_time_accumulates() {
        let mut m = RunMetrics::new(1);
        m.record_system(SimDuration::from_millis(5), false, true);
        m.record_system(SimDuration::from_millis(5), false, false);
        assert_eq!(m.time_above_tdp, SimDuration::from_millis(5));
    }
}
