//! The simulation executor: dispatches cycles to tasks, integrates power,
//! applies migrations with their latency, and drives a [`PowerManager`].
//!
//! The executor is the stand-in for "the rest of Linux" in the paper's
//! setup: it provides run queues, affinity-based migration, sensors, and a
//! periodic hook where a power-management policy (PPM, HPM, HL, …) observes
//! the system and actuates its knobs (shares/nice values, DVFS requests,
//! task migration, cluster gating).

use std::time::Instant;

use ppm_obs::{lap, Phase, Telemetry};
use ppm_platform::chip::Chip;
use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::faults::{ActuationOutcome, FaultPlan};
use ppm_platform::thermal::{Celsius, ThermalModel};
use ppm_platform::units::{ProcessingUnits, SimDuration, SimTime, Watts};
use ppm_platform::vf::VfLevel;
use ppm_workload::task::{Task, TaskId};

use crate::affinity::CpuMask;
use crate::audit::Auditor;
use crate::metrics::{Degradation, RunMetrics, TraceSample};
use crate::nice::Nice;
use crate::pelt::PeltTracker;
use crate::plan::{Action, ActuationPlan, Tape};
use crate::runqueue::{fair_allocate_into, market_allocate_into, AllocScratch, Claimant};
use crate::snapshot::SystemSnapshot;

/// How a core's supply is divided among its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Explicit PU shares set by the manager (the market's `s_t`), as the
    /// paper realises through nice-value manipulation.
    Market,
    /// CFS weighted fair sharing from nice values.
    FairWeights,
}

/// Per-task dynamic state tracked by the executor.
#[derive(Debug)]
struct TaskEntry {
    task: Task,
    core: CoreId,
    share: ProcessingUnits,
    nice: Nice,
    affinity: CpuMask,
    stalled_until: SimTime,
    pelt: PeltTracker,
    granted: ProcessingUnits,
    active: bool,
}

/// Reused buffers for [`System::step`]: once capacities have warmed up, a
/// steady-state quantum performs no heap allocation.
#[derive(Debug, Default)]
struct StepScratch {
    /// Per-cluster true (noise-free) power for the quantum.
    power: Vec<Watts>,
    /// Runnable task ids on the core being processed.
    ids: Vec<TaskId>,
    /// Their allocation claims, index-aligned with `ids`.
    claims: Vec<Claimant>,
    /// Their grants, index-aligned with `ids`.
    grants: Vec<ProcessingUnits>,
    /// Per-core utilizations of the cluster being processed.
    utils: Vec<f64>,
    /// Tasks resident on the cluster being processed (static-power split).
    cluster_tasks: Vec<TaskId>,
    /// Water-filling scratch for [`fair_allocate_into`].
    alloc: AllocScratch,
}

/// The simulated system: chip + tasks + sensors, with the actuator surface a
/// power manager uses.
#[derive(Debug)]
pub struct System {
    chip: Chip,
    entries: Vec<TaskEntry>,
    policy: AllocationPolicy,
    now: SimTime,
    last_chip_power: Watts,
    last_cluster_power: Vec<Watts>,
    core_utilization: Vec<f64>,
    metrics: RunMetrics,
    /// TDP used for violation accounting in metrics (policy enforcement is
    /// the manager's job).
    tdp: Option<Watts>,
    /// Optional lumped thermal model, stepped with the cluster powers.
    thermal: Option<ThermalModel>,
    /// Relative power-sensor noise amplitude (0 = ideal sensors).
    sensor_noise: f64,
    /// Deterministic xorshift state for the sensor noise.
    noise_state: u64,
    scratch: StepScratch,
}

impl System {
    /// Build a system around `chip` with the given allocation policy.
    pub fn new(chip: Chip, policy: AllocationPolicy) -> System {
        let clusters = chip.clusters().len();
        let cores = chip.cores().len();
        System {
            chip,
            entries: Vec::new(),
            policy,
            now: SimTime::ZERO,
            last_chip_power: Watts::ZERO,
            last_cluster_power: vec![Watts::ZERO; clusters],
            core_utilization: vec![0.0; cores],
            metrics: RunMetrics::new(clusters),
            tdp: None,
            thermal: None,
            sensor_noise: 0.0,
            noise_state: 0x9E3779B97F4A7C15,
            scratch: StepScratch::default(),
        }
    }

    /// Inject multiplicative noise into the power sensors: each reading is
    /// scaled by a deterministic pseudo-random factor in
    /// `[1−amplitude, 1+amplitude]`. Real `hwmon` sensors are noisy; a
    /// robust manager must not thrash on it. Energy metering (the physics)
    /// stays exact — only the *readings* managers see are perturbed.
    ///
    /// # Panics
    ///
    /// Panics for amplitudes outside `[0, 0.5]`.
    pub fn set_sensor_noise(&mut self, amplitude: f64) {
        assert!((0.0..=0.5).contains(&amplitude), "amplitude in [0, 0.5]");
        self.sensor_noise = amplitude;
    }

    /// Next deterministic noise factor in `[1−a, 1+a]`.
    fn noise_factor(&mut self) -> f64 {
        if self.sensor_noise == 0.0 {
            return 1.0;
        }
        let mut x = self.noise_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.noise_state = x;
        let unit = (x % 10_000) as f64 / 10_000.0; // [0, 1)
        1.0 + self.sensor_noise * (2.0 * unit - 1.0)
    }

    /// Attach a thermal model (one node per cluster).
    ///
    /// # Panics
    ///
    /// Panics when the node count differs from the cluster count.
    pub fn attach_thermal(&mut self, model: ThermalModel) {
        assert_eq!(
            model.len(),
            self.chip.clusters().len(),
            "one thermal node per cluster"
        );
        self.thermal = Some(model);
    }

    /// The thermal model, if attached.
    pub fn thermal(&self) -> Option<&ThermalModel> {
        self.thermal.as_ref()
    }

    /// Temperature of `cluster`, if a thermal model is attached.
    pub fn cluster_temperature(&self, cluster: ClusterId) -> Option<Celsius> {
        self.thermal.as_ref().map(|t| t.temperature(cluster))
    }

    /// The TDP used for violation accounting, when set.
    pub fn tdp(&self) -> Option<Watts> {
        self.tdp
    }

    /// Record TDP violations against `tdp` in the metrics.
    pub fn set_tdp_accounting(&mut self, tdp: Watts) {
        self.tdp = Some(tdp);
    }

    /// Admit `task` on `core`.
    ///
    /// # Panics
    ///
    /// Panics unless task ids are admitted densely (task N is the (N+1)-th
    /// admission) and `core` exists.
    pub fn add_task(&mut self, task: Task, core: CoreId) {
        assert_eq!(
            task.id().0,
            self.entries.len(),
            "tasks must be admitted with dense ids"
        );
        assert!(core.0 < self.chip.cores().len(), "no such core");
        self.entries.push(TaskEntry {
            task,
            core,
            share: ProcessingUnits::ZERO,
            nice: Nice::DEFAULT,
            affinity: CpuMask::all(),
            stalled_until: SimTime::ZERO,
            pelt: PeltTracker::new(),
            granted: ProcessingUnits::ZERO,
            active: true,
        });
        // Pre-size metric storage so steady-state recording never grows it.
        let levels = self
            .chip
            .clusters()
            .iter()
            .map(|c| c.table().len())
            .max()
            .unwrap_or(0);
        self.metrics.reserve(self.entries.len(), levels);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The chip (topology, V-F state, models).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The allocation policy in force.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Change the allocation policy (managers set this in `init`).
    pub fn set_policy(&mut self, policy: AllocationPolicy) {
        self.policy = policy;
    }

    /// Ids of all *active* tasks (departed tasks are excluded).
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.active)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Ids of all *active* tasks in ascending order, without allocating
    /// (the hot-path counterpart of [`System::task_ids`]).
    pub fn task_iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.active)
            .map(|(i, _)| TaskId(i))
    }

    /// True while the task is admitted and has not exited.
    pub fn is_active(&self, id: TaskId) -> bool {
        self.entries.get(id.0).is_some_and(|e| e.active)
    }

    /// Remove a task from the system (task exit). The id stays allocated —
    /// ids are dense and stable — but the task no longer runs, competes for
    /// supply, or contributes to metrics.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted.
    pub fn remove_task(&mut self, id: TaskId) {
        let e = &mut self.entries[id.0];
        e.active = false;
        e.share = ProcessingUnits::ZERO;
        e.granted = ProcessingUnits::ZERO;
    }

    /// Number of admitted tasks.
    pub fn task_count(&self) -> usize {
        self.entries.len()
    }

    /// Read access to a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.entries[id.0].task
    }

    /// The core a task is mapped to (`c_t`).
    pub fn core_of(&self, id: TaskId) -> CoreId {
        self.entries[id.0].core
    }

    /// Tasks currently mapped to `core` (`T_c`).
    pub fn tasks_on(&self, core: CoreId) -> Vec<TaskId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.core == core && e.active)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Tasks mapped to any core of `cluster` (`T_v`).
    pub fn tasks_on_cluster(&self, cluster: ClusterId) -> Vec<TaskId> {
        let cores = self.chip.cores_of(cluster).to_vec();
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.active && cores.contains(&e.core))
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Whether any active task is mapped to a core of `cluster`, without
    /// materialising the task list (hot-path form of `tasks_on_cluster`).
    pub fn cluster_has_tasks(&self, cluster: ClusterId) -> bool {
        self.entries
            .iter()
            .any(|e| e.active && self.chip.core(e.core).cluster() == cluster)
    }

    /// Set a task's explicit PU share (Market policy).
    pub fn set_share(&mut self, id: TaskId, share: ProcessingUnits) {
        self.entries[id.0].share = share.max(ProcessingUnits::ZERO);
    }

    /// A task's current explicit share.
    pub fn share_of(&self, id: TaskId) -> ProcessingUnits {
        self.entries[id.0].share
    }

    /// Set a task's nice value (FairWeights policy).
    pub fn set_nice(&mut self, id: TaskId, nice: Nice) {
        self.entries[id.0].nice = nice;
    }

    /// A task's nice value.
    pub fn nice_of(&self, id: TaskId) -> Nice {
        self.entries[id.0].nice
    }

    /// PU supply granted to the task in the last quantum — the `s_t` a task
    /// agent observes.
    pub fn granted(&self, id: TaskId) -> ProcessingUnits {
        self.entries[id.0].granted
    }

    /// The task's PELT load average.
    pub fn pelt_load(&self, id: TaskId) -> f64 {
        self.entries[id.0].pelt.load()
    }

    /// True while the task is paying a migration penalty.
    pub fn is_stalled(&self, id: TaskId) -> bool {
        self.entries[id.0].stalled_until > self.now
    }

    /// Set a task's CPU affinity (`sched_setaffinity`). The mask restricts
    /// future migrations; the task is not moved if its current core becomes
    /// disallowed (as on Linux, where the next balance pass handles it —
    /// here the manager's).
    pub fn set_affinity(&mut self, id: TaskId, mask: CpuMask) {
        self.entries[id.0].affinity = mask;
    }

    /// A task's affinity mask.
    pub fn affinity_of(&self, id: TaskId) -> &CpuMask {
        &self.entries[id.0].affinity
    }

    /// True when the task's affinity allows `core`.
    pub fn can_run_on(&self, id: TaskId, core: CoreId) -> bool {
        self.entries[id.0].affinity.contains(core)
    }

    /// Migrate `id` to `core`, paying the platform's migration latency
    /// (§5.1). Returns the stall applied, or `None` for a no-op (already
    /// there, or forbidden by the task's affinity mask).
    pub fn migrate(&mut self, id: TaskId, core: CoreId) -> Option<SimDuration> {
        let from_core = self.entries[id.0].core;
        if from_core == core || !self.entries[id.0].affinity.contains(core) {
            return None;
        }
        assert!(core.0 < self.chip.cores().len(), "no such core");
        let from = self.chip.cluster_of(from_core);
        let to = self.chip.cluster_of(core);
        let cost = self.chip.migration_model().cost(from, to);
        if from.id() == to.id() {
            self.metrics.migrations_intra += 1;
        } else {
            self.metrics.migrations_inter += 1;
        }
        let e = &mut self.entries[id.0];
        e.core = core;
        e.stalled_until = self.now + cost;
        e.task.reset_monitor_window();
        Some(cost)
    }

    /// Ask a cluster regulator for `level`. Returns whether a transition was
    /// started.
    pub fn request_level(&mut self, cluster: ClusterId, level: VfLevel) -> bool {
        let now = self.now;
        self.chip.cluster_mut(cluster).request_level(level, now)
    }

    /// Power a cluster down (manager must migrate tasks away first, or they
    /// starve, as on real hardware).
    pub fn power_off(&mut self, cluster: ClusterId) {
        self.chip.cluster_mut(cluster).power_off();
    }

    /// Power a cluster back up at its lowest level.
    pub fn power_on(&mut self, cluster: ClusterId) {
        self.chip.cluster_mut(cluster).power_on();
    }

    /// Last sampled chip power (the paper's chip-agent sensor `W`).
    pub fn chip_power(&self) -> Watts {
        self.last_chip_power
    }

    /// Last sampled power of `cluster` (`W_v`).
    pub fn cluster_power(&self, cluster: ClusterId) -> Watts {
        self.last_cluster_power[cluster.0]
    }

    /// Last quantum's utilization of `core` in `[0, 1]`.
    pub fn core_utilization(&self, core: CoreId) -> f64 {
        self.core_utilization[core.0]
    }

    /// Accumulated run metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the system, yielding its metrics (post-run analysis).
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Advance the world by one quantum `dt`: complete DVFS transitions,
    /// allocate each core's supply, execute tasks, integrate power, account
    /// metrics. `record` controls whether QoS/power metrics accumulate
    /// (false during warm-up).
    fn step(&mut self, dt: SimDuration, record: bool) {
        let end = self.now + dt;

        // 1. Regulators settle.
        for c in self.chip.clusters_mut() {
            if c.tick(end).is_some() {
                self.metrics.vf_transitions += 1;
            }
        }
        if record {
            for (ci, c) in self.chip.clusters().iter().enumerate() {
                if !c.is_off() {
                    self.metrics.record_residency(ci, c.level().0, dt);
                }
            }
        }

        // 2. Allocate and execute per core. All working sets live in
        // `self.scratch` — the steady state allocates nothing.
        let now = self.now;
        let n_clusters = self.chip.clusters().len();
        self.scratch.power.clear();
        self.scratch.power.resize(n_clusters, Watts::ZERO);
        for ci in 0..n_clusters {
            let cluster_id = ClusterId(ci);
            let class = self.chip.cluster(cluster_id).class();
            let supply = self.chip.cluster(cluster_id).supply_per_core();
            self.scratch.utils.clear();
            let mut cluster_dynamic = 0.0_f64;
            self.scratch.cluster_tasks.clear();
            let cores = self.chip.cores_of(cluster_id);
            for &core in cores {
                self.scratch.ids.clear();
                self.scratch.ids.extend(
                    self.entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.core == core && e.active && e.stalled_until <= now)
                        .map(|(i, _)| TaskId(i)),
                );
                self.scratch.claims.clear();
                self.scratch
                    .claims
                    .extend(self.scratch.ids.iter().map(|&id| {
                        let e = &self.entries[id.0];
                        Claimant {
                            task: id,
                            weight: e.nice.weight(),
                            share: e.share,
                            cap: e.task.consumption_cap(class, supply),
                        }
                    }));
                match self.policy {
                    AllocationPolicy::Market => {
                        market_allocate_into(supply, &self.scratch.claims, &mut self.scratch.grants)
                    }
                    AllocationPolicy::FairWeights => fair_allocate_into(
                        supply,
                        &self.scratch.claims,
                        &mut self.scratch.alloc,
                        &mut self.scratch.grants,
                    ),
                }
                let mut used = ProcessingUnits::ZERO;
                // Energy attribution: dynamic watts follow consumption
                // (C_dyn·V² per PU consumed); the cluster's static power is
                // split equally among its resident tasks after the cluster
                // power is known.
                let point = self.chip.cluster(cluster_id).point();
                let watts_per_pu = self.chip.power_model().params(class).dynamic_coeff
                    * point.voltage.volts().powi(2);
                for k in 0..self.scratch.ids.len() {
                    let id = self.scratch.ids[k];
                    let grant = self.scratch.grants[k];
                    let e = &mut self.entries[id.0];
                    e.granted = grant;
                    e.task.execute(grant.cycles_over(dt), class, end);
                    used += grant;
                    if record {
                        self.metrics.record_task_energy(
                            id,
                            Watts(watts_per_pu * grant.value()),
                            dt,
                        );
                        cluster_dynamic += watts_per_pu * grant.value();
                        self.scratch.cluster_tasks.push(id);
                    }
                    // PELT: a task that could consume more than it was
                    // granted stays runnable the whole quantum.
                    let e = &mut self.entries[id.0];
                    let runnable = if grant.is_positive() {
                        1.0_f64.min(e.task.utilization_cap())
                    } else {
                        e.task.utilization_cap().min(1.0)
                    };
                    e.pelt.update(dt, runnable);
                }
                let util = if supply.is_positive() {
                    (used / supply).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                self.core_utilization[core.0] = util;
                self.scratch.utils.push(util);
            }
            let power = self
                .chip
                .power_model()
                .cluster_power(self.chip.cluster(cluster_id), &self.scratch.utils);
            // Static remainder (uncore + leakage) split equally among the
            // cluster's resident tasks.
            if record && !self.scratch.cluster_tasks.is_empty() {
                let static_share = (power.value() - cluster_dynamic).max(0.0)
                    / self.scratch.cluster_tasks.len() as f64;
                for k in 0..self.scratch.cluster_tasks.len() {
                    let id = self.scratch.cluster_tasks[k];
                    self.metrics.record_task_energy(id, Watts(static_share), dt);
                }
            }
            self.scratch.power[ci] = power;
        }
        // Stalled tasks make no progress but time passes for them. One pass
        // over the entries: the per-entry effects touch only that entry, so
        // they are independent of cluster processing order.
        for e in self.entries.iter_mut() {
            if e.active && e.stalled_until > now {
                e.granted = ProcessingUnits::ZERO;
                e.task.record_idle(end);
                e.pelt.update(dt, 1.0); // still runnable, just not running
            }
        }

        // 3. Power sensors, meters, and the thermal model.
        let chip_power: Watts = self.scratch.power.iter().copied().sum();
        // Managers read (possibly noisy) sensors; physics stays exact.
        let nf = self.noise_factor();
        self.last_chip_power = chip_power * nf;
        if let Some(thermal) = &mut self.thermal {
            thermal.step(&self.scratch.power, dt);
        }
        for ci in 0..n_clusters {
            let p = self.scratch.power[ci];
            let nf = self.noise_factor();
            self.last_cluster_power[ci] = p * nf;
        }
        if record {
            self.metrics.chip_energy.record(chip_power, dt);
            for ci in 0..n_clusters {
                let p = self.scratch.power[ci];
                self.metrics.cluster_energy[ci].record(p, dt);
            }

            // 4. QoS accounting.
            let mut any_below = false;
            for i in 0..self.entries.len() {
                let e = &self.entries[i];
                if !e.active {
                    continue;
                }
                let hr = e.task.heart_rate();
                let range = e.task.spec().target_range();
                // Open-loop tasks miss on their p99-vs-SLO signal (for them
                // "outside" and "below" coincide: only too-slow is a QoS
                // breach); closed-loop tasks keep heart-rate semantics, and
                // `misses_qos` is exactly `misses_below` for them.
                let below = e.task.misses_qos();
                let outside = if e.task.open_loop().is_some() {
                    below
                } else {
                    !range.contains(hr)
                };
                any_below |= below;
                self.metrics.record_task(TaskId(i), dt, below, outside);
            }
            let above_tdp = self.tdp.is_some_and(|t| chip_power > t);
            self.metrics.record_system(dt, any_below, above_tdp);
        }

        self.now = end;
    }

    /// Validate and apply a manager's plan, action by action, in plan order.
    /// This is the only place manager decisions reach the system; each action
    /// keeps the exact semantics of the corresponding `System` method
    /// (migrations pay their latency or no-op on affinity, DVFS requests go
    /// through the regulator, shares clamp at zero).
    ///
    /// # Panics
    ///
    /// Panics when an action names a task, core, or cluster that was never
    /// admitted / does not exist — a manager bug, surfaced loudly.
    pub fn apply_plan(&mut self, plan: &ActuationPlan) {
        for &op in plan.ops() {
            match op {
                Action::SetShare(task, share) => {
                    // No-op recognition: `set_share` clamps at zero and then
                    // overwrites the entry field, so a command whose clamped
                    // value is bitwise-equal to the current share changes
                    // nothing. The plan (and hence the tape, which records
                    // the plan before application) is untouched either way.
                    let next = share.max(ProcessingUnits::ZERO);
                    if self.entries[task.0].share.0.to_bits() != next.0.to_bits() {
                        self.set_share(task, share);
                    }
                }
                Action::SetNice(task, nice) => self.set_nice(task, nice),
                Action::RequestLevel(cluster, level) => {
                    // No-op recognition: `Cluster::request_level` returns
                    // without side effects when the effective target already
                    // matches, so skipping the delegation is bit-identical.
                    if self.chip.clusters()[cluster.0].effective_target() != level {
                        self.request_level(cluster, level);
                    }
                }
                Action::Migrate(task, core) => {
                    self.migrate(task, core);
                }
                Action::PowerOn(cluster) => self.power_on(cluster),
                Action::PowerOff(cluster) => self.power_off(cluster),
            }
        }
    }

    /// Capture a trace sample of the current state.
    fn sample_trace(&mut self) {
        let levels = self.chip.clusters().iter().map(|c| c.level()).collect();
        let nhr = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.active)
            .map(|(i, e)| (TaskId(i), e.task.normalized_heart_rate()))
            .collect();
        let sample = TraceSample {
            at: self.now,
            chip_power: self.last_chip_power,
            levels,
            normalized_heart_rate: nhr,
        };
        self.metrics.push_trace(sample);
    }
}

/// A chip's bid into a fleet-level power-budget exchange: the §3.2 money
/// machinery one level up. A chip that converts watts into heart-rate well
/// has high equilibrium PU prices relative to its power draw; the exchange
/// routes budget toward such chips (see `ppm-fleet`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetBid {
    /// Marginal utility: the chip market's equilibrium price mass per
    /// observed watt (heart-rate value a marginal watt buys here).
    pub value_per_watt: f64,
    /// The chip's last observed power draw (its sensor `W`).
    pub power: Watts,
    /// The power the chip would like next epoch: its draw scaled by the
    /// market's demand/supply imbalance (a starved chip asks for more, a
    /// sated one for less).
    pub desired: Watts,
}

/// A power-management policy plugged into the executor.
///
/// The boundary is *snapshot-in / plan-out*: once per quantum, *before* the
/// quantum executes, the policy reads an immutable [`SystemSnapshot`] (the
/// sensors' last readings — the same position the paper's kernel-module
/// agents occupy relative to the scheduler tick) and appends [`Action`]s to
/// an [`ActuationPlan`]. The executor validates and applies the plan in one
/// place ([`System::apply_plan`]), and can tape `(snapshot digest, plan)`
/// pairs for replay and golden-diffing.
pub trait PowerManager {
    /// Short policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// One-time setup: choose the allocation policy, set initial shares /
    /// affinities. This is the only hook with mutable system access.
    fn init(&mut self, _sys: &mut System) {}

    /// Observe the snapshot and queue actuations for this quantum. To read
    /// your own queued-but-unapplied decisions (e.g. a share set earlier in
    /// this same invocation), use the plan's overlay queries.
    fn plan(&mut self, snap: &SystemSnapshot, dt: SimDuration, plan: &mut ActuationPlan);

    /// Like [`PowerManager::plan`], but with a profiler to report wall-time
    /// sub-phase spans into ([`Phase::MarketBid`](ppm_obs::Phase),
    /// `MarketPrice`, `MarketDvfs`, `Lbt`). Called instead of `plan` when
    /// the simulation profiles; timing must be observation-only — the plan
    /// produced must be byte-identical to what `plan` would produce. The
    /// default ignores the profiler.
    fn plan_profiled(
        &mut self,
        snap: &SystemSnapshot,
        dt: SimDuration,
        plan: &mut ActuationPlan,
        _prof: &mut ppm_obs::PhaseProfiler,
    ) {
        self.plan(snap, dt, plan);
    }

    /// Report the policy-side market state (allowance, money supply,
    /// discovered per-core prices) into a telemetry row. Called once per
    /// quantum when telemetry is attached; managers without a market keep
    /// the default no-op (the sample stays `NaN` and exports as empty).
    fn sample_policy(&self, _out: &mut ppm_obs::PolicySample) {}

    /// Live graceful-degradation counters (see
    /// [`Degradation`](crate::metrics::Degradation)). The executor copies
    /// this into [`RunMetrics::degradation`] every quantum; the default
    /// reports zeroes.
    fn degradation(&self) -> Degradation {
        Degradation::default()
    }

    /// Check policy-internal invariants (e.g. the market's money
    /// conservation) after a quantum, reporting breaches via
    /// [`Auditor::report`]. Called only when an auditor is attached; the
    /// default does nothing.
    fn audit(&mut self, _snap: &SystemSnapshot, _auditor: &mut Auditor) {}

    /// The chip's current [`FleetBid`] into a fleet-level power-budget
    /// exchange, derived from the policy's own equilibrium (for the PPM,
    /// its discovered per-core prices). Policies without a market keep the
    /// default `None`; the exchange treats them as floor-utility bidders.
    fn fleet_bid(&self) -> Option<FleetBid> {
        None
    }

    /// Adopt `tdp` as the chip power budget for the coming epoch (the
    /// fleet exchange's cleared allowance). Returns whether the policy
    /// adopted it; the default declines, leaving the budget untouched.
    fn set_power_budget(&mut self, _tdp: Watts) -> bool {
        false
    }
}

/// A no-op manager: fixed mapping, fixed (initial) frequencies, fair
/// sharing. Useful as an experimental control and in substrate tests.
#[derive(Debug, Default, Clone)]
pub struct NullManager;

impl PowerManager for NullManager {
    fn name(&self) -> &'static str {
        "none"
    }

    fn plan(&mut self, _snap: &SystemSnapshot, _dt: SimDuration, _plan: &mut ActuationPlan) {}
}

/// Simulation driver: owns the [`System`] and a manager, advances time in
/// fixed quanta, and optionally records decimated traces.
pub struct Simulation<M> {
    system: System,
    manager: M,
    quantum: SimDuration,
    warmup: SimDuration,
    trace_period: Option<SimDuration>,
    next_trace: SimTime,
    initialized: bool,
    /// Reused snapshot handed to the manager each quantum.
    snap: SystemSnapshot,
    /// Reused plan the manager fills each quantum.
    plan: ActuationPlan,
    /// Optional actuation tape (see [`Simulation::with_tape`]).
    tape: Option<Tape>,
    /// Optional fault injection (see [`Simulation::with_faults`]).
    faults: Option<FaultPlan>,
    /// Reused buffer for the post-fault subset of the plan.
    faulted: ActuationPlan,
    /// Optional invariant auditor (see [`Simulation::with_auditor`]).
    auditor: Option<Auditor>,
    /// Optional telemetry sink (see [`Simulation::with_telemetry`]). When
    /// `None`, every instrumentation site below is one branch on this
    /// option — the zero-overhead-off contract.
    telemetry: Option<Telemetry>,
    /// Optional incremental telemetry export (see
    /// [`Simulation::with_stream`]); pumped right after each recorded row.
    stream: Option<ppm_obs::TelemetryStream>,
}

impl<M: PowerManager> Simulation<M> {
    /// Default execution quantum (1 ms — the Linux scheduler tick at
    /// CONFIG_HZ=1000).
    pub const DEFAULT_QUANTUM: SimDuration = SimDuration(1000);

    /// Build a simulation.
    pub fn new(system: System, manager: M) -> Simulation<M> {
        Simulation {
            system,
            manager,
            quantum: Self::DEFAULT_QUANTUM,
            warmup: SimDuration::ZERO,
            trace_period: None,
            next_trace: SimTime::ZERO,
            initialized: false,
            snap: SystemSnapshot::new(),
            plan: ActuationPlan::new(),
            tape: None,
            faults: None,
            faulted: ActuationPlan::new(),
            auditor: None,
            telemetry: None,
            stream: None,
        }
    }

    /// Use a custom quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn with_quantum(mut self, quantum: SimDuration) -> Simulation<M> {
        assert!(!quantum.is_zero(), "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Exclude the first `warmup` of simulated time from QoS/power metrics
    /// (heart-rate windows need to fill before misses are meaningful).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Simulation<M> {
        self.warmup = warmup;
        self
    }

    /// Record a trace sample every `period`.
    pub fn with_trace(mut self, period: SimDuration) -> Simulation<M> {
        self.trace_period = Some(period);
        self
    }

    /// Record an actuation tape: one `(snapshot digest, plan)` record per
    /// quantum in which the manager queued at least one action. Two runs are
    /// behaviourally identical iff their tapes render to the same bytes.
    pub fn with_tape(mut self) -> Simulation<M> {
        self.tape = Some(Tape::new());
        self
    }

    /// Inject deterministic faults: observation faults perturb the snapshot
    /// the manager sees (the platform's true state is untouched), actuation
    /// faults drop or delay DVFS/migration commands between the tape and
    /// the hardware, and the plan may crash tasks mid-run. The tape keeps
    /// recording the manager's *intent*, so faulted runs stay replayable.
    pub fn with_faults(mut self, faults: FaultPlan) -> Simulation<M> {
        self.faults = Some(faults);
        self
    }

    /// Audit system invariants after every quantum (see [`Auditor`]).
    /// Violations accumulate in [`Simulation::auditor`]; nothing panics
    /// mid-run.
    pub fn with_auditor(mut self) -> Simulation<M> {
        self.auditor = Some(Auditor::new());
        self
    }

    /// Attach a telemetry sink: record one time-series row per quantum
    /// into its ring recorder and, when
    /// [`Telemetry::with_profiling`] is set, wall-clock phase spans into
    /// its histograms. Observation is strictly read-only — the actuation
    /// tape of a run is bit-identical with or without telemetry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Simulation<M> {
        self.telemetry = Some(telemetry);
        self
    }

    /// The telemetry sink, when attached.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Attach a telemetry sink in place — [`Simulation::with_telemetry`]
    /// for simulations already owned by a containing structure (a fleet
    /// chip, for instance).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Detach and return the telemetry sink (for exporting after a run).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    /// Stream the telemetry time-series to disk incrementally: after every
    /// recorded row the stream is pumped, and whole flush windows of rows
    /// leave the ring for the writer thread before wrap-around can claim
    /// them. Requires a telemetry sink to be attached (the stream reads its
    /// recorder); pair with [`Simulation::finish_stream`] after the run.
    pub fn with_stream(mut self, stream: ppm_obs::TelemetryStream) -> Simulation<M> {
        self.stream = Some(stream);
        self
    }

    /// Attach a telemetry stream in place — [`Simulation::with_stream`]
    /// for simulations already owned by a containing structure (a fleet
    /// chip's per-chip stream, for instance).
    pub fn set_stream(&mut self, stream: ppm_obs::TelemetryStream) {
        self.stream = Some(stream);
    }

    /// Flush the stream's unflushed tail, join its writer thread, and
    /// report totals. `None` when no stream was attached.
    pub fn finish_stream(&mut self) -> Option<std::io::Result<ppm_obs::StreamStats>> {
        let stream = self.stream.take()?;
        let tel = self.telemetry.as_ref()?;
        Some(stream.finish(&tel.recorder))
    }

    /// The actuation tape recorded so far, when enabled.
    pub fn tape(&self) -> Option<&Tape> {
        self.tape.as_ref()
    }

    /// The fault plan, when fault injection is enabled (for its stats).
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The auditor and everything it collected, when enabled.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.auditor.as_ref()
    }

    /// The system under simulation.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable system access (admit tasks, set initial conditions).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// The manager.
    pub fn manager(&self) -> &M {
        &self.manager
    }

    /// Mutable manager access.
    pub fn manager_mut(&mut self) -> &mut M {
        &mut self.manager
    }

    /// The execution quantum (fleet drivers align their epochs to it).
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The per-epoch TDP update path a fleet exchange drives: offer `tdp`
    /// to the manager ([`PowerManager::set_power_budget`]); when the
    /// manager adopts it, the system's TDP-violation accounting follows.
    /// Returns whether the budget was adopted.
    pub fn set_power_budget(&mut self, tdp: Watts) -> bool {
        if self.manager.set_power_budget(tdp) {
            self.system.set_tdp_accounting(tdp);
            true
        } else {
            false
        }
    }

    /// Advance the simulation by `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        if !self.initialized {
            self.manager.init(&mut self.system);
            self.initialized = true;
        }
        let end = self.system.now() + duration;
        while self.system.now() < end {
            let dt = self.quantum.min(end.since(self.system.now()));
            // Injected task crashes land before capture: the manager first
            // sees a world without the victim, exactly like a real exit.
            if let Some(f) = &mut self.faults {
                if let Some(victim) = f.task_crash(self.system.task_count()) {
                    let id = self.system.task_iter().nth(victim);
                    if let Some(id) = id {
                        self.system.remove_task(id);
                    }
                }
            }
            // Wall-clock marks exist only while profiling; `lap` collapses
            // to one branch otherwise. The monotonic clock sizes the spans,
            // the simulated clock (snap.now) places them.
            let profiling = self.telemetry.as_ref().is_some_and(Telemetry::profiling);
            let mut mark = if profiling {
                Some(Instant::now())
            } else {
                None
            };
            // Snapshot in, plan out, apply in one place. Without a fault
            // plan nothing perturbs the snapshot's copies between captures,
            // so the dynamic sections may be digest-gated like the task
            // section; faulted runs keep the always-re-read path.
            self.snap.capture_gated(&self.system, self.faults.is_none());
            if let Some(f) = &mut self.faults {
                // Observation faults: perturb only what the manager sees.
                // Cluster readings additionally pass through each agent's
                // (possibly drifted) observation clock, so a drifted
                // cluster flies on sensor data from a few quanta ago; the
                // chip-wide reading passes through the chip's own clock,
                // which in a fleet delays this whole chip's delivered
                // observations — manager decisions and exchange bids both.
                let chip = f.perturb_power(0, self.snap.chip_power);
                self.snap.chip_power = f.drift_chip_power(chip);
                for ci in 0..self.snap.clusters.len() {
                    let p = self.snap.clusters[ci].power;
                    let p = f.perturb_power(1 + ci, p);
                    self.snap.clusters[ci].power = f.drift_cluster_power(ci, p);
                }
                if let Some(h) = self.snap.hottest {
                    self.snap.hottest = Some(f.perturb_temperature(h));
                }
            }
            lap(
                self.telemetry.as_mut().map(|t| &mut t.profiler),
                &mut mark,
                Phase::Capture,
            );
            self.plan.clear();
            match &mut self.telemetry {
                Some(tel) if profiling => {
                    self.manager
                        .plan_profiled(&self.snap, dt, &mut self.plan, &mut tel.profiler)
                }
                _ => self.manager.plan(&self.snap, dt, &mut self.plan),
            }
            lap(
                self.telemetry.as_mut().map(|t| &mut t.profiler),
                &mut mark,
                Phase::Plan,
            );
            let need_digest =
                self.auditor.is_some() || (self.tape.is_some() && !self.plan.is_empty());
            let digest = if need_digest { self.snap.digest() } else { 0 };
            if let Some(tape) = &mut self.tape {
                if !self.plan.is_empty() {
                    tape.record(self.snap.now, digest, self.plan.ops());
                }
            }
            if let Some(f) = &mut self.faults {
                // Deferred DVFS requests that are due land first, then the
                // fresh plan runs the actuation-fault gauntlet. The tape
                // above recorded the manager's intent; the hardware gets
                // whatever survives.
                while let Some((cluster, level)) = f.pop_due_dvfs(self.system.now()) {
                    self.system.request_level(cluster, level);
                }
                self.faulted.clear();
                // A mid-actuation executor death truncates the plan to a
                // prefix; the dropped tail never even reaches the per-op
                // gauntlet, exactly as if the process died between ops.
                let keep = f
                    .plan_cut(self.plan.ops().len())
                    .unwrap_or(self.plan.ops().len());
                for &op in &self.plan.ops()[..keep] {
                    match op {
                        Action::RequestLevel(cluster, level) => match f.dvfs_outcome() {
                            ActuationOutcome::Apply => self.faulted.push(op),
                            ActuationOutcome::Fail => {}
                            ActuationOutcome::Defer(quanta) => {
                                let delay =
                                    SimDuration(self.quantum.0.saturating_mul(u64::from(quanta)));
                                f.defer_dvfs(self.system.now() + delay, cluster, level);
                            }
                        },
                        Action::Migrate(..) => {
                            if f.migration_applies() {
                                self.faulted.push(op);
                            }
                        }
                        _ => self.faulted.push(op),
                    }
                }
                self.system.apply_plan(&self.faulted);
            } else {
                self.system.apply_plan(&self.plan);
            }
            lap(
                self.telemetry.as_mut().map(|t| &mut t.profiler),
                &mut mark,
                Phase::Apply,
            );
            let record = self.system.now().as_micros() >= self.warmup.as_micros();
            self.system.step(dt, record);
            lap(
                self.telemetry.as_mut().map(|t| &mut t.profiler),
                &mut mark,
                Phase::Step,
            );
            if let Some(aud) = &mut self.auditor {
                aud.begin_quantum(self.snap.now, digest);
                aud.check_system(&self.system);
                if let Some(tape) = &self.tape {
                    if !self.plan.is_empty() {
                        aud.check_tape(tape);
                    }
                }
                self.manager.audit(&self.snap, aud);
                lap(
                    self.telemetry.as_mut().map(|t| &mut t.profiler),
                    &mut mark,
                    Phase::Audit,
                );
            }
            // Degradation rollup: copy the manager's live counters into the
            // metrics so hardened runs report totals without replaying the
            // event stream. Unconditional — it is four u64 copies.
            self.system.metrics.degradation = self.manager.degradation();
            if let Some(tel) = &mut self.telemetry {
                self.manager.sample_policy(&mut tel.policy);
                let stream_stats = self.stream.as_ref().map(ppm_obs::TelemetryStream::stats);
                record_telemetry_row(&self.system, tel, self.snap.now, stream_stats);
                // Fold the fresh row into the live aggregation windows and
                // the alert engine (one branch when neither is attached).
                tel.roll_forward();
                if let Some(stream) = &mut self.stream {
                    stream.pump(&tel.recorder);
                }
            }
            if let Some(p) = self.trace_period {
                if self.system.now() >= self.next_trace {
                    self.system.sample_trace();
                    self.next_trace = self.system.now() + p;
                }
            }
        }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        self.system.metrics()
    }

    /// Tear down into the system (for post-run inspection).
    pub fn into_system(self) -> System {
        self.system
    }
}

/// Append one time-series row for the quantum that just executed at `at`.
/// Reads true sensors (like the metrics do), the manager's policy sample,
/// and the profiler's per-quantum spans; writes are indexed stores into
/// the recorder's preallocated ring — no allocation once the entity
/// population has been seen.
fn record_telemetry_row(
    sys: &System,
    tel: &mut Telemetry,
    at: SimTime,
    stream_stats: Option<ppm_obs::StreamStats>,
) {
    let n_clusters = sys.chip.clusters().len();
    let n_cores = sys.chip.cores().len();
    let n_tasks = sys.entries.len();
    tel.recorder.ensure_shape(n_clusters, n_cores, n_tasks);
    let last_phases = tel.profiler.take_last();

    let deg = sys.metrics.degradation;
    let chip_power = sys.last_chip_power.value();
    let headroom = sys.tdp().map_or(f64::NAN, |t| t.value() - chip_power);
    let hottest = sys.thermal().map_or(f64::NAN, |t| t.hottest().value());
    let mut row = tel.recorder.push_row(at.as_micros());
    row.chip(chip_power, headroom, hottest)
        .degradation(
            deg.sensor_fallbacks,
            deg.dvfs_retries,
            deg.migration_retries,
            deg.tasks_orphaned,
        )
        .phases(&last_phases)
        .policy(&tel.policy);
    if let Some(s) = stream_stats {
        row.obs_stream(s.rows as f64, s.lost as f64, s.flushes as f64);
    }
    for ci in 0..n_clusters {
        let id = ClusterId(ci);
        let cluster = sys.chip.cluster(id);
        let (freq, volt) = if cluster.is_off() {
            (0.0, 0.0)
        } else {
            let p = cluster.point();
            (f64::from(p.frequency.value()), f64::from(p.voltage.0))
        };
        row.cluster(
            ci,
            freq,
            volt,
            sys.last_cluster_power[ci].value(),
            sys.cluster_temperature(id).map_or(f64::NAN, |c| c.value()),
        );
        let supply = cluster.supply_per_core().value();
        for &core in sys.chip.cores_of(id) {
            row.core_supply(core.0, supply);
        }
    }
    for (i, e) in sys.entries.iter().enumerate() {
        if e.active {
            row.task(
                i,
                e.share.value(),
                e.granted.value(),
                e.task.heart_rate(),
                e.task.normalized_heart_rate(),
            );
            if let Some(ol) = e.task.open_loop_snap() {
                row.task_latency(
                    i,
                    f64::from(ol.queue_depth),
                    ol.p99_ms,
                    ol.slo_ms,
                    ol.shed as f64,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_platform::core::CoreClass;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::Priority;

    fn spec(b: Benchmark, i: Input) -> BenchmarkSpec {
        BenchmarkSpec::of(b, i).expect("valid variant")
    }

    fn simple_system() -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                spec(Benchmark::Blackscholes, Input::Large),
                Priority(1),
            ),
            CoreId(0),
        );
        sys
    }

    #[test]
    fn lone_task_gets_whole_core() {
        let mut sim = Simulation::new(simple_system(), NullManager);
        sim.run_for(SimDuration::from_secs(2));
        let sys = sim.system();
        // At the lowest A7 level the core supplies 350 PU; blackscholes
        // large needs only 200 PU at target, but is CPU-bound, so it takes
        // everything and overshoots its heart-rate target.
        assert_eq!(sys.granted(TaskId(0)), ProcessingUnits(350.0));
        assert!(sys.task(TaskId(0)).normalized_heart_rate() > 1.5);
        assert!((sys.core_utilization(CoreId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_tasks_split_the_core() {
        let mut sys = simple_system();
        sys.add_task(
            Task::new(
                TaskId(1),
                spec(Benchmark::Blackscholes, Input::Large),
                Priority(1),
            ),
            CoreId(0),
        );
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_secs(1));
        let g0 = sim.system().granted(TaskId(0));
        let g1 = sim.system().granted(TaskId(1));
        assert!((g0.value() - 175.0).abs() < 1e-6);
        assert!((g1.value() - 175.0).abs() < 1e-6);
    }

    #[test]
    fn market_policy_honours_shares() {
        let mut sys = simple_system();
        sys.set_policy(AllocationPolicy::Market);
        sys.add_task(
            Task::new(
                TaskId(1),
                spec(Benchmark::Blackscholes, Input::Large),
                Priority(1),
            ),
            CoreId(0),
        );
        sys.set_share(TaskId(0), ProcessingUnits(250.0));
        sys.set_share(TaskId(1), ProcessingUnits(100.0));
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.system().granted(TaskId(0)), ProcessingUnits(250.0));
        assert_eq!(sim.system().granted(TaskId(1)), ProcessingUnits(100.0));
    }

    #[test]
    fn migration_stalls_then_resumes_on_new_core() {
        let mut sim = Simulation::new(simple_system(), NullManager);
        sim.run_for(SimDuration::from_millis(100));
        // Move LITTLE -> big: 1.88-2.16 ms penalty.
        let cost = sim
            .system_mut()
            .migrate(TaskId(0), CoreId(3))
            .expect("real move");
        assert!(cost >= SimDuration::from_micros(1880));
        assert!(sim.system().is_stalled(TaskId(0)));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(sim.system().granted(TaskId(0)), ProcessingUnits::ZERO);
        sim.run_for(SimDuration::from_millis(5));
        assert!(!sim.system().is_stalled(TaskId(0)));
        // Now running on the big cluster's lowest level: 500 PU.
        assert_eq!(sim.system().granted(TaskId(0)), ProcessingUnits(500.0));
        assert_eq!(sim.metrics().migrations_inter, 1);
        assert_eq!(sim.system().chip().core(CoreId(3)).class(), CoreClass::Big);
    }

    #[test]
    fn migrate_to_same_core_is_noop() {
        let mut sim = Simulation::new(simple_system(), NullManager);
        assert!(sim.system_mut().migrate(TaskId(0), CoreId(0)).is_none());
        assert_eq!(sim.metrics().migrations_intra, 0);
    }

    #[test]
    fn power_reflects_load_and_gating() {
        let mut sim = Simulation::new(simple_system(), NullManager);
        sim.run_for(SimDuration::from_millis(10));
        let with_big_idle = sim.system().chip_power();
        assert!(with_big_idle.value() > 0.0);
        // Gate the (idle) big cluster: chip power drops.
        sim.system_mut().power_off(ClusterId(1));
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim.system().chip_power() < with_big_idle);
        assert_eq!(sim.system().cluster_power(ClusterId(1)), Watts::ZERO);
    }

    #[test]
    fn dvfs_request_takes_effect_after_latency() {
        let mut sim = Simulation::new(simple_system(), NullManager);
        sim.run_for(SimDuration::from_millis(1));
        assert!(sim.system_mut().request_level(ClusterId(0), VfLevel(7)));
        sim.run_for(SimDuration::from_millis(2));
        assert_eq!(
            sim.system().chip().cluster(ClusterId(0)).level(),
            VfLevel(7)
        );
        assert_eq!(sim.system().granted(TaskId(0)), ProcessingUnits(1000.0));
        assert_eq!(sim.metrics().vf_transitions, 1);
    }

    #[test]
    fn warmup_excludes_early_misses() {
        let sys = simple_system();
        let mut sim = Simulation::new(sys, NullManager).with_warmup(SimDuration::from_secs(1));
        sim.run_for(SimDuration::from_secs(3));
        // Metrics only cover the post-warm-up 2 s.
        assert_eq!(sim.metrics().total_time(), SimDuration::from_secs(2));
    }

    #[test]
    fn trace_sampling_is_decimated() {
        let sys = simple_system();
        let mut sim = Simulation::new(sys, NullManager).with_trace(SimDuration::from_millis(100));
        sim.run_for(SimDuration::from_secs(1));
        let n = sim.metrics().trace().len();
        assert!((9..=11).contains(&n), "{n} samples");
    }

    #[test]
    fn utilization_cap_limits_consumption() {
        // A task with a 50% utilization-cap phase leaves half the core idle.
        use ppm_workload::phase::Phase;
        // Build via the public surface: the x264 dormant phase has cap 1.0,
        // so synthesise a capped phase through PhaseSequence directly is not
        // possible on a BenchmarkSpec; instead verify the Claimant cap path
        // using fair allocation of two tasks where one is capped.
        let _ = Phase::with_utilization(10.0, 1.0, 0.5);
        let mut sys = simple_system();
        sys.add_task(
            Task::new(
                TaskId(1),
                spec(Benchmark::Swaptions, Input::Large),
                Priority(1),
            ),
            CoreId(1),
        );
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_millis(10));
        // Full caps here: both cores fully utilized by their lone tasks.
        assert!((sim.system().core_utilization(CoreId(1)) - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod thermal_tests {
    use super::*;
    use ppm_platform::thermal::ThermalModel;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::Priority;

    #[test]
    fn thermal_model_tracks_the_busy_cluster() {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.attach_thermal(ThermalModel::mobile(2));
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::X264, Input::Native).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        // Run the loaded LITTLE cluster flat out; gate the idle big cluster
        // (its level-0 leakage otherwise out-heats a 350 MHz A7 under load).
        let top = sys.chip().cluster(ClusterId(0)).table().max_level();
        sys.request_level(ClusterId(0), top);
        sys.power_off(ClusterId(1));
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_secs(30));
        let sys = sim.system();
        let little = sys.cluster_temperature(ClusterId(0)).expect("attached");
        let big = sys.cluster_temperature(ClusterId(1)).expect("attached");
        assert!(little > big, "little {little} vs big {big}");
        assert!(little.value() > 41.0, "busy cluster should heat: {little}");
        assert!(
            (big.value() - 35.0).abs() < 1.0,
            "gated cluster cools: {big}"
        );
        assert!(!sys.thermal().expect("attached").throttling());
    }

    #[test]
    fn chip_peak_power_stays_below_the_thermal_limit() {
        // Consistency of the TC2 calibration: even both clusters flat out
        // (the 8 W TDP) keep junction temperatures below the 85 C
        // throttling point with the mobile RC parameters, because each
        // cluster node sees only its own ~2 W / ~6 W... the big cluster at
        // 6 W would exceed it — which is exactly why the TDP exists.
        let mut m = ThermalModel::mobile(2);
        for _ in 0..100 {
            m.step(&[Watts(2.0), Watts(6.0)], SimDuration::from_secs(1));
        }
        assert!(m.temperature(ClusterId(0)).value() < 60.0);
        assert!(
            m.temperature(ClusterId(1)).value() > 85.0,
            "an uncapped big cluster overheats — the paper's premise"
        );
    }
}

#[cfg(test)]
mod affinity_tests {
    use super::*;
    use crate::affinity::CpuMask;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::Priority;

    #[test]
    fn affinity_blocks_forbidden_migrations() {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::Swaptions, Input::Large).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        sys.set_affinity(TaskId(0), CpuMask::of([CoreId(0), CoreId(1)]));
        assert!(sys.can_run_on(TaskId(0), CoreId(1)));
        assert!(!sys.can_run_on(TaskId(0), CoreId(3)));
        // Allowed move succeeds; forbidden move is a no-op.
        assert!(sys.migrate(TaskId(0), CoreId(1)).is_some());
        assert!(sys.migrate(TaskId(0), CoreId(3)).is_none());
        assert_eq!(sys.core_of(TaskId(0)), CoreId(1));
        // Restoring the full mask re-enables the move.
        sys.set_affinity(TaskId(0), CpuMask::all());
        assert!(sys.migrate(TaskId(0), CoreId(3)).is_some());
    }
}

#[cfg(test)]
mod energy_attribution_tests {
    use super::*;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::Priority;

    #[test]
    fn per_task_energy_sums_to_the_chip_energy() {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::X264, Input::Native).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        sys.add_task(
            Task::new(
                TaskId(1),
                BenchmarkSpec::of(Benchmark::Texture, Input::Vga).expect("variant"),
                Priority(1),
            ),
            CoreId(1),
        );
        // Gate the idle big cluster so all chip power is attributable.
        sys.power_off(ClusterId(1));
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_secs(10));
        let m = sim.metrics();
        let e0 = m.task(TaskId(0)).expect("t0").energy.value();
        let e1 = m.task(TaskId(1)).expect("t1").energy.value();
        let chip = m.chip_energy.energy().value();
        // All cores host exactly one task each (core 2 idle leaks a core's
        // worth of static power that no task owns), so the attributed sum
        // is slightly below the chip total but close.
        assert!(e0 > 0.0 && e1 > 0.0);
        assert!(e0 + e1 <= chip + 1e-9, "{e0}+{e1} vs {chip}");
        assert!(e0 + e1 > 0.8 * chip, "{e0}+{e1} vs {chip}");
        // The 350 MHz core splits supply equally between clusters' lone
        // tasks, so with identical grants the energies match closely.
        assert!((e0 - e1).abs() < 0.2 * e0.max(e1));
    }
}

#[cfg(test)]
mod sensor_noise_tests {
    use super::*;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::Priority;

    #[test]
    fn noise_perturbs_readings_but_not_energy() {
        let make = |noise: f64| {
            let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
            sys.set_sensor_noise(noise);
            sys.add_task(
                Task::new(
                    TaskId(0),
                    BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large).expect("variant"),
                    Priority(1),
                ),
                CoreId(0),
            );
            let mut sim = Simulation::new(sys, NullManager);
            sim.run_for(SimDuration::from_secs(5));
            let energy = sim.metrics().chip_energy.energy().value();
            let reading = sim.system().chip_power().value();
            (energy, reading)
        };
        let (e_clean, r_clean) = make(0.0);
        let (e_noisy, r_noisy) = make(0.10);
        // Physics identical; only the last sensor reading wiggles.
        assert!((e_clean - e_noisy).abs() < 1e-9);
        assert!((r_noisy - r_clean).abs() > 1e-6, "noise should show up");
        assert!((r_noisy / r_clean - 1.0).abs() <= 0.10 + 1e-9);
    }

    #[test]
    fn residency_accounts_all_recorded_time() {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        sys.add_task(
            Task::new(
                TaskId(0),
                BenchmarkSpec::of(Benchmark::Swaptions, Input::Large).expect("variant"),
                Priority(1),
            ),
            CoreId(0),
        );
        let mut sim = Simulation::new(sys, NullManager);
        sim.run_for(SimDuration::from_secs(3));
        sim.system_mut().request_level(ClusterId(0), VfLevel(5));
        sim.run_for(SimDuration::from_secs(2));
        let res = sim.metrics().level_residency(0);
        let total: u64 = res.iter().map(|d| d.as_micros()).sum();
        assert_eq!(total, SimDuration::from_secs(5).as_micros());
        assert!(res[0] >= SimDuration::from_secs(3));
        assert!(res[5] >= SimDuration::from_millis(1900));
    }
}
