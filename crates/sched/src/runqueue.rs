//! Per-core run queues and cycle allocation.
//!
//! Two allocation disciplines are provided:
//!
//! * [`fair_allocate`] — CFS-style weighted fair sharing with water-filling:
//!   each runnable entity receives supply proportional to its weight, capped
//!   by how much it can consume; freed residue is redistributed. Used by the
//!   HL baseline and any weight-driven manager.
//! * [`market_allocate`] — grants explicit PU shares (the market's `s_t`),
//!   scaled down proportionally if the core is oversubscribed and capped by
//!   consumability. Used by the PPM manager, which computes `s_t = b_t / P_c`.

use ppm_platform::units::ProcessingUnits;
use ppm_workload::task::TaskId;

/// A runnable entity competing for one core's supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claimant {
    /// The task making the claim.
    pub task: TaskId,
    /// CFS weight (for [`fair_allocate`]).
    pub weight: u32,
    /// Explicit market share in PU (for [`market_allocate`]).
    pub share: ProcessingUnits,
    /// Most the entity can consume this quantum, in PU (utilization cap ×
    /// core supply).
    pub cap: ProcessingUnits,
}

/// Reusable scratch for [`fair_allocate_into`], so the executor's steady
/// state allocates nothing per quantum.
#[derive(Debug, Default)]
pub struct AllocScratch {
    active: Vec<usize>,
    saturated: Vec<usize>,
}

impl AllocScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> AllocScratch {
        AllocScratch::default()
    }
}

/// Weighted-fair water-filling of `supply` across `claims`.
///
/// Returns one grant per claimant, in order. Entities that cannot use their
/// full proportional share (cap-limited) release the residue to the others,
/// as CFS does when a task sleeps.
pub fn fair_allocate(supply: ProcessingUnits, claims: &[Claimant]) -> Vec<ProcessingUnits> {
    let mut grants = Vec::new();
    fair_allocate_into(supply, claims, &mut AllocScratch::new(), &mut grants);
    grants
}

/// [`fair_allocate`] into caller-provided buffers (the hot-path form).
/// `grants` is cleared and refilled with one grant per claimant, in order.
pub fn fair_allocate_into(
    supply: ProcessingUnits,
    claims: &[Claimant],
    scratch: &mut AllocScratch,
    grants: &mut Vec<ProcessingUnits>,
) {
    grants.clear();
    grants.resize(claims.len(), ProcessingUnits::ZERO);
    if claims.is_empty() || !supply.is_positive() {
        return;
    }
    let mut remaining = supply;
    let active = &mut scratch.active;
    active.clear();
    active.extend(0..claims.len());
    // Each round either exhausts the supply or saturates at least one
    // claimant, so this terminates in ≤ claims.len() rounds.
    while !active.is_empty() && remaining.is_positive() {
        let total_w: f64 = active.iter().map(|&i| claims[i].weight as f64).sum();
        if total_w <= 0.0 {
            break;
        }
        let saturated = &mut scratch.saturated;
        saturated.clear();
        let mut consumed = ProcessingUnits::ZERO;
        for &i in active.iter() {
            let proportional = remaining * (claims[i].weight as f64 / total_w);
            let headroom = claims[i].cap - grants[i];
            if proportional >= headroom {
                grants[i] = claims[i].cap;
                consumed += headroom;
                saturated.push(i);
            } else {
                grants[i] += proportional;
                consumed += proportional;
            }
        }
        remaining -= consumed;
        if saturated.is_empty() {
            break; // everyone took the full proportional share
        }
        active.retain(|i| !saturated.contains(i));
        if !remaining.is_positive() {
            break;
        }
    }
}

/// Grant explicit market shares, scaling proportionally when the claims
/// exceed `supply` and capping each grant at its consumability.
pub fn market_allocate(supply: ProcessingUnits, claims: &[Claimant]) -> Vec<ProcessingUnits> {
    let mut grants = Vec::new();
    market_allocate_into(supply, claims, &mut grants);
    grants
}

/// [`market_allocate`] into a caller-provided buffer (the hot-path form).
/// `grants` is cleared and refilled with one grant per claimant, in order.
pub fn market_allocate_into(
    supply: ProcessingUnits,
    claims: &[Claimant],
    grants: &mut Vec<ProcessingUnits>,
) {
    grants.clear();
    if claims.is_empty() || !supply.is_positive() {
        grants.resize(claims.len(), ProcessingUnits::ZERO);
        return;
    }
    let total: ProcessingUnits = claims.iter().map(|c| c.share).sum();
    let scale = if total > supply { supply / total } else { 1.0 };
    grants.extend(claims.iter().map(|c| (c.share * scale).min(c.cap)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claimant(task: usize, weight: u32, share: f64, cap: f64) -> Claimant {
        Claimant {
            task: TaskId(task),
            weight,
            share: ProcessingUnits(share),
            cap: ProcessingUnits(cap),
        }
    }

    #[test]
    fn fair_split_is_weight_proportional() {
        let claims = vec![claimant(0, 2048, 0.0, 1e9), claimant(1, 1024, 0.0, 1e9)];
        let g = fair_allocate(ProcessingUnits(900.0), &claims);
        assert!((g[0].value() - 600.0).abs() < 1e-9);
        assert!((g[1].value() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn fair_water_fills_capped_entities() {
        // Task 0 can only use 100 PU; the rest flows to task 1.
        let claims = vec![claimant(0, 1024, 0.0, 100.0), claimant(1, 1024, 0.0, 1e9)];
        let g = fair_allocate(ProcessingUnits(1000.0), &claims);
        assert!((g[0].value() - 100.0).abs() < 1e-9);
        assert!((g[1].value() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn fair_total_never_exceeds_supply() {
        let claims = vec![
            claimant(0, 88761, 0.0, 400.0),
            claimant(1, 1024, 0.0, 1e9),
            claimant(2, 15, 0.0, 50.0),
        ];
        let g = fair_allocate(ProcessingUnits(1000.0), &claims);
        let total: f64 = g.iter().map(|p| p.value()).sum();
        assert!(total <= 1000.0 + 1e-6);
    }

    #[test]
    fn fair_handles_empty_and_zero_supply() {
        assert!(fair_allocate(ProcessingUnits(100.0), &[]).is_empty());
        let claims = vec![claimant(0, 1024, 0.0, 1e9)];
        let g = fair_allocate(ProcessingUnits::ZERO, &claims);
        assert_eq!(g[0], ProcessingUnits::ZERO);
    }

    #[test]
    fn market_grants_exact_shares_when_feasible() {
        let claims = vec![claimant(0, 0, 300.0, 1e9), claimant(1, 0, 100.0, 1e9)];
        let g = market_allocate(ProcessingUnits(500.0), &claims);
        assert_eq!(g[0], ProcessingUnits(300.0));
        assert_eq!(g[1], ProcessingUnits(100.0));
    }

    #[test]
    fn market_scales_when_oversubscribed() {
        let claims = vec![claimant(0, 0, 600.0, 1e9), claimant(1, 0, 600.0, 1e9)];
        let g = market_allocate(ProcessingUnits(600.0), &claims);
        assert!((g[0].value() - 300.0).abs() < 1e-9);
        assert!((g[1].value() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn market_respects_caps() {
        let claims = vec![claimant(0, 0, 500.0, 200.0)];
        let g = market_allocate(ProcessingUnits(1000.0), &claims);
        assert_eq!(g[0], ProcessingUnits(200.0));
    }
}
