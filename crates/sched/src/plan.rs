//! Actuation plans and tapes: the *plan-out* half of the manager boundary.
//!
//! A power manager never touches the [`System`](crate::executor::System)
//! directly. It reads a [`SystemSnapshot`](crate::snapshot::SystemSnapshot)
//! and appends [`Action`]s to an [`ActuationPlan`]; the executor validates
//! and applies the plan in one place. Because queued actions take effect only
//! after the manager returns, the plan offers *overlay* queries
//! ([`ActuationPlan::core_of`], [`ActuationPlan::share_of`], …) that answer
//! "where would this task be / what would this knob read *if the plan were
//! applied*" — reproducing the read-after-write semantics managers had when
//! they actuated inline.
//!
//! An optional [`Tape`] records `(snapshot digest, plan)` pairs per quantum
//! for replay and golden-diffing: two runs are behaviourally identical iff
//! their tapes render to the same bytes.

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::CoreId;
use ppm_platform::units::{ProcessingUnits, SimTime};
use ppm_platform::vf::VfLevel;
use ppm_workload::task::TaskId;

use crate::nice::Nice;
use crate::snapshot::{SystemSnapshot, TaskSnap};

/// One actuation command. The executor applies commands in plan order with
/// the same semantics as the corresponding `System` methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Set a task's explicit PU share (Market policy).
    SetShare(TaskId, ProcessingUnits),
    /// Set a task's nice value (FairWeights policy).
    SetNice(TaskId, Nice),
    /// Ask a cluster regulator for a V-F level.
    RequestLevel(ClusterId, VfLevel),
    /// Migrate a task to a core (no-op if already there or affinity-blocked,
    /// exactly like `System::migrate`).
    Migrate(TaskId, CoreId),
    /// Power a cluster up at its lowest level.
    PowerOn(ClusterId),
    /// Power a cluster down.
    PowerOff(ClusterId),
}

/// A command buffer built by one manager invocation.
///
/// The executor clears and reuses one plan per quantum, so steady-state
/// planning performs no heap allocation once capacity has warmed up.
#[derive(Debug, Default)]
pub struct ActuationPlan {
    ops: Vec<Action>,
}

impl ActuationPlan {
    /// An empty plan.
    pub fn new() -> ActuationPlan {
        ActuationPlan::default()
    }

    /// Drop all queued actions (the executor does this between quanta).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The queued actions, in application order.
    pub fn ops(&self) -> &[Action] {
        &self.ops
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queue an arbitrary action.
    pub fn push(&mut self, action: Action) {
        self.ops.push(action);
    }

    /// Queue a share update.
    pub fn set_share(&mut self, task: TaskId, share: ProcessingUnits) {
        self.ops.push(Action::SetShare(task, share));
    }

    /// Queue a nice update.
    pub fn set_nice(&mut self, task: TaskId, nice: Nice) {
        self.ops.push(Action::SetNice(task, nice));
    }

    /// Queue a DVFS request.
    pub fn request_level(&mut self, cluster: ClusterId, level: VfLevel) {
        self.ops.push(Action::RequestLevel(cluster, level));
    }

    /// Queue a migration.
    pub fn migrate(&mut self, task: TaskId, core: CoreId) {
        self.ops.push(Action::Migrate(task, core));
    }

    /// Queue a cluster power-up.
    pub fn power_on(&mut self, cluster: ClusterId) {
        self.ops.push(Action::PowerOn(cluster));
    }

    /// Queue a cluster power-down.
    pub fn power_off(&mut self, cluster: ClusterId) {
        self.ops.push(Action::PowerOff(cluster));
    }

    // --- Overlay queries: snapshot state + queued-but-unapplied actions ---

    /// The core `task` would occupy after this plan (last queued migration
    /// wins; otherwise the snapshot placement).
    pub fn core_of(&self, snap: &SystemSnapshot, task: TaskId) -> CoreId {
        self.ops
            .iter()
            .rev()
            .find_map(|op| match *op {
                Action::Migrate(t, core) if t == task => Some(core),
                _ => None,
            })
            .unwrap_or_else(|| snap.task(task).expect("task in snapshot").core)
    }

    /// The share `task` would have after this plan.
    pub fn share_of(&self, snap: &SystemSnapshot, task: TaskId) -> ProcessingUnits {
        self.ops
            .iter()
            .rev()
            .find_map(|op| match *op {
                Action::SetShare(t, share) if t == task => Some(share.max(ProcessingUnits::ZERO)),
                _ => None,
            })
            .unwrap_or_else(|| snap.task(task).expect("task in snapshot").share)
    }

    /// Whether `cluster` would be gated after this plan.
    pub fn cluster_off(&self, snap: &SystemSnapshot, cluster: ClusterId) -> bool {
        self.ops
            .iter()
            .rev()
            .find_map(|op| match *op {
                Action::PowerOn(c) if c == cluster => Some(false),
                Action::PowerOff(c) if c == cluster => Some(true),
                _ => None,
            })
            .unwrap_or_else(|| snap.cluster(cluster).off)
    }

    /// Tasks that would reside on `core` after this plan, ascending by id.
    pub fn tasks_on<'a>(
        &'a self,
        snap: &'a SystemSnapshot,
        core: CoreId,
    ) -> impl Iterator<Item = &'a TaskSnap> + 'a {
        snap.tasks
            .iter()
            .filter(move |t| self.core_of(snap, t.id) == core)
    }

    /// Number of tasks that would reside on `core` after this plan.
    pub fn tasks_on_count(&self, snap: &SystemSnapshot, core: CoreId) -> usize {
        self.tasks_on(snap, core).count()
    }

    /// Whether any task would reside on a core of `cluster` after this plan.
    pub fn cluster_has_tasks(&self, snap: &SystemSnapshot, cluster: ClusterId) -> bool {
        snap.tasks
            .iter()
            .any(|t| snap.core(self.core_of(snap, t.id)).cluster == cluster)
    }
}

/// One tape entry: the digest of what the manager saw and what it decided.
#[derive(Debug, Clone)]
pub struct TapeRecord {
    /// Quantum start time.
    pub at: SimTime,
    /// FNV-1a digest of the snapshot the plan was computed from.
    pub snapshot_digest: u64,
    /// The actions the manager queued.
    pub ops: Vec<Action>,
}

/// A recording of `(snapshot digest, plan)` pairs across a run.
///
/// Empty plans are not recorded (managers gate on their own periods, so most
/// quanta decide nothing). [`Tape::render`] gives a byte-comparable form for
/// golden-diffing two runs.
#[derive(Debug, Default)]
pub struct Tape {
    records: Vec<TapeRecord>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Append one record.
    pub fn record(&mut self, at: SimTime, snapshot_digest: u64, ops: &[Action]) {
        self.records.push(TapeRecord {
            at,
            snapshot_digest,
            ops: ops.to_vec(),
        });
    }

    /// The recorded entries, in time order.
    pub fn records(&self) -> &[TapeRecord] {
        &self.records
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the whole tape as text, one record per line, bit-exact (`{:?}`
    /// prints floats in shortest round-trip form).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "{} {:016x} {:?}",
                r.at.as_micros(),
                r.snapshot_digest,
                r.ops
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{AllocationPolicy, System};
    use ppm_platform::chip::Chip;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn snap() -> SystemSnapshot {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::Market);
        for i in 0..2 {
            sys.add_task(
                Task::new(
                    TaskId(i),
                    BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large).expect("variant"),
                    Priority(1),
                ),
                CoreId(0),
            );
        }
        sys.set_share(TaskId(0), ProcessingUnits(120.0));
        let mut s = SystemSnapshot::new();
        s.capture(&sys);
        s
    }

    #[test]
    fn overlays_reflect_queued_actions_last_wins() {
        let snap = snap();
        let mut plan = ActuationPlan::new();
        assert_eq!(plan.core_of(&snap, TaskId(0)), CoreId(0));
        assert_eq!(plan.share_of(&snap, TaskId(0)), ProcessingUnits(120.0));

        plan.migrate(TaskId(0), CoreId(3));
        plan.set_share(TaskId(0), ProcessingUnits(300.0));
        plan.migrate(TaskId(0), CoreId(1));
        assert_eq!(plan.core_of(&snap, TaskId(0)), CoreId(1));
        assert_eq!(plan.share_of(&snap, TaskId(0)), ProcessingUnits(300.0));
        // Task 1 untouched by the plan.
        assert_eq!(plan.core_of(&snap, TaskId(1)), CoreId(0));
        assert_eq!(plan.tasks_on_count(&snap, CoreId(0)), 1);
        assert_eq!(plan.tasks_on_count(&snap, CoreId(1)), 1);
    }

    #[test]
    fn power_overlay_tracks_gating() {
        let snap = snap();
        let mut plan = ActuationPlan::new();
        let big = ClusterId(1);
        assert!(!plan.cluster_off(&snap, big));
        plan.power_off(big);
        assert!(plan.cluster_off(&snap, big));
        plan.power_on(big);
        assert!(!plan.cluster_off(&snap, big));
        // Migrating the last task off LITTLE empties the cluster.
        plan.migrate(TaskId(0), CoreId(3));
        plan.migrate(TaskId(1), CoreId(4));
        assert!(!plan.cluster_has_tasks(&snap, ClusterId(0)));
        assert!(plan.cluster_has_tasks(&snap, big));
    }

    #[test]
    fn tape_renders_deterministically() {
        let mut tape = Tape::new();
        tape.record(
            SimTime::ZERO + ppm_platform::units::SimDuration::from_millis(1),
            0xdead_beef,
            &[Action::SetShare(TaskId(0), ProcessingUnits(50.0))],
        );
        let a = tape.render();
        assert!(a.contains("00000000deadbeef"));
        assert_eq!(a, tape.render());
    }
}
