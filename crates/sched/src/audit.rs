//! Every-quantum invariant auditor.
//!
//! The simulator's test pyramid proves *trajectories* (golden tapes, metric
//! regressions) but trajectories say nothing about quanta in which nothing
//! observable went wrong yet. The [`Auditor`] closes that gap: attached to a
//! [`Simulation`](crate::executor::Simulation), it re-checks the system's
//! physical and scheduling invariants after **every** quantum and collects
//! [`Violation`]s tagged with the quantum's snapshot digest, so a failure
//! points at the exact tape line where the decision that broke the world was
//! recorded.
//!
//! Physical invariants are checked against the *true* system state — fault
//! injection (see `ppm_platform::faults`) perturbs only what managers
//! observe, never the physics — so the auditor answers the question fault
//! runs exist to ask: *did the policy keep the hardware inside its envelope
//! while flying on bad data?*
//!
//! System-level invariants (this module):
//!
//! * **Allocation** — per-core Σ granted ≤ supply (the runqueue's scaling
//!   guarantee, which must survive DVFS transitions and gating).
//! * **Cluster power** — each cluster's sensed power ≤ its physical peak
//!   (`PowerModel::cluster_peak`): the paper's 2 W / 6 W envelopes on TC2.
//! * **TDP** — chip power may overshoot the budget transiently (the paper's
//!   δ tolerance exists precisely because throttling is not instant), but
//!   never beyond a hard margin, and never *sustained* beyond a grace
//!   window.
//! * **Affinity** — no task runs on a core its mask forbids.
//! * **Gating** — no task sits on a power-gated cluster beyond a rescue
//!   grace window (managers must notice and migrate or re-power).
//! * **Tape consistency** — the tape's latest record matches the quantum
//!   that produced it.
//!
//! Policy-internal invariants (money conservation in the market) live with
//! the policy: [`PowerManager::audit`](crate::executor::PowerManager::audit)
//! lets a manager report into the same sink with the same tagging.

use std::fmt::Write as _;

use ppm_platform::cluster::ClusterId;
use ppm_platform::units::{SimDuration, SimTime, Watts};

use crate::executor::System;
use crate::plan::Tape;

/// One invariant breach, tagged with the quantum it happened in.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Start time of the offending quantum.
    pub at: SimTime,
    /// Digest of the snapshot the quantum's plan was computed from
    /// (matches the tape line, when taping).
    pub snapshot_digest: u64,
    /// Short stable name of the broken invariant.
    pub invariant: &'static str,
    /// Human-readable specifics (observed vs. allowed).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} us, snap {:016x}] {}: {}",
            self.at.as_micros(),
            self.snapshot_digest,
            self.invariant,
            self.detail
        )
    }
}

/// Per-cluster bookkeeping for grace-window invariants.
#[derive(Debug, Clone, Copy, Default)]
struct ClusterWatch {
    /// When the cluster was first seen gated with tasks still on it.
    gated_with_tasks_since: Option<SimTime>,
    /// Whether the current gating excursion was already reported.
    gating_reported: bool,
}

/// Collects invariant violations across a run.
///
/// Attach with
/// [`Simulation::with_auditor`](crate::executor::Simulation::with_auditor);
/// query [`Auditor::violations`] (or assert [`Auditor::is_clean`]) after the
/// run. The auditor never panics mid-run — a faulted run should finish and
/// report, not die on the first breach.
#[derive(Debug, Default)]
pub struct Auditor {
    violations: Vec<Violation>,
    quanta: u64,
    at: SimTime,
    digest: u64,
    over_tdp_since: Option<SimTime>,
    over_hard_since: Option<SimTime>,
    tdp_reported: bool,
    clusters: Vec<ClusterWatch>,
    /// Scratch: per-core granted sums.
    grants: Vec<f64>,
}

impl Auditor {
    /// Chip power above `tdp * TDP_HARD_MARGIN` is a violation once it
    /// lasts beyond [`Self::TDP_HARD_GRACE`]; the band below it is the
    /// paper's δ-tolerance territory.
    pub const TDP_HARD_MARGIN: f64 = 1.30;
    /// How long the hard margin may be exceeded before it is a violation.
    /// Reactive policies (HL gates the big cluster only *after* observing
    /// power above the budget) legitimately spike for a few quanta between
    /// the crossing and the actuation landing; a *sustained* excursion
    /// means nobody is reacting at all.
    pub const TDP_HARD_GRACE: SimDuration = SimDuration(50_000);
    /// Chip power above TDP (but under the hard margin) becomes a violation
    /// when sustained longer than this.
    pub const TDP_GRACE: SimDuration = SimDuration(2_000_000);
    /// Tasks may sit on a gated cluster at most this long before the
    /// manager must have rescued them (covers the slowest baseline's
    /// load-balance period).
    pub const GATING_GRACE: SimDuration = SimDuration(300_000);
    /// Absolute slack for floating-point sum comparisons.
    pub const EPS: f64 = 1e-6;

    /// A fresh auditor.
    pub fn new() -> Auditor {
        Auditor::default()
    }

    /// All violations collected so far, in time order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant was ever breached.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of quanta audited so far.
    pub fn quanta_audited(&self) -> u64 {
        self.quanta
    }

    /// Report a violation in the quantum currently being audited. Managers
    /// call this from
    /// [`PowerManager::audit`](crate::executor::PowerManager::audit).
    pub fn report(&mut self, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            at: self.at,
            snapshot_digest: self.digest,
            invariant,
            detail,
        });
    }

    /// Fold another auditor's report into this one, prefixing each detail
    /// with `label` so the source stays identifiable. Used by fleet-level
    /// rollups that close the books across an exchange plus every chip's
    /// own auditor in one report.
    pub fn absorb(&mut self, label: &str, other: &Auditor) {
        self.quanta += other.quanta;
        for v in other.violations() {
            self.violations.push(Violation {
                at: v.at,
                snapshot_digest: v.snapshot_digest,
                invariant: v.invariant,
                detail: format!("{label}: {}", v.detail),
            });
        }
    }

    /// Human-readable report: a summary line plus one line per violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audited {} quanta: {} violation(s)",
            self.quanta,
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
        out
    }

    /// Open a quantum: everything reported until the next call is tagged
    /// `(at, digest)`. Called by the simulation driver.
    pub fn begin_quantum(&mut self, at: SimTime, digest: u64) {
        self.at = at;
        self.digest = digest;
        self.quanta += 1;
    }

    /// Check all system-level invariants against the post-step state.
    pub fn check_system(&mut self, sys: &System) {
        self.check_allocation_and_affinity(sys);
        self.check_cluster_power(sys);
        self.check_tdp(sys);
        self.check_gating(sys);
    }

    /// Per-core Σ granted ≤ supply, and every task on a core its affinity
    /// mask allows.
    fn check_allocation_and_affinity(&mut self, sys: &System) {
        let chip = sys.chip();
        let n_cores = chip.cores().len();
        self.grants.clear();
        self.grants.resize(n_cores, 0.0);
        // Collect first, report after: `grants` is borrowed from self.
        let mut bad_affinity: Option<String> = None;
        for id in sys.task_iter() {
            let core = sys.core_of(id);
            self.grants[core.0] += sys.granted(id).value();
            if bad_affinity.is_none() && !sys.can_run_on(id, core) {
                bad_affinity = Some(format!("task {} is on forbidden core {}", id.0, core.0));
            }
        }
        if let Some(detail) = bad_affinity {
            self.report("affinity", detail);
        }
        for core in 0..n_cores {
            let supply = chip.core_supply(chip.cores()[core].id()).value();
            let granted = self.grants[core];
            if granted > supply * (1.0 + 1e-9) + Self::EPS {
                self.report(
                    "core-oversubscribed",
                    format!("core {core}: granted {granted:.6} PU > supply {supply:.6} PU"),
                );
            }
        }
    }

    /// Each cluster's power within its physical peak (the paper's 2 W
    /// LITTLE / 6 W big envelopes on TC2).
    fn check_cluster_power(&mut self, sys: &System) {
        let chip = sys.chip();
        for cl in chip.clusters() {
            let peak = chip.power_model().cluster_peak(cl);
            let p = sys.cluster_power(cl.id());
            if p.value() > peak.value() * (1.0 + 1e-9) + Self::EPS {
                self.report(
                    "cluster-power-cap",
                    format!("cluster {}: {p} > peak {peak}", cl.id().0),
                );
            }
        }
    }

    /// Chip power within the TDP envelope: hard margin past its short
    /// grace, plain TDP when sustained past the long grace window. One
    /// report per excursion.
    fn check_tdp(&mut self, sys: &System) {
        let Some(tdp) = sys.tdp() else {
            self.over_tdp_since = None;
            self.over_hard_since = None;
            return;
        };
        let p = sys.chip_power();
        if p.value() <= tdp.value() {
            self.over_tdp_since = None;
            self.over_hard_since = None;
            self.tdp_reported = false;
            return;
        }
        let since = *self.over_tdp_since.get_or_insert(self.at);
        let hard = Watts(tdp.value() * Self::TDP_HARD_MARGIN);
        let hard_since = if p.value() > hard.value() + Self::EPS {
            Some(*self.over_hard_since.get_or_insert(self.at))
        } else {
            self.over_hard_since = None;
            None
        };
        if self.tdp_reported {
            return;
        }
        if let Some(hs) = hard_since {
            if self.at.since(hs) > Self::TDP_HARD_GRACE {
                self.report(
                    "tdp-hard-margin",
                    format!(
                        "chip power {p} > {:.0} % of TDP {tdp} for {} us",
                        Self::TDP_HARD_MARGIN * 100.0,
                        self.at.since(hs).as_micros()
                    ),
                );
                self.tdp_reported = true;
                return;
            }
        }
        if self.at.since(since) > Self::TDP_GRACE {
            self.report(
                "tdp-sustained",
                format!(
                    "chip power {p} above TDP {tdp} for {} us",
                    self.at.since(since).as_micros()
                ),
            );
            self.tdp_reported = true;
        }
    }

    /// No task parked on a gated cluster beyond the rescue grace window.
    fn check_gating(&mut self, sys: &System) {
        let n = sys.chip().clusters().len();
        if self.clusters.len() != n {
            self.clusters.resize(n, ClusterWatch::default());
        }
        for ci in 0..n {
            let id = ClusterId(ci);
            let stranded = sys.chip().clusters()[ci].is_off() && sys.cluster_has_tasks(id);
            let watch = &mut self.clusters[ci];
            if !stranded {
                watch.gated_with_tasks_since = None;
                watch.gating_reported = false;
                continue;
            }
            let since = *watch.gated_with_tasks_since.get_or_insert(self.at);
            if !watch.gating_reported && self.at.since(since) > Self::GATING_GRACE {
                watch.gating_reported = true;
                self.report(
                    "stranded-on-gated-cluster",
                    format!(
                        "cluster {ci} gated with tasks still mapped to it for {} us",
                        self.at.since(since).as_micros()
                    ),
                );
            }
        }
    }

    /// The tape's newest record must describe this quantum. Called by the
    /// driver only in quanta that recorded a plan.
    pub fn check_tape(&mut self, tape: &Tape) {
        match tape.records().last() {
            Some(r) if r.at == self.at && r.snapshot_digest == self.digest => {}
            Some(r) => self.report(
                "tape-consistency",
                format!(
                    "last tape record ({} us, {:016x}) does not match the quantum",
                    r.at.as_micros(),
                    r.snapshot_digest
                ),
            ),
            None => self.report(
                "tape-consistency",
                "plan recorded but tape is empty".to_string(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{AllocationPolicy, NullManager, Simulation, System};
    use ppm_platform::chip::Chip;
    use ppm_platform::core::CoreId;
    use ppm_platform::units::SimDuration;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task, TaskId};

    fn busy_system() -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
        for i in 0..4 {
            sys.add_task(
                Task::new(
                    TaskId(i),
                    BenchmarkSpec::of(Benchmark::Bodytrack, Input::Large).expect("variant"),
                    Priority(1),
                ),
                CoreId(i % 3),
            );
        }
        sys
    }

    #[test]
    fn clean_null_run_audits_clean() {
        let mut sim = Simulation::new(busy_system(), NullManager).with_auditor();
        sim.run_for(SimDuration::from_secs(2));
        let aud = sim.auditor().expect("auditor attached");
        assert!(aud.is_clean(), "{}", aud.render());
        assert_eq!(aud.quanta_audited(), 2000);
    }

    #[test]
    fn stranded_tasks_on_a_gated_cluster_are_flagged() {
        // Gate the big cluster with a task still on it; NullManager never
        // rescues, so the grace window must expire into a violation.
        let mut sys = busy_system();
        let _ = sys.migrate(TaskId(3), CoreId(3));
        let mut sim = Simulation::new(sys, NullManager).with_auditor();
        sim.run_for(SimDuration::from_millis(5));
        sim.system_mut()
            .power_off(ppm_platform::cluster::ClusterId(1));
        sim.run_for(SimDuration::from_millis(400));
        let aud = sim.auditor().expect("auditor attached");
        assert!(
            aud.violations()
                .iter()
                .any(|v| v.invariant == "stranded-on-gated-cluster"),
            "{}",
            aud.render()
        );
    }

    #[test]
    fn affinity_breach_is_flagged() {
        // `set_affinity` does not move the task (as on Linux), so binding a
        // task on core 0 to a mask that excludes core 0 leaves it stranded
        // on a forbidden core until a manager rebalances — NullManager
        // never does.
        let mut sys = busy_system();
        sys.set_affinity(TaskId(0), crate::affinity::CpuMask::only(CoreId(1)));
        let mut sim = Simulation::new(sys, NullManager).with_auditor();
        sim.run_for(SimDuration::from_millis(2));
        let aud = sim.auditor().expect("auditor attached");
        assert!(
            aud.violations().iter().any(|v| v.invariant == "affinity"),
            "{}",
            aud.render()
        );
    }

    #[test]
    fn render_mentions_every_violation() {
        let mut aud = Auditor::new();
        aud.begin_quantum(SimTime(42), 0xfeed);
        aud.report("demo", "something broke".to_string());
        let r = aud.render();
        assert!(r.contains("1 violation"), "{r}");
        assert!(r.contains("demo"), "{r}");
        assert!(r.contains("42 us"), "{r}");
    }
}
