//! CPU affinity masks.
//!
//! The paper's framework actuates migration through Linux's
//! `sched_setaffinity`; tasks can equally be *pinned* by the user (the
//! §5.4 experiments pin two tasks to one core). [`CpuMask`] is the
//! `cpu_set_t` equivalent: a bit per core, of arbitrary width.

use std::fmt;

use ppm_platform::core::CoreId;

/// A set of cores a task may run on.
///
/// ```
/// use ppm_platform::core::CoreId;
/// use ppm_sched::affinity::CpuMask;
///
/// let mask = CpuMask::only(CoreId(2));
/// assert!(mask.contains(CoreId(2)));
/// assert!(!mask.contains(CoreId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpuMask {
    /// One bit per core; absent words are all-zero. An empty vector with
    /// `all = true` means "every core".
    words: Vec<u64>,
    all: bool,
}

impl CpuMask {
    /// The mask allowing every core (the default affinity).
    pub fn all() -> CpuMask {
        CpuMask {
            words: Vec::new(),
            all: true,
        }
    }

    /// An empty mask (no core allowed). Setting this on a task starves it,
    /// exactly as an empty `cpu_set_t` would.
    pub fn none() -> CpuMask {
        CpuMask {
            words: Vec::new(),
            all: false,
        }
    }

    /// A mask allowing exactly one core.
    pub fn only(core: CoreId) -> CpuMask {
        let mut m = CpuMask::none();
        m.insert(core);
        m
    }

    /// A mask allowing the given cores.
    pub fn of<I: IntoIterator<Item = CoreId>>(cores: I) -> CpuMask {
        let mut m = CpuMask::none();
        for c in cores {
            m.insert(c);
        }
        m
    }

    /// Allow `core`.
    pub fn insert(&mut self, core: CoreId) {
        if self.all {
            return;
        }
        let word = core.0 / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (core.0 % 64);
    }

    /// Disallow `core`. A no-op on the all-cores mask cannot be expressed
    /// without knowing the chip width, so this panics there.
    ///
    /// # Panics
    ///
    /// Panics when called on [`CpuMask::all`].
    pub fn remove(&mut self, core: CoreId) {
        assert!(!self.all, "cannot remove from the all-cores mask");
        if let Some(w) = self.words.get_mut(core.0 / 64) {
            *w &= !(1 << (core.0 % 64));
        }
    }

    /// True when `core` is allowed.
    pub fn contains(&self, core: CoreId) -> bool {
        if self.all {
            return true;
        }
        self.words
            .get(core.0 / 64)
            .is_some_and(|w| w & (1 << (core.0 % 64)) != 0)
    }

    /// True when no core is allowed.
    pub fn is_empty(&self) -> bool {
        !self.all && self.words.iter().all(|&w| w == 0)
    }

    /// True for the every-core mask.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Iterate the explicitly allowed cores (nothing for the all-mask —
    /// its extent depends on the chip).
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| CoreId(wi * 64 + b))
        })
    }
}

impl Default for CpuMask {
    fn default() -> Self {
        CpuMask::all()
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all {
            return write!(f, "cpumask[all]");
        }
        write!(f, "cpumask[")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        let m = CpuMask::all();
        assert!(m.contains(CoreId(0)));
        assert!(m.contains(CoreId(4096)));
        assert!(m.is_all());
        assert!(!m.is_empty());
    }

    #[test]
    fn only_and_of_build_exact_sets() {
        let m = CpuMask::only(CoreId(3));
        assert!(m.contains(CoreId(3)));
        assert!(!m.contains(CoreId(2)));
        let m = CpuMask::of([CoreId(0), CoreId(70)]);
        assert!(m.contains(CoreId(0)));
        assert!(m.contains(CoreId(70)));
        assert!(!m.contains(CoreId(64)));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![CoreId(0), CoreId(70)]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = CpuMask::none();
        assert!(m.is_empty());
        m.insert(CoreId(5));
        assert!(m.contains(CoreId(5)));
        m.remove(CoreId(5));
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "all-cores mask")]
    fn removing_from_all_panics() {
        CpuMask::all().remove(CoreId(0));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CpuMask::all().to_string(), "cpumask[all]");
        assert_eq!(
            CpuMask::of([CoreId(1), CoreId(3)]).to_string(),
            "cpumask[1,3]"
        );
    }
}
