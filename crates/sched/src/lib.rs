//! # ppm-sched — Linux-like scheduling substrate and simulation executor
//!
//! The glue between the hardware model (`ppm-platform`) and the workload
//! model (`ppm-workload`): per-core run queues with CFS nice-weighted fair
//! sharing, per-entity load tracking, affinity-based migration with the
//! paper's latencies, `cpufreq` governors, and a fixed-quantum simulation
//! [`executor::Simulation`] that drives a pluggable
//! [`executor::PowerManager`] policy.
//!
//! ```
//! use ppm_platform::chip::Chip;
//! use ppm_platform::core::CoreId;
//! use ppm_platform::units::SimDuration;
//! use ppm_sched::executor::{AllocationPolicy, NullManager, Simulation, System};
//! use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
//! use ppm_workload::task::{Priority, Task, TaskId};
//!
//! # fn main() -> Result<(), ppm_workload::benchmarks::UnknownVariantError> {
//! let mut sys = System::new(Chip::tc2(), AllocationPolicy::FairWeights);
//! let spec = BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large)?;
//! sys.add_task(Task::new(TaskId(0), spec, Priority(1)), CoreId(0));
//! let mut sim = Simulation::new(sys, NullManager);
//! sim.run_for(SimDuration::from_secs(1));
//! assert!(sim.metrics().average_power().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod audit;
pub mod executor;
pub mod governor;
pub mod metrics;
pub mod nice;
pub mod pelt;
pub mod plan;
pub mod runqueue;
pub mod snapshot;

pub use crate::affinity::CpuMask;
pub use crate::audit::{Auditor, Violation};
pub use crate::executor::{AllocationPolicy, NullManager, PowerManager, Simulation, System};
pub use crate::governor::{Conservative, FrequencyGovernor, Ondemand, Performance, Powersave};
pub use crate::metrics::{Degradation, RunMetrics, TaskMetrics, TraceSample};
pub use crate::nice::Nice;
pub use crate::pelt::PeltTracker;
pub use crate::plan::{Action, ActuationPlan, Tape, TapeRecord};
pub use crate::snapshot::{ClusterSnap, CoreSnap, SystemSnapshot, TaskSnap};
