//! Per-entity load tracking (PELT).
//!
//! Linux ≥ 3.7 tracks a geometrically-decayed average of each entity's
//! runnable time (Paul Turner's per-entity load tracking, which the paper
//! cites as a heartbeat substitute for demand estimation). The kernel decays
//! contributions by 0.5 every 32 ms; we implement the same half-life in
//! continuous form:
//!
//! ```text
//! load' = load · 2^(−dt/32ms) + fraction · (1 − 2^(−dt/32ms))
//! ```

use std::fmt;

use ppm_platform::units::SimDuration;

/// Geometrically-decayed runnable-fraction tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeltTracker {
    load: f64,
    half_life: SimDuration,
}

impl PeltTracker {
    /// The kernel's decay half-life (32 ms).
    pub const KERNEL_HALF_LIFE: SimDuration = SimDuration(32_000);

    /// A tracker with the kernel half-life, starting at zero load.
    pub fn new() -> PeltTracker {
        PeltTracker::with_half_life(Self::KERNEL_HALF_LIFE)
    }

    /// A tracker with a custom half-life.
    ///
    /// # Panics
    ///
    /// Panics on a zero half-life.
    pub fn with_half_life(half_life: SimDuration) -> PeltTracker {
        assert!(!half_life.is_zero(), "half-life must be positive");
        PeltTracker {
            load: 0.0,
            half_life,
        }
    }

    /// Fold in an interval of length `dt` during which the entity was
    /// runnable for `fraction ∈ [0, 1]` of the time.
    pub fn update(&mut self, dt: SimDuration, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let decay = 0.5_f64.powf(dt.as_secs_f64() / self.half_life.as_secs_f64());
        self.load = self.load * decay + fraction * (1.0 - decay);
    }

    /// Current load average in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Reset to zero (fresh entity).
    pub fn reset(&mut self) {
        self.load = 0.0;
    }
}

impl Default for PeltTracker {
    fn default() -> Self {
        PeltTracker::new()
    }
}

impl fmt::Display for PeltTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load {:.3}", self.load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_fraction() {
        let mut p = PeltTracker::new();
        for _ in 0..1000 {
            p.update(SimDuration::from_millis(1), 0.6);
        }
        assert!((p.load() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn half_life_is_32ms() {
        let mut p = PeltTracker::new();
        // Saturate at 1.0, then go idle for exactly one half-life.
        for _ in 0..2000 {
            p.update(SimDuration::from_millis(1), 1.0);
        }
        p.update(SimDuration::from_millis(32), 0.0);
        assert!((p.load() - 0.5).abs() < 0.01, "load {}", p.load());
    }

    #[test]
    fn ramps_quickly_for_busy_tasks() {
        let mut p = PeltTracker::new();
        // ~100 ms of full activity is > 3 half-lives: load > 0.85.
        for _ in 0..100 {
            p.update(SimDuration::from_millis(1), 1.0);
        }
        assert!(p.load() > 0.85);
    }

    #[test]
    fn update_clamps_fraction() {
        let mut p = PeltTracker::new();
        p.update(SimDuration::from_secs(10), 5.0);
        assert!(p.load() <= 1.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut p = PeltTracker::new();
        p.update(SimDuration::from_secs(1), 1.0);
        p.reset();
        assert_eq!(p.load(), 0.0);
    }
}
