//! System snapshots: the *snapshot-in* half of the manager boundary.
//!
//! Once per quantum the executor captures the whole observable system state
//! — supplies, powers, utilizations, task telemetry — into a reused
//! [`SystemSnapshot`]. Managers read only this (never the live
//! [`System`](crate::executor::System)), which makes every policy a pure
//! `snapshot → plan` function: replayable, diffable, and safe to run while
//! the executor state is elsewhere. The snapshot is a strict superset of the
//! market's `MarketObs` and of what the HPM/HL baselines poll ad hoc.
//!
//! Capture reuses all buffers: after the first few quanta (static topology
//! vectors are built once) a steady-state capture performs **zero heap
//! allocation** — see `tests/zero_alloc.rs`. Every dynamic section is
//! additionally gated on a live-state sub-digest, so a capture whose
//! telemetry has not moved skips the refresh entirely. The chip-scalar,
//! core, and cluster gates only engage when the caller vouches that the
//! snapshot's copies were not perturbed since the previous capture
//! ([`SystemSnapshot::capture_gated`] with `sections_trusted`) — the
//! executor passes that exactly when no `FaultPlan` is attached, because
//! observation faults rewrite chip power, cluster powers, and `hottest`
//! in place after capture; faulted runs keep the always-re-read path.

use ppm_platform::cluster::ClusterId;
use ppm_platform::core::{CoreClass, CoreId};
use ppm_platform::thermal::Celsius;
use ppm_platform::units::{ProcessingUnits, SimTime, Watts};
use ppm_workload::request::OpenLoopSnap;
use ppm_workload::task::TaskId;

use crate::executor::System;

/// Per-task telemetry, as the paper's agents observe it.
#[derive(Debug, Clone, Copy)]
pub struct TaskSnap {
    /// Task id.
    pub id: TaskId,
    /// The core the task is mapped to (`c_t`).
    pub core: CoreId,
    /// Scheduling priority.
    pub priority: u32,
    /// Explicit PU share currently set (Market policy).
    pub share: ProcessingUnits,
    /// PU supply granted in the last quantum (`s_t`).
    pub granted: ProcessingUnits,
    /// PELT load average in `[0, 1]`.
    pub pelt_load: f64,
    /// True while the task pays a migration penalty.
    pub stalled: bool,
    /// Observed heart rate (0 until the monitor window fills).
    pub heart_rate: f64,
    /// Reference heart-rate target.
    pub target_rate: f64,
    /// Demand on the task's *current* core class, from its telemetry there.
    pub demand: ProcessingUnits,
    /// Off-line profiled demand on a LITTLE core.
    pub demand_little: ProcessingUnits,
    /// Off-line profiled demand on a big core.
    pub demand_big: ProcessingUnits,
    /// Measured cost per heartbeat, when telemetry is warm.
    pub cost_per_beat: Option<f64>,
    /// Request-queue state, for open-loop tasks only.
    pub open_loop: Option<OpenLoopSnap>,
}

impl TaskSnap {
    /// Profiled demand for `class`.
    pub fn profiled_demand(&self, class: CoreClass) -> ProcessingUnits {
        match class {
            CoreClass::Little => self.demand_little,
            CoreClass::Big => self.demand_big,
        }
    }
}

/// Per-core state.
#[derive(Debug, Clone, Copy)]
pub struct CoreSnap {
    /// Core id.
    pub id: CoreId,
    /// Owning cluster.
    pub cluster: ClusterId,
    /// Core class.
    pub class: CoreClass,
    /// Last quantum's utilization in `[0, 1]`.
    pub utilization: f64,
    /// Supply at the cluster's current level (0 when gated).
    pub supply: ProcessingUnits,
    /// Supply at the cluster's top level (static).
    pub max_supply: ProcessingUnits,
}

/// Per-cluster state, with the V-F ladder for level arithmetic.
#[derive(Debug, Clone)]
pub struct ClusterSnap {
    /// Cluster id.
    pub id: ClusterId,
    /// Class of the cluster's cores.
    pub class: CoreClass,
    /// Settled V-F level index.
    pub level: usize,
    /// The level currently in force or in flight (pending transition wins).
    pub effective_target: usize,
    /// True when power-gated.
    pub off: bool,
    /// Per-core supply at the current level (0 when gated).
    pub supply_per_core: ProcessingUnits,
    /// Last sampled cluster power (managers see the noisy sensor).
    pub power: Watts,
    /// Per-core supply at each ladder level, ascending (static).
    pub ladder: Vec<ProcessingUnits>,
    /// The cluster's cores (static).
    pub cores: Vec<CoreId>,
}

impl ClusterSnap {
    /// Highest level index.
    pub fn max_level(&self) -> usize {
        self.ladder.len() - 1
    }

    /// One level up from the current one, saturating at the top
    /// (mirrors `VfTable::step_up`).
    pub fn step_up(&self) -> usize {
        (self.level + 1).min(self.max_level())
    }

    /// One level down from the current one, saturating at the bottom.
    pub fn step_down(&self) -> usize {
        self.level.saturating_sub(1)
    }

    /// Per-core supply one level up, if not already at the top.
    pub fn supply_up(&self) -> Option<ProcessingUnits> {
        (self.level < self.max_level()).then(|| self.ladder[self.level + 1])
    }

    /// Per-core supply one level down, if not already at the bottom.
    pub fn supply_down(&self) -> Option<ProcessingUnits> {
        (self.level > 0).then(|| self.ladder[self.level - 1])
    }

    /// Lowest level whose supply covers `demand`, else the top level
    /// (mirrors `VfTable::level_for_demand`).
    pub fn level_for_demand(&self, demand: ProcessingUnits) -> usize {
        self.ladder
            .iter()
            .position(|&s| s >= demand)
            .unwrap_or(self.max_level())
    }
}

/// Per-section "what changed since the previous capture" mask.
///
/// Derived from per-section FNV-1a sub-digests compared across consecutive
/// [`SystemSnapshot::capture`] calls. Capture time (`now`) is deliberately
/// excluded — it advances every quantum and carries no decision input.
///
/// Digest equality is **probabilistic** (a 64-bit collision could mark a
/// changed section clean), so the mask is advisory: use it to skip cheap
/// bookkeeping or as a fast pre-filter, but any consumer that needs a hard
/// bit-identity guarantee must confirm with an exact comparison of the data
/// it depends on (the market's incremental fast path does exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeMask {
    /// Chip scalars changed (power sample, hottest junction temperature).
    pub chip: bool,
    /// The task section changed (membership or any per-task field).
    pub tasks: bool,
    /// The core section changed (utilization or supply on any core).
    pub cores: bool,
    /// The cluster section changed (level, target, gating, supply, power).
    pub clusters: bool,
}

impl ChangeMask {
    /// Everything dirty — the state before any capture pair exists.
    pub const ALL: ChangeMask = ChangeMask {
        chip: true,
        tasks: true,
        cores: true,
        clusters: true,
    };

    /// True when any section changed.
    pub fn any(self) -> bool {
        self.chip || self.tasks || self.cores || self.clusters
    }

    /// Number of dirty sections, 0–4.
    pub fn dirty_sections(self) -> u32 {
        u32::from(self.chip)
            + u32::from(self.tasks)
            + u32::from(self.cores)
            + u32::from(self.clusters)
    }
}

impl Default for ChangeMask {
    fn default() -> ChangeMask {
        ChangeMask::ALL
    }
}

/// Everything a power manager may observe, captured at one instant.
#[derive(Debug, Default)]
pub struct SystemSnapshot {
    /// Capture time (start of the quantum being planned).
    pub now: SimTime,
    /// Last sampled chip power (noisy sensor, like `System::chip_power`).
    pub chip_power: Watts,
    /// Hottest junction temperature, when a thermal model is attached.
    pub hottest: Option<Celsius>,
    /// Active tasks, ascending by id.
    pub tasks: Vec<TaskSnap>,
    /// All cores, indexed by core id.
    pub cores: Vec<CoreSnap>,
    /// All clusters, indexed by cluster id.
    pub clusters: Vec<ClusterSnap>,
    /// What changed since the previous capture (advisory — see [`ChangeMask`]).
    pub changed: ChangeMask,
    /// Previous capture's per-section sub-digests, `None` before the first.
    prev_sections: Option<[u64; 4]>,
    /// How many captures actually rebuilt the task section (stat).
    task_rebuilds: u64,
    /// How many captures refreshed any of the chip/core/cluster dynamic
    /// sections (stat; untrusted captures always count).
    dynamic_refreshes: u64,
}

impl SystemSnapshot {
    /// An empty snapshot (fill with [`SystemSnapshot::capture`]).
    pub fn new() -> SystemSnapshot {
        SystemSnapshot::default()
    }

    /// Capture `sys` into this snapshot, reusing all buffers. Equivalent
    /// to [`SystemSnapshot::capture_gated`] with `sections_trusted` false
    /// — the safe default for callers that may mutate the snapshot's
    /// copies between captures.
    pub fn capture(&mut self, sys: &System) {
        self.capture_gated(sys, false);
    }

    /// Capture `sys`, additionally gating the chip-scalar, core, and
    /// cluster refreshes on live-state sub-digests when `sections_trusted`
    /// is true. Trusted means: nothing mutated this snapshot's copies
    /// since the previous `capture*` call (the executor vouches for that
    /// exactly when no fault plan is attached — observation faults rewrite
    /// chip power, cluster powers, and `hottest` in place). The task
    /// section is always digest-gated; its live values are never perturbed
    /// in place. All gates share [`ChangeMask`]'s 64-bit collision caveat.
    pub fn capture_gated(&mut self, sys: &System, sections_trusted: bool) {
        let chip = sys.chip();
        self.now = sys.now();

        // Static topology: built once, then only dynamic fields refresh.
        if self.clusters.len() != chip.clusters().len() {
            self.clusters = chip
                .clusters()
                .iter()
                .map(|cl| ClusterSnap {
                    id: cl.id(),
                    class: cl.class(),
                    level: 0,
                    effective_target: 0,
                    off: false,
                    supply_per_core: ProcessingUnits::ZERO,
                    power: Watts::ZERO,
                    ladder: cl.table().iter().map(|(_, p)| p.supply()).collect(),
                    cores: cl.cores().to_vec(),
                })
                .collect();
        }
        if self.cores.len() != chip.cores().len() {
            self.cores = chip
                .cores()
                .iter()
                .map(|d| CoreSnap {
                    id: d.id(),
                    cluster: d.cluster(),
                    class: d.class(),
                    utilization: 0.0,
                    supply: ProcessingUnits::ZERO,
                    max_supply: chip.core_max_supply(d.id()),
                })
                .collect();
        }
        // Dynamic sections: the live-side digests double as the section
        // digests below (they hash exactly the fields a refresh would
        // store, in exactly the same order), so a trusted capture whose
        // digest matches the previous one skips the refresh entirely — the
        // snapshot already holds those bytes.
        let chip_digest = Self::live_chip_digest(sys);
        let cores_digest = Self::live_cores_digest(sys);
        let clusters_digest = Self::live_clusters_digest(sys);
        let trusted_prev = if sections_trusted {
            self.prev_sections
        } else {
            None
        };
        let chip_clean = trusted_prev.is_some_and(|p| p[0] == chip_digest);
        let cores_clean = trusted_prev.is_some_and(|p| p[2] == cores_digest);
        let clusters_clean = trusted_prev.is_some_and(|p| p[3] == clusters_digest);
        if !(chip_clean && cores_clean && clusters_clean) {
            self.dynamic_refreshes += 1;
        }
        if !chip_clean {
            self.chip_power = sys.chip_power();
            self.hottest = sys.thermal().map(|t| t.hottest());
        }
        if !clusters_clean {
            for (snap, cl) in self.clusters.iter_mut().zip(chip.clusters()) {
                snap.level = cl.level().0;
                snap.effective_target = cl.effective_target().0;
                snap.off = cl.is_off();
                snap.supply_per_core = cl.supply_per_core();
                snap.power = sys.cluster_power(cl.id());
            }
        }
        if !cores_clean {
            for (snap, d) in self.cores.iter_mut().zip(chip.cores()) {
                snap.utilization = sys.core_utilization(d.id());
                snap.supply = chip.core_supply(d.id());
            }
        }
        debug_assert_eq!(
            chip_digest,
            self.chip_digest(),
            "live and snapshot chip digests drifted apart"
        );
        debug_assert_eq!(
            cores_digest,
            self.cores_digest(),
            "live and snapshot core digests drifted apart"
        );
        debug_assert_eq!(
            clusters_digest,
            self.clusters_digest(),
            "live and snapshot cluster digests drifted apart"
        );

        // Task section: the rebuild walks every task through half a dozen
        // telemetry accessors, so it is gated on a digest of the *live*
        // values (never the snapshot's own copy, which observation faults
        // may have perturbed after the previous capture — those only touch
        // chip power, cluster powers, and `hottest`, all refreshed above).
        // In steady state telemetry converges and the section digest stops
        // moving, so the common case is one read-only pass and no writes.
        // The gate shares ChangeMask's 64-bit-collision caveat.
        let tasks_digest = Self::live_tasks_digest(sys);
        let tasks_clean = self
            .prev_sections
            .is_some_and(|prev| prev[1] == tasks_digest);
        if !tasks_clean {
            self.task_rebuilds += 1;
            self.tasks.clear();
            self.tasks.extend(sys.task_iter().map(|id| {
                let task = sys.task(id);
                let core = sys.core_of(id);
                let class = chip.core(core).class();
                TaskSnap {
                    id,
                    core,
                    priority: task.priority().value(),
                    share: sys.share_of(id),
                    granted: sys.granted(id),
                    pelt_load: sys.pelt_load(id),
                    stalled: sys.is_stalled(id),
                    heart_rate: task.heart_rate(),
                    target_rate: task.spec().target_range().target(),
                    demand: task.demand(class, class),
                    // Pressure-scaled for open-loop tasks (== raw profile
                    // for closed-loop, so committed digests are untouched).
                    demand_little: task.planning_demand(CoreClass::Little),
                    demand_big: task.planning_demand(CoreClass::Big),
                    cost_per_beat: task.measured_cost_per_beat(),
                    open_loop: task.open_loop_snap(),
                }
            }));
        }
        debug_assert_eq!(
            tasks_digest,
            Self::tasks_section_digest(&self.tasks),
            "live and snapshot task digests drifted apart"
        );

        let sections = [chip_digest, tasks_digest, cores_digest, clusters_digest];
        self.changed = match self.prev_sections {
            Some(prev) => ChangeMask {
                chip: sections[0] != prev[0],
                tasks: sections[1] != prev[1],
                cores: sections[2] != prev[2],
                clusters: sections[3] != prev[3],
            },
            None => ChangeMask::ALL,
        };
        self.prev_sections = Some(sections);
    }

    /// How many captures so far rebuilt the task section (the rest were
    /// digest-gated to a read-only pass).
    pub fn task_rebuilds(&self) -> u64 {
        self.task_rebuilds
    }

    /// How many captures so far refreshed any of the chip-scalar, core, or
    /// cluster dynamic sections (untrusted captures always refresh; see
    /// [`SystemSnapshot::capture_gated`]).
    pub fn dynamic_refreshes(&self) -> u64 {
        self.dynamic_refreshes
    }

    // Per-section FNV-1a sub-digests: chip scalars, tasks, cores, clusters.
    // `now` is excluded (see [`ChangeMask`]); otherwise these cover the same
    // fields as [`SystemSnapshot::digest`], which stays untouched so tape
    // digests are unaffected.

    fn chip_digest(&self) -> u64 {
        let mut chip = Fnv::new();
        chip.f64(self.chip_power.value());
        match self.hottest {
            Some(c) => {
                chip.u64(1);
                chip.f64(c.value());
            }
            None => chip.u64(0),
        }
        chip.finish()
    }

    /// Chip-scalar digest streamed straight from the live system —
    /// [`Self::chip_digest`] is its snapshot-side twin.
    fn live_chip_digest(sys: &System) -> u64 {
        let mut h = Fnv::new();
        h.f64(sys.chip_power().value());
        match sys.thermal().map(|t| t.hottest()) {
            Some(c) => {
                h.u64(1);
                h.f64(c.value());
            }
            None => h.u64(0),
        }
        h.finish()
    }

    /// Core-section digest streamed straight from the live system —
    /// [`Self::cores_digest`] is its snapshot-side twin.
    fn live_cores_digest(sys: &System) -> u64 {
        let chip = sys.chip();
        let mut h = Fnv::new();
        h.u64(chip.cores().len() as u64);
        for d in chip.cores() {
            h.f64(sys.core_utilization(d.id()));
            h.f64(chip.core_supply(d.id()).value());
        }
        h.finish()
    }

    /// Cluster-section digest streamed straight from the live system —
    /// [`Self::clusters_digest`] is its snapshot-side twin.
    fn live_clusters_digest(sys: &System) -> u64 {
        let chip = sys.chip();
        let mut h = Fnv::new();
        h.u64(chip.clusters().len() as u64);
        for cl in chip.clusters() {
            h.u64(cl.level().0 as u64);
            h.u64(cl.effective_target().0 as u64);
            h.u64(u64::from(cl.is_off()));
            h.f64(cl.supply_per_core().value());
            h.f64(sys.cluster_power(cl.id()).value());
        }
        h.finish()
    }

    /// Task-section digest streamed straight from the live system, hashing
    /// exactly the fields (in exactly the order) a rebuild would store —
    /// [`Self::tasks_section_digest`] is its snapshot-side twin, and
    /// `capture` debug-asserts the two stay in lockstep.
    fn live_tasks_digest(sys: &System) -> u64 {
        let chip = sys.chip();
        let mut h = Fnv::new();
        // Length prefix counts *active* tasks (`task_count` also counts
        // removed ids, which stay allocated).
        h.u64(sys.task_iter().count() as u64);
        for id in sys.task_iter() {
            let task = sys.task(id);
            let core = sys.core_of(id);
            let class = chip.core(core).class();
            h.u64(id.0 as u64);
            h.u64(core.0 as u64);
            h.u64(u64::from(task.priority().value()));
            h.f64(sys.share_of(id).value());
            h.f64(sys.granted(id).value());
            h.f64(sys.pelt_load(id));
            h.u64(u64::from(sys.is_stalled(id)));
            h.f64(task.heart_rate());
            h.f64(task.spec().target_range().target());
            h.f64(task.demand(class, class).value());
            h.f64(task.planning_demand(CoreClass::Little).value());
            h.f64(task.planning_demand(CoreClass::Big).value());
            match task.measured_cost_per_beat() {
                Some(c) => {
                    h.u64(1);
                    h.f64(c);
                }
                None => h.u64(0),
            }
            // Hashed only when present so closed-loop digests (and the
            // committed golden tapes built from them) are byte-unchanged.
            if let Some(o) = task.open_loop_snap() {
                h.u64(1);
                h.u64(u64::from(o.queue_depth));
                h.f64(o.p99_ms);
                h.f64(o.slo_ms);
                h.u64(o.shed);
            }
        }
        h.finish()
    }

    fn tasks_section_digest(tasks: &[TaskSnap]) -> u64 {
        let mut h = Fnv::new();
        h.u64(tasks.len() as u64);
        for t in tasks {
            h.u64(t.id.0 as u64);
            h.u64(t.core.0 as u64);
            h.u64(u64::from(t.priority));
            h.f64(t.share.value());
            h.f64(t.granted.value());
            h.f64(t.pelt_load);
            h.u64(u64::from(t.stalled));
            h.f64(t.heart_rate);
            h.f64(t.target_rate);
            h.f64(t.demand.value());
            h.f64(t.demand_little.value());
            h.f64(t.demand_big.value());
            match t.cost_per_beat {
                Some(c) => {
                    h.u64(1);
                    h.f64(c);
                }
                None => h.u64(0),
            }
            if let Some(o) = t.open_loop {
                h.u64(1);
                h.u64(u64::from(o.queue_depth));
                h.f64(o.p99_ms);
                h.f64(o.slo_ms);
                h.u64(o.shed);
            }
        }
        h.finish()
    }

    fn cores_digest(&self) -> u64 {
        let mut cores = Fnv::new();
        cores.u64(self.cores.len() as u64);
        for c in &self.cores {
            cores.f64(c.utilization);
            cores.f64(c.supply.value());
        }
        cores.finish()
    }

    fn clusters_digest(&self) -> u64 {
        let mut clusters = Fnv::new();
        clusters.u64(self.clusters.len() as u64);
        for cl in &self.clusters {
            clusters.u64(cl.level as u64);
            clusters.u64(cl.effective_target as u64);
            clusters.u64(u64::from(cl.off));
            clusters.f64(cl.supply_per_core.value());
            clusters.f64(cl.power.value());
        }
        clusters.finish()
    }

    /// The snapshot of `task`, if active (binary search — tasks are sorted).
    pub fn task(&self, task: TaskId) -> Option<&TaskSnap> {
        self.tasks
            .binary_search_by_key(&task, |t| t.id)
            .ok()
            .map(|i| &self.tasks[i])
    }

    /// The snapshot of `core`.
    pub fn core(&self, core: CoreId) -> &CoreSnap {
        &self.cores[core.0]
    }

    /// The snapshot of `cluster`.
    pub fn cluster(&self, cluster: ClusterId) -> &ClusterSnap {
        &self.clusters[cluster.0]
    }

    /// Tasks mapped to `core`, ascending by id.
    pub fn tasks_on(&self, core: CoreId) -> impl Iterator<Item = &TaskSnap> + '_ {
        self.tasks.iter().filter(move |t| t.core == core)
    }

    /// Whether any task is mapped to a core of `cluster`.
    pub fn cluster_has_tasks(&self, cluster: ClusterId) -> bool {
        self.tasks
            .iter()
            .any(|t| self.core(t.core).cluster == cluster)
    }

    /// FNV-1a digest over the full observable state, for tape records.
    /// Stable across platforms and hasher seeds (unlike `DefaultHasher`).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.now.as_micros());
        h.f64(self.chip_power.value());
        match self.hottest {
            Some(c) => {
                h.u64(1);
                h.f64(c.value());
            }
            None => h.u64(0),
        }
        h.u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.u64(t.id.0 as u64);
            h.u64(t.core.0 as u64);
            h.u64(u64::from(t.priority));
            h.f64(t.share.value());
            h.f64(t.granted.value());
            h.f64(t.pelt_load);
            h.u64(u64::from(t.stalled));
            h.f64(t.heart_rate);
            h.f64(t.target_rate);
            h.f64(t.demand.value());
            h.f64(t.demand_little.value());
            h.f64(t.demand_big.value());
            match t.cost_per_beat {
                Some(c) => {
                    h.u64(1);
                    h.f64(c);
                }
                None => h.u64(0),
            }
            if let Some(o) = t.open_loop {
                h.u64(1);
                h.u64(u64::from(o.queue_depth));
                h.f64(o.p99_ms);
                h.f64(o.slo_ms);
                h.u64(o.shed);
            }
        }
        for c in &self.cores {
            h.f64(c.utilization);
            h.f64(c.supply.value());
        }
        for cl in &self.clusters {
            h.u64(cl.level as u64);
            h.u64(cl.effective_target as u64);
            h.u64(u64::from(cl.off));
            h.f64(cl.supply_per_core.value());
            h.f64(cl.power.value());
        }
        h.finish()
    }
}

/// Minimal FNV-1a, enough for stable tape digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AllocationPolicy;
    use ppm_platform::chip::Chip;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task};

    fn sys_with_tasks(n: usize) -> System {
        let mut sys = System::new(Chip::tc2(), AllocationPolicy::Market);
        for i in 0..n {
            sys.add_task(
                Task::new(
                    TaskId(i),
                    BenchmarkSpec::of(Benchmark::Blackscholes, Input::Large).expect("variant"),
                    Priority(1),
                ),
                CoreId(i % 3),
            );
        }
        sys
    }

    #[test]
    fn capture_mirrors_system_state() {
        let mut sys = sys_with_tasks(3);
        sys.set_share(TaskId(1), ProcessingUnits(99.0));
        sys.power_off(ClusterId(1));
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);

        assert_eq!(snap.tasks.len(), 3);
        assert_eq!(
            snap.task(TaskId(1)).expect("t1").share,
            ProcessingUnits(99.0)
        );
        assert_eq!(snap.task(TaskId(2)).expect("t2").core, CoreId(2));
        assert!(snap.task(TaskId(7)).is_none());
        assert!(snap.cluster(ClusterId(1)).off);
        assert!(!snap.cluster(ClusterId(0)).off);
        assert_eq!(snap.cores.len(), sys.chip().cores().len());
        assert_eq!(snap.tasks_on(CoreId(0)).count(), 1);
        assert!(snap.cluster_has_tasks(ClusterId(0)));
        assert!(!snap.cluster_has_tasks(ClusterId(1)));
    }

    #[test]
    fn ladder_arithmetic_mirrors_vf_table() {
        let sys = sys_with_tasks(1);
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);
        let cl = snap.cluster(ClusterId(0));
        let table = sys.chip().cluster(ClusterId(0)).table();
        assert_eq!(cl.max_level(), table.max_level().0);
        assert_eq!(
            cl.step_up(),
            table.step_up(sys.chip().cluster(ClusterId(0)).level()).0
        );
        for d in [0.0, 200.0, 349.0, 351.0, 999.0, 1000.0, 5000.0] {
            assert_eq!(
                cl.level_for_demand(ProcessingUnits(d)),
                table.level_for_demand(ProcessingUnits(d)).0,
                "demand {d}"
            );
        }
        assert_eq!(
            cl.supply_up(),
            Some(
                table
                    .point(table.step_up(ppm_platform::vf::VfLevel(0)))
                    .supply()
            )
        );
        assert_eq!(cl.supply_down(), None);
    }

    #[test]
    fn digest_is_sensitive_and_reproducible() {
        let mut sys = sys_with_tasks(2);
        let mut a = SystemSnapshot::new();
        a.capture(&sys);
        let mut b = SystemSnapshot::new();
        b.capture(&sys);
        assert_eq!(a.digest(), b.digest());
        sys.set_share(TaskId(0), ProcessingUnits(1.0));
        b.capture(&sys);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn change_mask_tracks_sections_across_captures() {
        let mut sys = sys_with_tasks(2);
        let mut snap = SystemSnapshot::new();

        snap.capture(&sys);
        assert_eq!(snap.changed, ChangeMask::ALL, "first capture is all-dirty");
        assert_eq!(snap.changed.dirty_sections(), 4);

        snap.capture(&sys);
        assert!(!snap.changed.any(), "identical recapture must be clean");
        assert_eq!(snap.changed.dirty_sections(), 0);

        sys.set_share(TaskId(0), ProcessingUnits(42.0));
        snap.capture(&sys);
        assert!(snap.changed.tasks, "share write dirties the task section");
        assert!(!snap.changed.chip);
        assert!(!snap.changed.cores);
        assert!(!snap.changed.clusters);

        sys.power_off(ClusterId(1));
        snap.capture(&sys);
        assert!(snap.changed.clusters, "gating dirties the cluster section");
        assert!(snap.changed.cores, "gating zeroes the cores' supply");
        assert!(!snap.changed.tasks);
    }

    #[test]
    fn steady_recapture_skips_the_task_rebuild() {
        let mut sys = sys_with_tasks(3);
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);
        assert_eq!(snap.task_rebuilds(), 1, "first capture always rebuilds");
        let frozen = format!("{:?}", snap.tasks);

        snap.capture(&sys);
        snap.capture(&sys);
        assert_eq!(snap.task_rebuilds(), 1, "identical recaptures are gated");
        assert_eq!(format!("{:?}", snap.tasks), frozen);

        sys.set_share(TaskId(2), ProcessingUnits(17.0));
        snap.capture(&sys);
        assert_eq!(snap.task_rebuilds(), 2, "a task change forces a rebuild");
        assert_eq!(
            snap.task(TaskId(2)).expect("t2").share,
            ProcessingUnits(17.0)
        );

        sys.remove_task(TaskId(0));
        snap.capture(&sys);
        assert_eq!(
            snap.task_rebuilds(),
            3,
            "membership change forces a rebuild"
        );
        assert_eq!(snap.tasks.len(), 2);
    }

    #[test]
    fn trusted_recapture_skips_the_dynamic_refresh() {
        let mut sys = sys_with_tasks(2);
        let mut snap = SystemSnapshot::new();
        snap.capture_gated(&sys, true);
        assert_eq!(
            snap.dynamic_refreshes(),
            1,
            "first capture always refreshes"
        );
        let frozen = format!("{:?} {:?}", snap.cores, snap.clusters);

        snap.capture_gated(&sys, true);
        snap.capture_gated(&sys, true);
        assert_eq!(
            snap.dynamic_refreshes(),
            1,
            "steady trusted recaptures are gated"
        );
        assert_eq!(format!("{:?} {:?}", snap.cores, snap.clusters), frozen);

        sys.power_off(ClusterId(1));
        snap.capture_gated(&sys, true);
        assert_eq!(snap.dynamic_refreshes(), 2, "gating forces a refresh");
        assert!(snap.cluster(ClusterId(1)).off);
    }

    #[test]
    fn untrusted_recapture_always_refreshes() {
        let sys = sys_with_tasks(1);
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);
        snap.capture(&sys);
        snap.capture_gated(&sys, false);
        assert_eq!(snap.dynamic_refreshes(), 3);
    }

    #[test]
    fn live_and_snapshot_task_digests_agree() {
        let mut sys = sys_with_tasks(4);
        sys.set_share(TaskId(1), ProcessingUnits(3.5));
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);
        assert_eq!(
            SystemSnapshot::live_tasks_digest(&sys),
            SystemSnapshot::tasks_section_digest(&snap.tasks)
        );
    }

    #[test]
    fn recapture_reuses_buffers() {
        let sys = sys_with_tasks(3);
        let mut snap = SystemSnapshot::new();
        snap.capture(&sys);
        let tasks_cap = snap.tasks.capacity();
        let d0 = snap.digest();
        snap.capture(&sys);
        assert_eq!(snap.tasks.capacity(), tasks_cap);
        assert_eq!(snap.digest(), d0);
    }
}
