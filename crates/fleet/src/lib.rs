//! # ppm-fleet — a multi-chip fleet under one datacenter power cap
//!
//! The rest of the workspace simulates *one* chip: a [`Simulation`] owns a
//! [`System`] and a [`PowerManager`](ppm_sched::executor::PowerManager) that
//! steers it inside a fixed TDP. This crate lifts that single-chip
//! assumption: a [`Fleet`] owns N complete chip simulations — each with its
//! own chip topology, V-F tables, electricity price, workload, and fault
//! plan — and a [`FleetExchange`] that turns the *datacenter* power cap
//! into traded per-chip TDP allowances, running the paper's §3.2 money
//! machinery one level up (see the [`exchange`] module docs for the
//! clearing rule).
//!
//! Execution alternates two strictly separated phases per epoch:
//!
//! 1. **Step** — every chip advances by one epoch. Chips share no state,
//!    so the fleet steps them in parallel with the same worker-pool idiom
//!    the bench sweeps use (atomic work index over `std::thread::scope`);
//!    each chip's trajectory is bit-identical regardless of thread count.
//! 2. **Trade** — serially, in chip order: collect each manager's
//!    [`FleetBid`](ppm_sched::executor::FleetBid) (its market's marginal
//!    heart-rate-per-watt, via
//!    [`PowerManager::fleet_bid`](ppm_sched::executor::PowerManager::fleet_bid)),
//!    clear the exchange, and push each cleared allowance back as the
//!    chip's TDP for the next epoch
//!    ([`Simulation::set_power_budget`]).
//!
//! Determinism rules are unchanged from the single-chip stack: seeded,
//! bit-identical across thread counts, and a fleet of one chip with no
//! exchange is **byte-identical** to the standalone [`Simulation`] —
//! same tape, same metrics — because `run_for` in epoch-sized slices is
//! exactly the standalone run whenever the epoch is a multiple of the
//! chip's quantum (which [`Fleet::add_chip`] enforces).
//!
//! ```
//! use ppm_fleet::scenario::synthetic_fleet;
//! use ppm_platform::units::{SimDuration, Watts};
//!
//! // Four heterogeneous chips bidding for a 12 W datacenter cap.
//! let mut fleet = synthetic_fleet(4, 4, 2, 6, Some(Watts(12.0)), None);
//! fleet.run_for(SimDuration::from_secs(1));
//! let rollup = fleet.audit_rollup();
//! assert!(rollup.is_clean(), "{}", rollup.render());
//! assert_eq!(fleet.exchange().unwrap().epochs(), 10);
//! ```

#![warn(missing_docs)]

pub mod exchange;
pub mod scenario;
pub mod trace;

pub use exchange::{ChipEpoch, ChipSpec, EpochRecord, FleetExchange};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ppm_platform::units::{SimDuration, Watts};
use ppm_sched::audit::Auditor;
use ppm_sched::executor::{PowerManager, Simulation};

/// One member of the fleet: a complete chip simulation plus its static
/// exchange parameters.
pub struct FleetChip<M: PowerManager> {
    sim: Simulation<M>,
    spec: ChipSpec,
}

impl<M: PowerManager> FleetChip<M> {
    /// The chip's simulation.
    pub fn sim(&self) -> &Simulation<M> {
        &self.sim
    }

    /// Mutable access to the chip's simulation (admit tasks, inspect
    /// tapes/auditors between epochs).
    pub fn sim_mut(&mut self) -> &mut Simulation<M> {
        &mut self.sim
    }

    /// The chip's exchange parameters.
    pub fn spec(&self) -> ChipSpec {
        self.spec
    }

    /// Dissolve into the owned simulation (metrics extraction after a run).
    pub fn into_sim(self) -> Simulation<M> {
        self.sim
    }
}

/// N chip simulations stepped in lockstep epochs, with an optional
/// power-budget exchange clearing between epochs (see the crate docs).
pub struct Fleet<M: PowerManager> {
    chips: Vec<FleetChip<M>>,
    exchange: Option<FleetExchange>,
    fleet_auditor: Option<Auditor>,
    epoch: SimDuration,
    threads: usize,
    // Scratch reused every trade so the steady state stays allocation-free
    // outside the exchange ledger (which, like a tape, grows by design).
    bids: Vec<(Option<ppm_sched::executor::FleetBid>, ChipSpec)>,
    powers: Vec<Watts>,
}

impl<M: PowerManager> Default for Fleet<M> {
    fn default() -> Fleet<M> {
        Fleet::new()
    }
}

impl<M: PowerManager> Fleet<M> {
    /// Default trading epoch: 100 ms (100 execution quanta), ~3 market
    /// bidding rounds per epoch so each chip's equilibrium prices are
    /// fresh when it bids.
    pub const DEFAULT_EPOCH: SimDuration = SimDuration(100_000);

    /// An empty fleet with the default epoch, stepping serially.
    pub fn new() -> Fleet<M> {
        Fleet {
            chips: Vec::new(),
            exchange: None,
            fleet_auditor: None,
            epoch: Self::DEFAULT_EPOCH,
            threads: 1,
            bids: Vec::new(),
            powers: Vec::new(),
        }
    }

    /// Attach a power-budget exchange clearing `cap` watts per epoch.
    pub fn with_exchange(mut self, cap: Watts) -> Fleet<M> {
        self.exchange = Some(FleetExchange::new(cap));
        self
    }

    /// Audit every exchange clearing as it happens (see
    /// [`FleetExchange::audit_epoch`]). Findings surface through
    /// [`Fleet::fleet_auditor`] and [`Fleet::audit_rollup`].
    pub fn with_fleet_auditor(mut self) -> Fleet<M> {
        self.fleet_auditor = Some(Auditor::new());
        self
    }

    /// Use a custom trading epoch.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch, or when a chip already added has a quantum
    /// that does not divide `epoch`.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Fleet<M> {
        assert!(!epoch.is_zero(), "epoch must be positive");
        for chip in &self.chips {
            Self::assert_aligned(epoch, chip.sim.quantum());
        }
        self.epoch = epoch;
        self
    }

    /// Step chips on up to `threads` worker threads (capped at the chip
    /// count; `0` or `1` steps serially). Stepping order never affects
    /// results — chips share no state and the trade phase is serial in
    /// chip order — so any thread count produces bit-identical output.
    pub fn with_threads(mut self, threads: usize) -> Fleet<M> {
        self.threads = threads.max(1);
        self
    }

    fn assert_aligned(epoch: SimDuration, quantum: SimDuration) {
        assert!(
            epoch.as_micros().is_multiple_of(quantum.as_micros()),
            "epoch ({} us) must be a whole number of chip quanta ({} us): \
             epoch-sliced stepping is bit-identical to a continuous run \
             only on quantum boundaries",
            epoch.as_micros(),
            quantum.as_micros()
        );
    }

    /// Admit a chip.
    ///
    /// # Panics
    ///
    /// Panics when the chip's execution quantum does not divide the fleet
    /// epoch (the byte-identity guarantee needs whole quanta per epoch),
    /// or when chips are added after the first trade.
    pub fn add_chip(&mut self, sim: Simulation<M>, spec: ChipSpec) {
        Self::assert_aligned(self.epoch, sim.quantum());
        assert!(
            self.exchange.as_ref().is_none_or(|ex| ex.epochs() == 0),
            "fleet membership is fixed once trading starts"
        );
        self.chips.push(FleetChip { sim, spec });
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// True when no chip was added yet.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The fleet members, in chip order.
    pub fn chips(&self) -> &[FleetChip<M>] {
        &self.chips
    }

    /// Mutable access to every fleet member, in chip order (attach
    /// telemetry, admit tasks between epochs).
    pub fn chips_mut(&mut self) -> &mut [FleetChip<M>] {
        &mut self.chips
    }

    /// Chip `i`.
    pub fn chip(&self, i: usize) -> &FleetChip<M> {
        &self.chips[i]
    }

    /// Mutable access to chip `i`.
    pub fn chip_mut(&mut self, i: usize) -> &mut FleetChip<M> {
        &mut self.chips[i]
    }

    /// Dissolve the fleet into its chips (in chip order), e.g. to pull
    /// run metrics out of each simulation after the run.
    pub fn into_chips(self) -> Vec<FleetChip<M>> {
        self.chips
    }

    /// The trading epoch.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The exchange, when attached.
    pub fn exchange(&self) -> Option<&FleetExchange> {
        self.exchange.as_ref()
    }

    /// The exchange auditor, when attached.
    pub fn fleet_auditor(&self) -> Option<&Auditor> {
        self.fleet_auditor.as_ref()
    }

    /// Close the books across the whole fleet into one report: the
    /// exchange auditor's findings plus every chip's own auditor, each
    /// prefixed with its source (`exchange` / `chip i`).
    pub fn audit_rollup(&self) -> Auditor {
        let mut roll = Auditor::new();
        if let Some(a) = &self.fleet_auditor {
            roll.absorb("exchange", a);
        }
        for (i, chip) in self.chips.iter().enumerate() {
            if let Some(a) = chip.sim.auditor() {
                roll.absorb(&format!("chip {i}"), a);
            }
        }
        roll
    }

    /// Advance the whole fleet by `duration`: step all chips one epoch
    /// (in parallel when [`Fleet::with_threads`] allows), then clear the
    /// exchange and apply the traded TDPs, repeating. A final partial
    /// epoch is stepped but not traded.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn run_for(&mut self, duration: SimDuration)
    where
        M: Send,
    {
        assert!(!self.chips.is_empty(), "fleet has no chips");
        let mut remaining = duration.as_micros();
        while remaining > 0 {
            let dt = remaining.min(self.epoch.as_micros());
            self.step_all(SimDuration(dt));
            remaining -= dt;
            if dt == self.epoch.as_micros() {
                self.trade();
            }
        }
    }

    /// Step every chip by `dt`. Chips are independent simulations, so the
    /// sweep idiom applies: an atomic work index over scoped threads, each
    /// worker claiming the next un-stepped chip. Results do not depend on
    /// the claim order.
    fn step_all(&mut self, dt: SimDuration)
    where
        M: Send,
    {
        let workers = self.threads.min(self.chips.len());
        if workers <= 1 {
            for chip in &mut self.chips {
                chip.sim.run_for(dt);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut FleetChip<M>>> = self.chips.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else { break };
                    slot.lock().expect("chip slot poisoned").sim.run_for(dt);
                });
            }
        });
    }

    /// One exchange clearing: gather bids and power readings in chip
    /// order, clear, audit the epoch, and push each cleared allowance back
    /// as the chip's TDP. Entirely serial — the fleet's trajectory depends
    /// only on chip order, never on how the step phase was threaded.
    fn trade(&mut self) {
        let Some(ex) = self.exchange.as_mut() else {
            return;
        };
        let at = self.chips[0].sim.system().now();
        self.bids.clear();
        self.powers.clear();
        for chip in &self.chips {
            self.bids.push((chip.sim.manager().fleet_bid(), chip.spec));
            self.powers.push(chip.sim.system().chip_power());
        }
        let idx = ex.clear(at, &self.bids, &self.powers);
        if let Some(aud) = self.fleet_auditor.as_mut() {
            let rec = &ex.ledger()[idx];
            aud.begin_quantum(rec.at, rec.epoch);
            ex.audit_epoch(rec, aud);
        }
        for (i, chip) in self.chips.iter_mut().enumerate() {
            if let Some(w) = ex.cleared_of(i) {
                chip.sim.set_power_budget(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::config::PpmConfig;
    use ppm_core::manager::tc2_ppm_system;
    use ppm_platform::units::Watts;
    use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
    use ppm_workload::task::{Priority, Task, TaskId};

    fn tc2_tasks() -> Vec<Task> {
        [
            (Benchmark::Swaptions, Input::Large),
            (Benchmark::Bodytrack, Input::Large),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(b, input))| {
            Task::new(
                TaskId(i),
                BenchmarkSpec::of(b, input).expect("variant"),
                Priority::NORMAL,
            )
        })
        .collect()
    }

    fn tc2_sim(tdp: Watts) -> Simulation<ppm_core::PpmManager> {
        let (sys, mgr) = tc2_ppm_system(tc2_tasks(), PpmConfig::tc2_with_tdp(tdp));
        Simulation::new(sys, mgr).with_tape()
    }

    #[test]
    fn lone_chip_without_exchange_matches_the_standalone_run() {
        let mut standalone = tc2_sim(Watts(4.0));
        standalone.run_for(SimDuration::from_secs(2));

        let mut fleet = Fleet::new();
        fleet.add_chip(
            tc2_sim(Watts(4.0)),
            ChipSpec::uniform(Watts(1.0), Watts(8.0)),
        );
        fleet.run_for(SimDuration::from_secs(2));

        let a = standalone.tape().expect("tape").render();
        let b = fleet.chip(0).sim().tape().expect("tape").render();
        assert!(!a.is_empty());
        assert_eq!(a, b, "epoch-sliced run must be byte-identical");
    }

    #[test]
    fn trading_fleet_is_bit_identical_across_thread_counts() {
        let build = |threads: usize| {
            let mut fleet = Fleet::new().with_exchange(Watts(7.0)).with_threads(threads);
            for tdp in [3.0, 4.0] {
                fleet.add_chip(
                    tc2_sim(Watts(tdp)),
                    ChipSpec::uniform(Watts(1.0), Watts(8.0)),
                );
            }
            fleet.run_for(SimDuration::from_secs(1));
            let tapes: Vec<String> = fleet
                .chips()
                .iter()
                .map(|c| c.sim().tape().expect("tape").render())
                .collect();
            (tapes, fleet.exchange().expect("exchange").render_ledger())
        };
        let (tapes1, ledger1) = build(1);
        let (tapes4, ledger4) = build(4);
        assert_eq!(tapes1, tapes4);
        assert_eq!(ledger1, ledger4);
        assert_eq!(ledger1.lines().count(), 10);
    }

    #[test]
    fn traded_allowance_becomes_the_chip_tdp() {
        let mut fleet = Fleet::new().with_exchange(Watts(6.0)).with_fleet_auditor();
        for _ in 0..2 {
            fleet.add_chip(
                tc2_sim(Watts(4.0)),
                ChipSpec::uniform(Watts(0.5), Watts(8.0)),
            );
        }
        fleet.run_for(SimDuration::from_secs(1));
        let ex = fleet.exchange().expect("exchange");
        assert_eq!(ex.epochs(), 10);
        for i in 0..2 {
            let cleared = ex.cleared_of(i).expect("traded");
            assert_eq!(fleet.chip(i).sim().system().tdp(), Some(cleared));
        }
        let roll = fleet.audit_rollup();
        assert!(roll.is_clean(), "{}", roll.render());
        assert_eq!(roll.quanta_audited(), 10);
    }

    #[test]
    fn partial_tail_epoch_steps_without_trading() {
        let mut fleet = Fleet::new().with_exchange(Watts(6.0));
        fleet.add_chip(
            tc2_sim(Watts(4.0)),
            ChipSpec::uniform(Watts(0.5), Watts(8.0)),
        );
        fleet.run_for(SimDuration(250_000));
        assert_eq!(fleet.exchange().expect("exchange").epochs(), 2);
        assert_eq!(
            fleet.chip(0).sim().system().now().as_micros(),
            250_000,
            "the tail half-epoch still executes"
        );
    }

    #[test]
    #[should_panic(expected = "whole number of chip quanta")]
    fn misaligned_chip_quantum_is_rejected() {
        let mut fleet: Fleet<ppm_core::PpmManager> = Fleet::new().with_epoch(SimDuration(1500));
        fleet.add_chip(
            tc2_sim(Watts(4.0)),
            ChipSpec::uniform(Watts(1.0), Watts(8.0)),
        );
    }
}
