//! Fleet-wide observability bridges: turn the exchange ledger and every
//! chip's telemetry into the `ppm-obs` fleet exporters' inputs — one
//! Chrome trace with a labelled track pair per chip plus an exchange
//! counter track, and one wide chip-tagged CSV joined on the simulated
//! timeline.
//!
//! These are glue, not new formats: the per-chip content goes through the
//! exact same emitters the single-chip exporters use, so a fleet trace of
//! one chip shows the same counters and spans a standalone trace would.

use std::io::{self, Write};

use ppm_obs::export::{write_fleet_chrome_trace, write_fleet_csv, CounterSample};
use ppm_obs::recorder::SeriesRecorder;
use ppm_obs::{AggSnapshot, AlertSnapshot, ScrapeSnapshot};
use ppm_sched::executor::PowerManager;

use crate::exchange::FleetExchange;
use crate::Fleet;

/// The exchange ledger as a counter track: one sample per trading epoch
/// carrying the cap, measured fleet power, desired fleet power, the
/// allowance after the Δ update, and the discovered watt price. Feed it to
/// [`write_fleet_chrome_trace`] alongside the chip recorders.
pub fn exchange_counter_track(ex: &FleetExchange) -> Vec<CounterSample> {
    ex.ledger()
        .iter()
        .map(|rec| CounterSample {
            t_us: rec.at.as_micros(),
            series: vec![
                ("cap_w".to_string(), ex.cap().value()),
                ("total_power_w".to_string(), rec.total_power.value()),
                ("desired_w".to_string(), rec.total_desired.value()),
                ("allowance".to_string(), rec.allowance_after.value()),
                ("price_per_watt".to_string(), rec.price_per_watt),
            ],
        })
        .collect()
}

/// Every chip's recorder, in chip order. Chips without telemetry enabled
/// are absent — and if *any* chip lacks telemetry the indices would no
/// longer be chip indices, so this returns `None` unless every chip
/// recorded.
pub fn fleet_recorders<M: PowerManager>(fleet: &Fleet<M>) -> Option<Vec<&SeriesRecorder>> {
    fleet
        .chips()
        .iter()
        .map(|c| c.sim().telemetry().map(|t| &t.recorder))
        .collect()
}

/// Write the whole fleet as one Chrome trace: chip-tagged counter/span
/// track pairs (via the shared single-chip emitter) plus the exchange
/// counter track when the fleet trades. Fails with `InvalidInput` if any
/// chip ran without telemetry.
pub fn write_trace<M: PowerManager, W: Write>(
    fleet: &Fleet<M>,
    w: &mut W,
    stride: usize,
) -> io::Result<()> {
    let recs = fleet_recorders(fleet).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "every chip needs telemetry enabled to export a fleet trace",
        )
    })?;
    let exchange = fleet
        .exchange()
        .map(exchange_counter_track)
        .unwrap_or_default();
    write_fleet_chrome_trace(&recs, &exchange, w, stride)
}

/// Merge every chip's live aggregation windows and alert state into one
/// fleet-wide scrape snapshot: per-chip sections labelled `chip {i}` plus
/// a `fleet` rollup composed with [`AggSnapshot::absorb`] — the same
/// shape [`Fleet::audit_rollup`] gives the auditors. Chips without
/// aggregation attached simply contribute nothing; an unobserved fleet
/// yields the default (empty) snapshot.
pub fn fleet_scrape_snapshot<M: PowerManager>(fleet: &Fleet<M>) -> ScrapeSnapshot {
    let mut chips: Vec<AggSnapshot> = Vec::new();
    let mut alerts: Option<AlertSnapshot> = None;
    let mut at_us = 0;
    for (i, chip) in fleet.chips().iter().enumerate() {
        let Some(tel) = chip.sim().telemetry() else {
            continue;
        };
        if let Some(agg) = &tel.aggregate {
            chips.push(agg.snapshot(&format!("chip {i}")));
            at_us = at_us.max(agg.now_us());
        }
        if let Some(engine) = &tel.alerts {
            let snap = engine.snapshot();
            match &mut alerts {
                Some(merged) => merged.absorb(&snap),
                None => alerts = Some(snap),
            }
        }
    }
    if chips.is_empty() && alerts.is_none() {
        return ScrapeSnapshot::default();
    }
    let window_us = chips
        .first()
        .map_or(ppm_obs::DEFAULT_AGG_WINDOW_US, |c| c.window_us);
    let mut rollup = AggSnapshot::empty("fleet", window_us);
    for chip in &chips {
        rollup.absorb(chip);
    }
    ScrapeSnapshot {
        at_us,
        fleet: Some(rollup),
        chips,
        alerts,
    }
}

/// Merge every chip's alert engine into one fleet tape: the rendered
/// per-chip tapes concatenated under `chip {i}` headings, so a fleet run
/// prints the same transition lines each standalone chip would.
pub fn fleet_alert_tape<M: PowerManager>(fleet: &Fleet<M>) -> Option<String> {
    let mut out = String::new();
    for (i, chip) in fleet.chips().iter().enumerate() {
        let Some(engine) = chip.sim().telemetry().and_then(|t| t.alerts.as_ref()) else {
            continue;
        };
        out.push_str(&format!("chip {i}:\n"));
        for line in engine.render().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// True when any chip's alert engine has fired at least once over the run
/// (used by `ppm-sim fleet --alerts` to pick its exit status).
pub fn fleet_alerts_fired<M: PowerManager>(fleet: &Fleet<M>) -> bool {
    fleet
        .chips()
        .iter()
        .filter_map(|c| c.sim().telemetry().and_then(|t| t.alerts.as_ref()))
        .any(|engine| engine.fired_total() > 0)
}

/// Write the whole fleet as one wide chip-tagged CSV joined on the
/// simulated timeline (`t_s,c0_…,c1_…`). Fails with `InvalidInput` if any
/// chip ran without telemetry or the recorders hold different row counts.
pub fn write_csv<M: PowerManager, W: Write>(fleet: &Fleet<M>, w: &mut W) -> io::Result<()> {
    let recs = fleet_recorders(fleet).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "every chip needs telemetry enabled to export a fleet CSV",
        )
    })?;
    write_fleet_csv(&recs, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::synthetic_fleet;
    use ppm_platform::units::{SimDuration, Watts};

    fn traced_fleet() -> Fleet<ppm_core::manager::PpmManager> {
        let mut fleet = synthetic_fleet(2, 4, 2, 4, Some(Watts(8.0)), None);
        for chip in fleet.chips_mut() {
            chip.sim_mut().set_telemetry(ppm_obs::Telemetry::new(4096));
        }
        fleet.run_for(SimDuration::from_millis(300));
        fleet
    }

    #[test]
    fn fleet_trace_carries_every_chip_and_the_exchange() {
        let fleet = traced_fleet();
        let track = exchange_counter_track(fleet.exchange().expect("exchange"));
        assert_eq!(track.len(), 3, "one sample per trading epoch");
        assert!(track[0].series.iter().any(|(k, _)| k == "price_per_watt"));

        let mut buf = Vec::new();
        write_trace(&fleet, &mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"chip 0 time-series (simulated time)\""));
        assert!(text.contains("\"chip 1 time-series (simulated time)\""));
        assert!(text.contains("\"fleet exchange (per-epoch clearing)\""));
        assert!(text.contains("\"name\":\"exchange\""));
    }

    #[test]
    fn fleet_csv_is_one_row_per_quantum_across_chips() {
        let fleet = traced_fleet();
        let mut buf = Vec::new();
        write_csv(&fleet, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 300 ms at the 1 ms quantum → 300 rows plus the header.
        assert_eq!(lines.len(), 1 + 300);
        assert!(lines[0].starts_with("t_s,c0_chip_power_w,"));
        assert!(lines[0].contains(",c1_chip_power_w,"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols);
        }
    }

    #[test]
    fn fleet_scrape_snapshot_merges_chip_windows_and_alerts() {
        let mut fleet = synthetic_fleet(2, 4, 2, 4, Some(Watts(8.0)), None);
        for chip in fleet.chips_mut() {
            chip.sim_mut().set_telemetry(
                ppm_obs::Telemetry::new(4096)
                    .with_aggregation(100_000)
                    .with_alerts(),
            );
        }
        fleet.run_for(SimDuration::from_millis(300));

        let snap = fleet_scrape_snapshot(&fleet);
        assert_eq!(snap.chips.len(), 2);
        assert_eq!(snap.chips[0].label, "chip 0");
        let rollup = snap.fleet.as_ref().expect("fleet rollup");
        // 300 ms over 100 ms windows: the first two close, the third is live.
        assert_eq!(snap.chips[0].windows_closed, 2);
        assert_eq!(rollup.windows_closed, 2);
        assert_eq!(
            rollup.totals.quanta,
            snap.chips.iter().map(|c| c.totals.quanta).sum::<u64>()
        );
        let alerts = snap.alerts.as_ref().expect("alert rollup");
        assert_eq!(alerts.rules.len(), ppm_obs::BurnRule::defaults().len());

        let tape = fleet_alert_tape(&fleet).expect("alert tape");
        assert!(tape.contains("chip 0:"));
        assert!(tape.contains("chip 1:"));
        assert!(!fleet_alerts_fired(&fleet), "healthy fleet stays silent");
    }

    #[test]
    fn unobserved_fleet_scrapes_empty() {
        let fleet = synthetic_fleet(2, 4, 2, 4, Some(Watts(8.0)), None);
        let snap = fleet_scrape_snapshot(&fleet);
        assert!(snap.fleet.is_none() && snap.chips.is_empty() && snap.alerts.is_none());
        assert!(fleet_alert_tape(&fleet).is_none());
        assert!(!fleet_alerts_fired(&fleet));
    }

    #[test]
    fn missing_telemetry_is_an_error_not_a_partial_export() {
        let fleet = synthetic_fleet(2, 4, 2, 4, Some(Watts(8.0)), None);
        let err = write_trace(&fleet, &mut Vec::new(), 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
