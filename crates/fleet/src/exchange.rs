//! The fleet power-budget exchange: the §3.2 money machinery one level up.
//!
//! Inside one chip, task agents bid virtual money for PU supply and the
//! chip agent steers total power through the money supply. The exchange
//! plays the identical game across chips: each chip is an agent bidding
//! for *watts* out of the datacenter power cap, its utility derived from
//! its own market's equilibrium prices (the [`FleetBid`] hook), divided by
//! the electricity price at its site. The exchange clears once per epoch:
//!
//! * **Allowance Δ** (the fleet agent, mirroring §3.2.3): the fleet
//!   allowance `A` grows while aggregate desired power exceeds the cap,
//!   freezes in the threshold buffer zone (`W ≥ 0.875·C`), and is cut
//!   proportionally when measured power overshoots the cap — with the same
//!   slew bounds ([`MAX_DELTA_RATE`], [`MIN_EMERGENCY_CUT_RATE`]) and
//!   emergency cooldown the chip agent uses.
//! * **Distribution**: chip `i` receives `a_i = A·u_i/Σu`, where
//!   `u_i = max(value_per_watt_i, floor) / electricity_price_i`.
//! * **Bidding**: a chip that wants more power than it last cleared spends
//!   its savings; `b_i = max(a_i + spend_i, MIN_BID)`.
//! * **Clearing**: the watt price is `P = Σb_i / C`; chip `i` clears
//!   `w_i = clamp(b_i/P, tdp_min_i, tdp_max_i)`, which becomes its TDP for
//!   the next epoch.
//! * **Conservation**: `m_i' = clamp(m_i + a_i − b_i, 0, cap_factor·a_i)`,
//!   exactly the task-agent savings rule.
//!
//! Every clearing appends an [`EpochRecord`] to the ledger, and
//! [`FleetExchange::audit_epoch`] re-derives all of the identities above
//! from the recorded inputs, closing the books to 1e-9.

use ppm_core::state::{PowerState, MAX_DELTA_RATE, MIN_EMERGENCY_CUT_RATE};
use ppm_platform::units::{Money, SimTime, Watts};
use ppm_sched::audit::Auditor;
use ppm_sched::executor::FleetBid;

/// Per-chip static exchange parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSpec {
    /// Relative electricity price at the chip's site (against the fleet's
    /// reference tariff). Utility divides by it, so with equal marginal
    /// value the cheaper site wins the budget.
    pub electricity_price: f64,
    /// Smallest TDP the exchange may clamp the chip to (keeps it alive).
    pub tdp_min: Watts,
    /// Largest TDP worth granting (the chip's physical peak).
    pub tdp_max: Watts,
}

impl ChipSpec {
    /// A spec at the reference tariff.
    pub fn uniform(tdp_min: Watts, tdp_max: Watts) -> ChipSpec {
        ChipSpec {
            electricity_price: 1.0,
            tdp_min,
            tdp_max,
        }
    }
}

/// One chip's row in an epoch clearing.
#[derive(Debug, Clone)]
pub struct ChipEpoch {
    /// The marginal utility the chip reported (0 for managers without a
    /// market — they bid at the utility floor).
    pub value_per_watt: f64,
    /// Utility after the floor and the electricity-price division.
    pub utility: f64,
    /// Observed power draw entering the clearing.
    pub power: Watts,
    /// Power the chip asked for.
    pub desired: Watts,
    /// Allowance `a_i` distributed this epoch.
    pub allowance: Money,
    /// Savings spent on top of the allowance.
    pub spend: Money,
    /// Bid `b_i` placed.
    pub bid: Money,
    /// Savings before the clearing.
    pub savings_before: Money,
    /// Savings after the conservation clamp.
    pub savings_after: Money,
    /// Raw cleared watts `b_i / P` before the per-chip clamp.
    pub cleared_raw: Watts,
    /// The TDP allowance the chip takes into the next epoch.
    pub cleared: Watts,
}

/// The ledger row for one epoch clearing.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch counter (1-based; epoch `k` clears after the `k`-th step).
    pub epoch: u64,
    /// Simulated time of the clearing.
    pub at: SimTime,
    /// Fleet power state this epoch.
    pub state: PowerState,
    /// Aggregate measured power `W = Σ power_i`.
    pub total_power: Watts,
    /// Aggregate desired power `D = Σ desired_i`.
    pub total_desired: Watts,
    /// Fleet allowance before the Δ update.
    pub allowance_before: Money,
    /// Fleet allowance after the Δ update — what was distributed.
    pub allowance_after: Money,
    /// The discovered watt price `P = Σb_i / C`.
    pub price_per_watt: f64,
    /// Per-chip rows, in chip order.
    pub chips: Vec<ChipEpoch>,
}

/// The fleet-level budget exchange (see the module docs).
#[derive(Debug)]
pub struct FleetExchange {
    cap: Watts,
    threshold: Watts,
    min_bid: Money,
    savings_cap_factor: f64,
    utility_floor: f64,
    allowance: Money,
    state: PowerState,
    emergency_cooldown: u32,
    savings: Vec<Money>,
    cleared: Vec<Watts>,
    epoch: u64,
    ledger: Vec<EpochRecord>,
}

impl FleetExchange {
    /// Epochs the allowance is frozen after an emergency cut, letting the
    /// cut land before cutting again (the chip agent's rule).
    pub const EMERGENCY_COOLDOWN_EPOCHS: u32 = 2;
    /// The threshold fraction of the cap (the default `W_th/W_tdp` ratio).
    pub const THRESHOLD_FACTOR: f64 = 0.875;
    /// Smallest bid a chip may place.
    pub const MIN_BID: Money = Money(0.01);
    /// Savings band: `m_i ≤ cap_factor · a_i` (the task-agent rule).
    pub const SAVINGS_CAP_FACTOR: f64 = 3.0;
    /// Utility floor: managers without a market (no [`FleetBid`]) bid as if
    /// a marginal watt bought this much value, so they keep receiving a
    /// share instead of starving.
    pub const UTILITY_FLOOR: f64 = 1e-3;
    /// Absolute/relative slack the audit closes the books to.
    pub const EPS: f64 = 1e-9;

    /// An exchange clearing `cap` watts per epoch.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive cap.
    pub fn new(cap: Watts) -> FleetExchange {
        assert!(cap.value() > 0.0, "power cap must be positive");
        FleetExchange {
            cap,
            threshold: Watts(cap.value() * Self::THRESHOLD_FACTOR),
            min_bid: Self::MIN_BID,
            savings_cap_factor: Self::SAVINGS_CAP_FACTOR,
            utility_floor: Self::UTILITY_FLOOR,
            // $1 per watt of cap: the watt price starts near unity.
            allowance: Money(cap.value()),
            state: PowerState::Normal,
            emergency_cooldown: 0,
            savings: Vec::new(),
            cleared: Vec::new(),
            epoch: 0,
            ledger: Vec::new(),
        }
    }

    /// The datacenter power cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// The current fleet allowance.
    pub fn allowance(&self) -> Money {
        self.allowance
    }

    /// The fleet power state after the most recent clearing.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Epochs cleared so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The full clearing ledger, in epoch order.
    pub fn ledger(&self) -> &[EpochRecord] {
        &self.ledger
    }

    /// Chip `i`'s current savings.
    pub fn savings_of(&self, chip: usize) -> Money {
        self.savings.get(chip).copied().unwrap_or(Money::ZERO)
    }

    /// Chip `i`'s most recently cleared TDP allowance.
    pub fn cleared_of(&self, chip: usize) -> Option<Watts> {
        (self.epoch > 0).then(|| self.cleared[chip])
    }

    /// Render the ledger to stable text: byte-equality of two renders is
    /// the fleet's behavioural-identity test, exactly like `Tape::render`.
    pub fn render_ledger(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.ledger {
            let _ = write!(
                out,
                "epoch {} at {} {} W {:?} D {:?} A {:?}->{:?} P {:?}",
                r.epoch,
                r.at.as_micros(),
                r.state,
                r.total_power.value(),
                r.total_desired.value(),
                r.allowance_before.value(),
                r.allowance_after.value(),
                r.price_per_watt,
            );
            for (i, c) in r.chips.iter().enumerate() {
                let _ = write!(
                    out,
                    " | {} u {:?} a {:?} b {:?} m {:?} w {:?}",
                    i,
                    c.utility,
                    c.allowance.value(),
                    c.bid.value(),
                    c.savings_after.value(),
                    c.cleared.value(),
                );
            }
            out.push('\n');
        }
        out
    }

    /// Clear one epoch: run the fleet agent's allowance update, distribute,
    /// collect bids, discover the watt price, and clamp per-chip TDPs.
    /// `bids[i]` is chip `i`'s reported bid (or `None` for managers without
    /// one) plus its static spec; `powers[i]` its measured draw. Returns
    /// the index of the appended ledger record.
    ///
    /// All arithmetic is serial in chip order — the clearing is
    /// bit-deterministic regardless of how the chips were stepped.
    ///
    /// # Panics
    ///
    /// Panics when `bids` and `powers` disagree in length or the chip count
    /// changes between epochs.
    pub fn clear(
        &mut self,
        at: SimTime,
        bids: &[(Option<FleetBid>, ChipSpec)],
        powers: &[Watts],
    ) -> usize {
        assert_eq!(bids.len(), powers.len(), "one power reading per chip");
        let n = bids.len();
        assert!(n > 0, "cannot clear an empty fleet");
        if self.epoch == 0 {
            self.savings.resize(n, Money::ZERO);
            self.cleared.resize(n, Watts::ZERO);
        } else {
            assert_eq!(self.savings.len(), n, "fleet membership is fixed");
        }
        self.epoch += 1;

        let total_power: Watts = powers.iter().copied().sum();
        let desired_of = |i: usize| -> Watts {
            match bids[i].0 {
                Some(b) => b.desired,
                None => powers[i],
            }
        };
        let total_desired: Watts = (0..n).map(desired_of).sum();

        // Fleet agent: classify against cap/threshold, then the §3.2.3 Δ
        // with desired watts as demand and the cap as supply.
        self.state = if total_power.value() > self.cap.value() {
            PowerState::Emergency
        } else if total_power.value() >= self.threshold.value() {
            PowerState::Threshold
        } else {
            PowerState::Normal
        };
        let before = self.allowance;
        let delta = match self.state {
            PowerState::Normal => {
                if total_desired.value() > self.cap.value() && total_desired.value() > 0.0 {
                    let rate = ((total_desired.value() - self.cap.value()) / total_desired.value())
                        .min(MAX_DELTA_RATE);
                    before * rate
                } else {
                    Money::ZERO
                }
            }
            PowerState::Threshold => Money::ZERO,
            PowerState::Emergency => {
                if self.emergency_cooldown > 0 {
                    Money::ZERO
                } else {
                    let rate = ((self.cap.value() - total_power.value()) / self.cap.value())
                        .clamp(-MAX_DELTA_RATE, -MIN_EMERGENCY_CUT_RATE);
                    before * rate
                }
            }
        };
        if self.state == PowerState::Emergency && delta.value() < 0.0 {
            self.emergency_cooldown = Self::EMERGENCY_COOLDOWN_EPOCHS;
        } else if self.emergency_cooldown > 0 {
            self.emergency_cooldown -= 1;
        }
        let floor = self.min_bid * n as f64;
        self.allowance = (before + delta).max(floor);

        // Distribution by relative utility, then bids and the clearing.
        let utility_of = |i: usize| -> f64 {
            let value = bids[i].0.map_or(0.0, |b| b.value_per_watt);
            value.max(self.utility_floor) / bids[i].1.electricity_price
        };
        let utility_sum: f64 = (0..n).map(utility_of).sum();
        let mut rows = Vec::with_capacity(n);
        let mut total_bids = Money::ZERO;
        for i in 0..n {
            let utility = utility_of(i);
            let a = self.allowance * (utility / utility_sum);
            let desired = desired_of(i);
            let m = self.savings[i];
            let spend = if desired.value() > self.cleared[i].value() {
                m
            } else {
                Money::ZERO
            };
            let bid = (a + spend).max(self.min_bid);
            total_bids += bid;
            rows.push(ChipEpoch {
                value_per_watt: bids[i].0.map_or(0.0, |b| b.value_per_watt),
                utility,
                power: powers[i],
                desired,
                allowance: a,
                spend,
                bid,
                savings_before: m,
                savings_after: Money::ZERO, // filled below
                cleared_raw: Watts::ZERO,   // filled below
                cleared: Watts::ZERO,       // filled below
            });
        }
        let price = total_bids.value() / self.cap.value();
        for (i, row) in rows.iter_mut().enumerate() {
            row.cleared_raw = Watts(row.bid.value() / price);
            row.cleared = Watts(
                row.cleared_raw
                    .value()
                    .clamp(bids[i].1.tdp_min.value(), bids[i].1.tdp_max.value()),
            );
            row.savings_after = (row.savings_before + row.allowance - row.bid)
                .clamp(Money::ZERO, row.allowance * self.savings_cap_factor);
            self.savings[i] = row.savings_after;
            self.cleared[i] = row.cleared;
        }

        self.ledger.push(EpochRecord {
            epoch: self.epoch,
            at,
            state: self.state,
            total_power,
            total_desired,
            allowance_before: before,
            allowance_after: self.allowance,
            price_per_watt: price,
            chips: rows,
        });
        self.ledger.len() - 1
    }

    /// Re-derive every clearing identity from the recorded epoch inputs and
    /// report breaches beyond [`Self::EPS`] into `auditor` — the fleet-level
    /// money-conservation audit. Checks, per epoch:
    ///
    /// * the allowance Δ respects the slew bounds (or hit the floor),
    /// * Σ `a_i` returns the distributed allowance,
    /// * every bid is within `[MIN_BID, a_i + m_i]`,
    /// * Σ `b_i / P` returns the cap exactly (price-discovery identity),
    /// * every cleared TDP lies within its chip's `[tdp_min, tdp_max]`,
    /// * every savings account obeys the conservation clamp.
    pub fn audit_epoch(&self, rec: &EpochRecord, auditor: &mut Auditor) {
        let eps_money = Self::EPS * rec.allowance_after.value().abs().max(1.0);
        let a0 = rec.allowance_before.value();
        let delta = rec.allowance_after.value() - a0;
        let floor = self.min_bid.value() * rec.chips.len() as f64;
        let slew_ok = delta.abs() <= MAX_DELTA_RATE * a0.abs() + eps_money
            || (rec.allowance_after.value() - floor).abs() <= eps_money;
        if !slew_ok {
            auditor.report(
                "fleet-allowance-slew",
                format!(
                    "epoch {}: Δ {delta} exceeds the slew bound on A {a0}",
                    rec.epoch
                ),
            );
        }
        let distributed: f64 = rec.chips.iter().map(|c| c.allowance.value()).sum();
        if (distributed - rec.allowance_after.value()).abs() > eps_money {
            auditor.report(
                "fleet-allowance-distribution",
                format!(
                    "epoch {}: Σ a_i = {distributed} but A = {}",
                    rec.epoch,
                    rec.allowance_after.value()
                ),
            );
        }
        if rec.price_per_watt <= 0.0 || !rec.price_per_watt.is_finite() {
            auditor.report(
                "fleet-price-positive",
                format!("epoch {}: watt price {}", rec.epoch, rec.price_per_watt),
            );
            return;
        }
        let cleared_raw_sum: f64 = rec.chips.iter().map(|c| c.cleared_raw.value()).sum();
        if (cleared_raw_sum - self.cap.value()).abs() > Self::EPS * self.cap.value().max(1.0) {
            auditor.report(
                "fleet-clearing-identity",
                format!(
                    "epoch {}: Σ b_i/P = {cleared_raw_sum} W but cap = {}",
                    rec.epoch, self.cap
                ),
            );
        }
        for (i, c) in rec.chips.iter().enumerate() {
            let eps = Self::EPS * c.allowance.value().abs().max(1.0);
            if c.bid.value() < self.min_bid.value() - eps {
                auditor.report(
                    "fleet-bid-floor",
                    format!(
                        "epoch {}: chip {i} bid {} < floor {}",
                        rec.epoch, c.bid, self.min_bid
                    ),
                );
            }
            // Funds bound: the MIN_BID floor is exchange-granted (a chip
            // whose allowance share is below the floor still bids it), so
            // the bound is max(a + m, floor).
            let funds = (c.allowance.value() + c.savings_before.value()).max(self.min_bid.value());
            if c.bid.value() > funds + eps {
                auditor.report(
                    "fleet-overspend",
                    format!(
                        "epoch {}: chip {i} bid {} > funds {}",
                        rec.epoch,
                        c.bid,
                        c.allowance + c.savings_before
                    ),
                );
            }
            let expect = (c.savings_before + c.allowance - c.bid)
                .clamp(Money::ZERO, c.allowance * self.savings_cap_factor);
            if (c.savings_after.value() - expect.value()).abs() > eps {
                auditor.report(
                    "fleet-money-conservation",
                    format!(
                        "epoch {}: chip {i} savings {} != clamp(m+a−b) {}",
                        rec.epoch, c.savings_after, expect
                    ),
                );
            }
        }
    }

    /// Run [`FleetExchange::audit_epoch`] over the whole ledger into a
    /// fresh report (closing the books after a run).
    pub fn audit_ledger(&self, auditor: &mut Auditor) {
        for rec in &self.ledger {
            auditor.begin_quantum(rec.at, rec.epoch);
            self.audit_epoch(rec, auditor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(value: f64, power: f64, desired: f64) -> Option<FleetBid> {
        Some(FleetBid {
            value_per_watt: value,
            power: Watts(power),
            desired: Watts(desired),
        })
    }

    fn spec() -> ChipSpec {
        ChipSpec::uniform(Watts(1.0), Watts(100.0))
    }

    #[test]
    fn budget_flows_to_the_higher_value_chip() {
        let mut ex = FleetExchange::new(Watts(20.0));
        // Both chips want more than they have; chip 0 extracts twice the
        // value per watt. Clear a few epochs and compare allowances.
        for _ in 0..5 {
            let idx = ex.clear(
                SimTime::ZERO,
                &[(bid(4.0, 9.0, 14.0), spec()), (bid(2.0, 9.0, 14.0), spec())],
                &[Watts(9.0), Watts(9.0)],
            );
            let rec = &ex.ledger()[idx];
            assert!(rec.chips[0].cleared > rec.chips[1].cleared);
        }
        let last = ex.ledger().last().expect("cleared");
        // Cleared watts are proportional to utility before clamping.
        let ratio = last.chips[0].cleared_raw.value() / last.chips[1].cleared_raw.value();
        assert!((ratio - 2.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn cheap_electricity_wins_budget_ties() {
        let mut ex = FleetExchange::new(Watts(20.0));
        let cheap = ChipSpec {
            electricity_price: 0.5,
            ..spec()
        };
        let idx = ex.clear(
            SimTime::ZERO,
            &[(bid(2.0, 9.0, 14.0), cheap), (bid(2.0, 9.0, 14.0), spec())],
            &[Watts(9.0), Watts(9.0)],
        );
        let rec = &ex.ledger()[idx];
        assert!(rec.chips[0].cleared > rec.chips[1].cleared);
    }

    #[test]
    fn emergency_cuts_the_allowance_then_cools_down() {
        let mut ex = FleetExchange::new(Watts(10.0));
        let a0 = ex.allowance();
        // 14 W against a 10 W cap: emergency, proportional cut.
        ex.clear(
            SimTime::ZERO,
            &[(bid(1.0, 14.0, 14.0), spec())],
            &[Watts(14.0)],
        );
        assert_eq!(ex.state(), PowerState::Emergency);
        assert!(ex.allowance() < a0);
        let a1 = ex.allowance();
        // Still over, but the cooldown freezes further cuts for 2 epochs.
        ex.clear(
            SimTime::ZERO,
            &[(bid(1.0, 13.0, 13.0), spec())],
            &[Watts(13.0)],
        );
        assert_eq!(ex.allowance(), a1, "cooldown freezes the allowance");
    }

    #[test]
    fn allowance_grows_only_while_desire_exceeds_the_cap() {
        let mut ex = FleetExchange::new(Watts(100.0));
        let a0 = ex.allowance();
        ex.clear(
            SimTime::ZERO,
            &[(bid(1.0, 30.0, 150.0), spec())],
            &[Watts(30.0)],
        );
        assert!(ex.allowance() > a0, "unmet desire grows the allowance");
        let a1 = ex.allowance();
        ex.clear(
            SimTime::ZERO,
            &[(bid(1.0, 30.0, 30.0), spec())],
            &[Watts(30.0)],
        );
        assert_eq!(ex.allowance(), a1, "sated fleet freezes the allowance");
    }

    #[test]
    fn the_books_close_over_a_noisy_run() {
        let mut ex = FleetExchange::new(Watts(30.0));
        let specs = [
            ChipSpec {
                electricity_price: 0.8,
                ..spec()
            },
            spec(),
            ChipSpec {
                electricity_price: 1.3,
                ..spec()
            },
        ];
        // Deterministic pseudo-noise (no RNG in tests).
        for k in 0..50u64 {
            let f = |i: u64| 6.0 + ((k * 7 + i * 13) % 17) as f64;
            let bids = [
                (bid(1.0 + (k % 5) as f64, f(0), f(0) * 1.4), specs[0]),
                (bid(2.0, f(1), f(1) * 0.9), specs[1]),
                (None, specs[2]),
            ];
            let powers = [Watts(f(0)), Watts(f(1)), Watts(f(2))];
            ex.clear(SimTime(k), &bids, &powers);
        }
        let mut aud = Auditor::new();
        ex.audit_ledger(&mut aud);
        assert!(aud.is_clean(), "{}", aud.render());
        assert_eq!(aud.quanta_audited(), 50);
    }

    #[test]
    fn ledger_renders_deterministically() {
        let run = || {
            let mut ex = FleetExchange::new(Watts(20.0));
            for k in 0..10u64 {
                ex.clear(
                    SimTime(k * 1000),
                    &[(bid(3.0, 9.0, 12.0), spec()), (bid(1.0, 8.0, 8.0), spec())],
                    &[Watts(9.0), Watts(8.0)],
                );
            }
            ex.render_ledger()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.lines().count(), 10);
    }

    #[test]
    fn cleared_watts_respect_the_per_chip_band() {
        let mut ex = FleetExchange::new(Watts(50.0));
        let tight = ChipSpec::uniform(Watts(4.0), Watts(6.0));
        let idx = ex.clear(
            SimTime::ZERO,
            &[(bid(10.0, 20.0, 40.0), tight), (bid(0.1, 5.0, 5.0), tight)],
            &[Watts(20.0), Watts(5.0)],
        );
        let rec = &ex.ledger()[idx];
        for c in &rec.chips {
            assert!(c.cleared.value() >= 4.0 && c.cleared.value() <= 6.0);
        }
    }
}
