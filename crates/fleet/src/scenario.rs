//! Canonical fleet scenarios for tests, benches, and the CLI.
//!
//! [`synthetic_fleet`] scales the Table 7 synthetic chip recipe across N
//! *heterogeneous* chips: every chip gets its own V-F ladder (a per-chip
//! speed grade scales the 350–3000 MHz spread), its own electricity price
//! (cheap sites near 0.8×, expensive near 1.3× the reference tariff), its
//! own workload mix, and optionally its own fault plan — exactly the
//! setting where the exchange has something to trade: equal-value chips at
//! unequal tariffs, and unequal-capability chips under one cap.

use ppm_core::config::PpmConfig;
use ppm_core::manager::{place_on_little, PpmManager};
use ppm_platform::chip::{Chip, ChipBuilder};
use ppm_platform::core::{CoreClass, CoreId};
use ppm_platform::faults::{FaultConfig, FaultPlan};
use ppm_platform::units::{MegaHertz, Watts};
use ppm_platform::vf::linear_table;
use ppm_sched::executor::{AllocationPolicy, Simulation, System};
use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
use ppm_workload::task::{Priority, Task, TaskId};

use crate::{ChipSpec, Fleet};

/// The benchmark mix a synthetic chip's tasks cycle through.
const MIX: [(Benchmark, Input); 3] = [
    (Benchmark::Blackscholes, Input::Large),
    (Benchmark::Swaptions, Input::Large),
    (Benchmark::Bodytrack, Input::Large),
];

/// A chip's physical peak: the sum of its cluster power envelopes.
pub fn chip_peak(chip: &Chip) -> Watts {
    chip.clusters()
        .iter()
        .map(|cl| chip.power_model().cluster_peak(cl))
        .sum()
}

/// The Table 7 synthetic chip with a per-chip speed grade: `grade` scales
/// every cluster's frequency spread, so a fleet mixes slow and fast silicon
/// of the same topology (`v` clusters × `c` cores, alternating classes).
pub fn graded_chip(v: usize, c: usize, grade: f64) -> Chip {
    let mut b = ChipBuilder::new();
    for i in 0..v {
        let class = if i % 2 == 0 {
            CoreClass::Little
        } else {
            CoreClass::Big
        };
        let max = ((350 + ((i * 2650) / v.max(1)) as u32) as f64 * grade) as u32;
        let lo = (max / 3).max(100);
        b = b.cluster(
            class,
            c,
            linear_table(MegaHertz(lo), MegaHertz(max.max(lo + 100)), 8),
        );
    }
    b.build()
}

/// Build an N-chip heterogeneous fleet: chip `i` gets speed grade
/// `0.75 + 0.5·i/(n−1)`, electricity price `0.8 + 0.5·i/(n−1)`, `t` tasks
/// cycling the PARSEC mix at priorities 1–3, an initial TDP at half its
/// physical peak, and (with `faults`) a per-chip re-seeded fault plan.
/// Every chip carries its own auditor and, when `cap` is given, the fleet
/// trades on a [`crate::FleetExchange`] with the exchange auditor attached.
///
/// Deterministic: same arguments, same fleet, bit-identical runs.
pub fn synthetic_fleet(
    chips: usize,
    v: usize,
    c: usize,
    t: usize,
    cap: Option<Watts>,
    faults: Option<FaultConfig>,
) -> Fleet<PpmManager> {
    assert!(chips > 0, "fleet needs at least one chip");
    let mut fleet = match cap {
        Some(w) => Fleet::new().with_exchange(w).with_fleet_auditor(),
        None => Fleet::new(),
    };
    for i in 0..chips {
        let spread = if chips > 1 {
            i as f64 / (chips - 1) as f64
        } else {
            0.0
        };
        let chip = graded_chip(v, c, 0.75 + 0.5 * spread);
        let peak = chip_peak(&chip);
        let mut sys = System::new(chip, AllocationPolicy::Market);
        for k in 0..t {
            let (b, input) = MIX[k % MIX.len()];
            sys.add_task(
                Task::new(
                    TaskId(k),
                    BenchmarkSpec::of(b, input).expect("mix variant exists"),
                    Priority(1 + (k % 3) as u32),
                ),
                CoreId(0),
            );
        }
        place_on_little(&mut sys);
        let initial_tdp = peak * 0.5;
        let mut sim = Simulation::new(sys, PpmManager::new(PpmConfig::tc2_with_tdp(initial_tdp)))
            .with_auditor();
        if let Some(base) = &faults {
            // Re-seed per chip so fleets do not share a fault stream.
            let cfg = FaultConfig {
                seed: base
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                ..base.clone()
            };
            sim = sim.with_faults(FaultPlan::new(cfg));
        }
        fleet.add_chip(
            sim,
            ChipSpec {
                electricity_price: 0.8 + 0.5 * spread,
                tdp_min: peak * 0.1,
                tdp_max: peak,
            },
        );
    }
    fleet
}

/// Like [`synthetic_fleet`], but every chip serves **open-loop request
/// traffic**: chip `i` runs a `t`-task bursty on/off family (the `ol2`
/// shape) re-seeded per chip, so the exchange prices tail-latency risk
/// across sites instead of heart-rate slack. Chip grades, tariffs, TDP
/// bounds, auditors and per-chip fault re-seeding match
/// [`synthetic_fleet`] exactly.
///
/// Deterministic: same arguments, same fleet, bit-identical runs.
pub fn openloop_fleet(
    chips: usize,
    v: usize,
    c: usize,
    t: usize,
    cap: Option<Watts>,
    faults: Option<FaultConfig>,
) -> Fleet<PpmManager> {
    assert!(chips > 0, "fleet needs at least one chip");
    let mut fleet = match cap {
        Some(w) => Fleet::new().with_exchange(w).with_fleet_auditor(),
        None => Fleet::new(),
    };
    for i in 0..chips {
        let spread = if chips > 1 {
            i as f64 / (chips - 1) as f64
        } else {
            0.0
        };
        let chip = graded_chip(v, c, 0.75 + 0.5 * spread);
        let peak = chip_peak(&chip);
        let mut sys = System::new(chip, AllocationPolicy::Market);
        let family = ppm_workload::OpenLoopFamily {
            tasks: t,
            ..ppm_workload::bursty_template()
        };
        let seed = ppm_workload::OpenLoopFamily::PINNED_SEED
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        let set = ppm_workload::openloop_family("ol2-fleet", family, seed);
        for task in set.spawn(0, Priority::NORMAL) {
            sys.add_task(task, CoreId(0));
        }
        place_on_little(&mut sys);
        let initial_tdp = peak * 0.5;
        let mut sim = Simulation::new(sys, PpmManager::new(PpmConfig::tc2_with_tdp(initial_tdp)))
            .with_auditor();
        if let Some(base) = &faults {
            let cfg = FaultConfig {
                seed: base
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                ..base.clone()
            };
            sim = sim.with_faults(FaultPlan::new(cfg));
        }
        fleet.add_chip(
            sim,
            ChipSpec {
                electricity_price: 0.8 + 0.5 * spread,
                tdp_min: peak * 0.1,
                tdp_max: peak,
            },
        );
    }
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_platform::units::SimDuration;

    #[test]
    fn heterogeneous_fleet_rebalances_toward_the_fast_cheap_chips() {
        // Three chips, slow/expensive → fast/cheap, trading under a cap
        // tight enough to bind. After a second of trading the cleared
        // allowances must diverge in the exchange's preferred direction.
        let mut fleet = synthetic_fleet(3, 4, 2, 6, Some(Watts(10.0)), None);
        fleet.run_for(SimDuration::from_secs(1));
        let ex = fleet.exchange().expect("exchange");
        let rec = ex.ledger().last().expect("traded");
        let u: Vec<f64> = rec.chips.iter().map(|ch| ch.utility).collect();
        let w: Vec<f64> = rec.chips.iter().map(|ch| ch.cleared_raw.value()).collect();
        // Raw clearings are ordered exactly like utilities.
        for i in 0..u.len() {
            for j in 0..u.len() {
                if u[i] > u[j] {
                    assert!(
                        w[i] > w[j],
                        "chip {i} (u {}) cleared {} <= chip {j} (u {}) {}",
                        u[i],
                        w[i],
                        u[j],
                        w[j]
                    );
                }
            }
        }
        let roll = fleet.audit_rollup();
        assert!(roll.is_clean(), "{}", roll.render());
    }

    #[test]
    fn faulted_fleet_stays_auditor_clean() {
        let mut fleet = synthetic_fleet(
            2,
            4,
            2,
            4,
            Some(Watts(8.0)),
            Some(FaultConfig::with_seed(165)),
        );
        fleet.run_for(SimDuration::from_millis(500));
        let roll = fleet.audit_rollup();
        assert!(roll.is_clean(), "{}", roll.render());
        // Both chips actually drew from distinct fault streams.
        let s0 = fleet.chip(0).sim().faults().expect("faults").stats();
        let s1 = fleet.chip(1).sim().faults().expect("faults").stats();
        assert_ne!(format!("{s0:?}"), format!("{s1:?}"));
    }

    #[test]
    fn lone_chip_fleet_is_deterministic() {
        let run = || {
            let mut fleet = synthetic_fleet(1, 4, 2, 4, Some(Watts(6.0)), None);
            fleet.run_for(SimDuration::from_millis(300));
            fleet.exchange().expect("exchange").render_ledger()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn openloop_fleet_trades_and_stays_clean() {
        let mut fleet = openloop_fleet(2, 4, 2, 4, Some(Watts(8.0)), None);
        fleet.run_for(SimDuration::from_millis(500));
        let roll = fleet.audit_rollup();
        assert!(roll.is_clean(), "{}", roll.render());
        // The chips really are serving requests, not heartbeat loops.
        let sys = fleet.chip(0).sim().system();
        assert!(sys.task_iter().all(|id| sys.task(id).open_loop().is_some()));
    }

    #[test]
    #[ignore = "large: 256 chips x 64 clusters x 8 cores; run in release"]
    fn large_fleet_epoch_is_auditor_clean() {
        // The acceptance-scale configuration: one full trading epoch over
        // 256 V64/C8 chips with 16 tasks each, books closed to 1e-9.
        let mut fleet = synthetic_fleet(256, 64, 8, 16, Some(Watts(4000.0)), None);
        fleet = fleet.with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()));
        fleet.run_for(Fleet::<PpmManager>::DEFAULT_EPOCH);
        let ex = fleet.exchange().expect("exchange");
        assert_eq!(ex.epochs(), 1);
        let roll = fleet.audit_rollup();
        assert!(roll.is_clean(), "{}", roll.render());
    }
}
