//! Incremental telemetry streaming: flush the [`SeriesRecorder`] ring to a
//! CSV or JSONL file *during* the run, so hour-long simulations keep their
//! full history even when the in-memory ring is far smaller than the run.
//!
//! The hot-path contract mirrors the rest of this crate: the per-quantum
//! [`TelemetryStream::pump`] is two integer compares until a flush boundary
//! is crossed; only then does it serialize the pending rows (allocating the
//! chunk it hands off) and send them to a dedicated writer thread over a
//! **bounded** channel. A slow disk therefore back-pressures the simulation
//! instead of growing an unbounded queue, and the simulation never blocks
//! on `write(2)` itself in the common case.
//!
//! Loss accounting: rows the ring overwrote before they could be flushed
//! are counted in [`StreamStats::lost`], never silently skipped. With
//! `flush_every ≤ ring capacity` (enforced at the first pump) and a pump
//! every quantum, no row is ever lost — the acceptance test drives an
//! undersized ring for exactly this property. Streamed bytes reuse the
//! same per-row serializers as the post-run exporters, so `obs_validate`
//! accepts streamed artifacts unchanged.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

use crate::export;
use crate::recorder::SeriesRecorder;

/// On-disk format of a stream, chosen from the target path's extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// One CSV row per quantum under the [`crate::csv_header`] columns.
    Csv,
    /// One self-describing JSON object per quantum.
    Jsonl,
}

/// Totals reported by [`TelemetryStream::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows serialized and handed to the writer.
    pub rows: u64,
    /// Rows the ring overwrote before they could be flushed (0 whenever
    /// `flush_every ≤ ring capacity` and the stream is pumped every row).
    pub lost: u64,
    /// Flush chunks sent to the writer thread.
    pub flushes: u64,
}

/// How many chunks may sit in the channel before `pump` blocks on the
/// writer (bounded back-pressure, not an unbounded queue).
const CHANNEL_DEPTH: usize = 4;

/// An incremental exporter bound to one output file. Create before the
/// run, [`TelemetryStream::pump`] after every recorded row, and
/// [`TelemetryStream::finish`] after the run to flush the tail and join
/// the writer thread.
#[derive(Debug)]
pub struct TelemetryStream {
    tx: Option<SyncSender<Vec<u8>>>,
    writer: Option<JoinHandle<io::Result<()>>>,
    format: StreamFormat,
    flush_every: usize,
    /// Absolute row count already serialized (or counted lost).
    cursor: u64,
    header_sent: bool,
    stats: StreamStats,
    /// First write error observed on the channel (writer died).
    broken: bool,
}

impl TelemetryStream {
    /// Open `path` for streaming, picking [`StreamFormat::Jsonl`] when the
    /// extension is `.jsonl` and CSV otherwise, flushing every
    /// `flush_every` rows.
    ///
    /// # Panics
    ///
    /// Panics on a zero `flush_every`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create<P: AsRef<Path>>(path: P, flush_every: usize) -> io::Result<TelemetryStream> {
        let format = if path.as_ref().extension().is_some_and(|e| e == "jsonl") {
            StreamFormat::Jsonl
        } else {
            StreamFormat::Csv
        };
        let file = File::create(path)?;
        Ok(Self::with_writer(file, format, flush_every))
    }

    /// Stream into any writer (tests use an in-memory pipe).
    ///
    /// # Panics
    ///
    /// Panics on a zero `flush_every`.
    pub fn with_writer<W: Write + Send + 'static>(
        sink: W,
        format: StreamFormat,
        flush_every: usize,
    ) -> TelemetryStream {
        assert!(flush_every > 0, "flush_every must be positive");
        let (tx, rx) = sync_channel::<Vec<u8>>(CHANNEL_DEPTH);
        let writer = std::thread::spawn(move || -> io::Result<()> {
            let mut out = BufWriter::new(sink);
            while let Ok(chunk) = rx.recv() {
                out.write_all(&chunk)?;
            }
            out.flush()
        });
        TelemetryStream {
            tx: Some(tx),
            writer: Some(writer),
            format,
            flush_every,
            cursor: 0,
            header_sent: false,
            stats: StreamStats::default(),
            broken: false,
        }
    }

    /// The stream's on-disk format.
    pub fn format(&self) -> StreamFormat {
        self.format
    }

    /// Totals so far (final values come from [`TelemetryStream::finish`]).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Note `rec`'s growth and flush once per completed `flush_every`-row
    /// window. Cheap when no boundary was crossed: two integer compares.
    pub fn pump(&mut self, rec: &SeriesRecorder) {
        debug_assert!(
            self.flush_every <= rec.capacity(),
            "flush_every {} must not exceed the ring capacity {} or rows wrap away unflushed",
            self.flush_every,
            rec.capacity()
        );
        while rec.total_rows() - self.cursor >= self.flush_every as u64 {
            self.flush(rec);
        }
    }

    /// Serialize every not-yet-flushed row still in the ring and send it.
    fn flush(&mut self, rec: &SeriesRecorder) {
        let total = rec.total_rows();
        // Rows older than the ring's oldest surviving row are gone.
        let oldest = total.saturating_sub(rec.capacity() as u64);
        if self.cursor < oldest {
            self.stats.lost += oldest - self.cursor;
            self.cursor = oldest;
        }
        if self.cursor >= total {
            return;
        }
        let cap = rec.capacity() as u64;
        let mut chunk = String::new();
        if self.format == StreamFormat::Csv && !self.header_sent {
            chunk.push_str(&crate::csv_header(rec));
            chunk.push('\n');
        }
        self.header_sent = true;
        for abs in self.cursor..total {
            let i = (abs % cap) as usize;
            match self.format {
                StreamFormat::Csv => export::csv_row(rec, i, &mut chunk),
                StreamFormat::Jsonl => export::jsonl_row(rec, i, &mut chunk),
            }
            chunk.push('\n');
        }
        self.stats.rows += total - self.cursor;
        self.stats.flushes += 1;
        self.cursor = total;
        if let Some(tx) = &self.tx {
            // A send error means the writer thread died on an I/O error;
            // remember it and surface the underlying error in `finish`.
            if tx.send(chunk.into_bytes()).is_err() {
                self.broken = true;
            }
        }
    }

    /// Flush the tail (rows below the boundary), close the channel, and
    /// join the writer thread.
    ///
    /// # Errors
    ///
    /// Propagates the writer thread's first I/O error.
    pub fn finish(mut self, rec: &SeriesRecorder) -> io::Result<StreamStats> {
        self.flush(rec);
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            match writer.join() {
                Ok(result) => result?,
                Err(_) => {
                    return Err(io::Error::other("telemetry writer thread panicked"));
                }
            }
        }
        Ok(self.stats)
    }
}

impl Drop for TelemetryStream {
    fn drop(&mut self) {
        // Close the channel so an un-finished stream still terminates its
        // writer thread (losing only the unflushed tail).
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A Write sink tests can read back after the writer thread exits.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn filled(rows: u64, cap: usize) -> SeriesRecorder {
        let mut rec = SeriesRecorder::new(cap);
        rec.ensure_shape(1, 1, 1);
        for q in 0..rows {
            rec.push_row(q * 1000)
                .chip(1.0 + q as f64, f64::NAN, 40.0)
                .task(0, 0.1, 0.1, 30.0, 1.0);
        }
        rec
    }

    #[test]
    fn undersized_ring_streams_every_row() {
        // Ring of 8, 50 rows: a post-run export would hold only the last 8.
        let buf = SharedBuf::default();
        let mut stream = TelemetryStream::with_writer(buf.clone(), StreamFormat::Csv, 4);
        let mut rec = SeriesRecorder::new(8);
        rec.ensure_shape(1, 1, 1);
        for q in 0..50u64 {
            rec.push_row(q * 1000).chip(1.0 + q as f64, f64::NAN, 40.0);
            stream.pump(&rec);
        }
        let stats = stream.finish(&rec).expect("writer ok");
        assert_eq!(stats.rows, 50);
        assert_eq!(stats.lost, 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 50, "header + every quantum");
        assert!(lines[0].starts_with("t_s,chip_power_w"));
        assert!(lines[1].starts_with("0,1,"));
        assert!(lines[50].starts_with("0.049,50"));
    }

    #[test]
    fn streamed_csv_matches_post_run_export_when_nothing_wraps() {
        let rec = filled(5, 16);
        let buf = SharedBuf::default();
        let stream = TelemetryStream::with_writer(buf.clone(), StreamFormat::Csv, 2);
        // finish() flushes whatever is pending, boundary or not.
        let stats = stream.finish(&rec).expect("writer ok");
        assert_eq!(stats.rows, 5);
        let mut post = Vec::new();
        crate::write_csv(&rec, &mut post).unwrap();
        assert_eq!(*buf.0.lock().unwrap(), post, "streamed bytes differ");
    }

    #[test]
    fn streamed_jsonl_matches_post_run_export() {
        let rec = filled(6, 16);
        let buf = SharedBuf::default();
        let mut stream = TelemetryStream::with_writer(buf.clone(), StreamFormat::Jsonl, 3);
        stream.pump(&rec);
        let stats = stream.finish(&rec).expect("writer ok");
        assert_eq!(stats.rows, 6);
        assert_eq!(stats.flushes, 1, "one boundary crossing drains all 6");
        let mut post = Vec::new();
        crate::write_jsonl(&rec, &mut post).unwrap();
        assert_eq!(*buf.0.lock().unwrap(), post);
    }

    #[test]
    fn wrapped_away_rows_are_counted_lost_not_skipped_silently() {
        // Never pumped until 20 rows ran through a 4-row ring.
        let rec = filled(20, 4);
        let buf = SharedBuf::default();
        let mut stream = TelemetryStream::with_writer(buf.clone(), StreamFormat::Csv, 4);
        stream.pump(&rec);
        let stats = stream.finish(&rec).expect("writer ok");
        assert_eq!(stats.lost, 16);
        assert_eq!(stats.rows, 4);
    }

    #[test]
    fn pump_below_the_boundary_sends_nothing() {
        let rec = filled(3, 16);
        let buf = SharedBuf::default();
        let mut stream = TelemetryStream::with_writer(buf.clone(), StreamFormat::Csv, 8);
        stream.pump(&rec);
        assert_eq!(stream.stats().flushes, 0);
        drop(stream);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_flush_interval_panics() {
        let _ = TelemetryStream::with_writer(Vec::new(), StreamFormat::Csv, 0);
    }
}
