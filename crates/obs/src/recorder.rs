//! The per-quantum time-series recorder.
//!
//! Columnar storage in a ring: every column is a `Vec` preallocated to the
//! ring capacity at construction (scalars) or at first sight of the entity
//! population (per-cluster / per-core / per-task columns), after which a
//! row write is pure indexed stores — no allocation, no branching beyond
//! the ring modulo. When the ring wraps, the oldest rows are overwritten
//! and counted in [`SeriesRecorder::dropped`], never silently.
//!
//! The column set mirrors the paper's evaluation figures: per-core price
//! and supply (Fig. 4's market state), per-cluster frequency / voltage /
//! power / temperature (Figs. 5–6), chip power against the TDP headroom,
//! the chip agent's money supply and allowance, per-task share / granted
//! PU / heart rate (Fig. 7), plus the degradation counters and the phase
//! profiler's per-quantum spans. Values that do not exist in a given run
//! (no TDP, no market, inactive task slot) record as `NaN`, which the
//! exporters render as empty (CSV) or `null` (JSONL) and omit (Chrome).

use crate::profiler::Phase;

/// What the policy layer (the market) reports into each row: the chip
/// agent's allowance, the total money supply, and the last discovered
/// per-core prices. Filled by `PowerManager::sample_policy`; managers
/// without a market leave it `NaN`.
#[derive(Debug, Clone, Default)]
pub struct PolicySample {
    /// The chip agent's current allowance `A` (budget handed to tasks).
    pub allowance: f64,
    /// Allowance plus task-agent savings — the total money in circulation.
    pub money_supply: f64,
    /// 1.0 when the last market round was a fast-path replay, 0.0 when it
    /// was a full recompute, `NaN` without an incremental market.
    pub market_fast_hit: f64,
    /// Observation sections found dirty by the last round's diff (0–4),
    /// `NaN` without an incremental market.
    pub market_dirty_stages: f64,
    /// Threads the market's full rounds fan out over (1 = serial, the pool
    /// shard count with a worker pool attached), `NaN` without a market.
    pub market_workers: f64,
    core_price: Vec<f64>,
}

impl PolicySample {
    /// An empty sample (everything `NaN` until a market reports).
    pub fn new() -> PolicySample {
        PolicySample {
            allowance: f64::NAN,
            money_supply: f64::NAN,
            market_fast_hit: f64::NAN,
            market_dirty_stages: f64::NAN,
            market_workers: f64::NAN,
            core_price: Vec::new(),
        }
    }

    /// Clear to `NaN` and (re)size the price vector. Resizing allocates,
    /// but the core population is fixed after setup, so steady state is a
    /// `fill`.
    pub fn reset(&mut self, cores: usize) {
        self.allowance = f64::NAN;
        self.money_supply = f64::NAN;
        self.market_fast_hit = f64::NAN;
        self.market_dirty_stages = f64::NAN;
        self.market_workers = f64::NAN;
        if self.core_price.len() != cores {
            self.core_price.resize(cores, f64::NAN);
        }
        self.core_price.fill(f64::NAN);
    }

    /// Record the discovered price of `core` (ignores unknown indices).
    pub fn set_core_price(&mut self, core: usize, price: f64) {
        if let Some(p) = self.core_price.get_mut(core) {
            *p = price;
        }
    }

    /// The last discovered price of `core`, `NaN` when unknown.
    pub fn core_price(&self, core: usize) -> f64 {
        self.core_price.get(core).copied().unwrap_or(f64::NAN)
    }
}

/// One scalar column: a ring of `f64` sized to capacity at construction.
type Col = Vec<f64>;

/// The columnar ring recorder. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    cap: usize,
    /// Rows ever written (the ring index is `total % cap`).
    total: u64,
    n_clusters: usize,
    n_cores: usize,
    n_tasks: usize,

    // Scalar columns (preallocated to `cap` in `new`).
    pub(crate) t_us: Vec<u64>,
    pub(crate) chip_power_w: Col,
    pub(crate) tdp_headroom_w: Col,
    pub(crate) hottest_c: Col,
    pub(crate) allowance: Col,
    pub(crate) money_supply: Col,
    pub(crate) market_fast_hit: Col,
    pub(crate) market_dirty_stages: Col,
    pub(crate) market_workers: Col,
    pub(crate) sensor_fallbacks: Vec<u64>,
    pub(crate) dvfs_retries: Vec<u64>,
    pub(crate) migration_retries: Vec<u64>,
    pub(crate) tasks_orphaned: Vec<u64>,
    // Observability self-metrics: the recorder/stream watching itself, so
    // telemetry loss is itself telemetry (ring wrap, stream backlog).
    pub(crate) obs_dropped_rows: Vec<u64>,
    pub(crate) obs_stream_rows: Col,
    pub(crate) obs_stream_lost: Col,
    pub(crate) obs_stream_flushes: Col,
    pub(crate) obs_alerts_firing: Vec<u64>,
    /// Per-phase wall ns spent on this quantum, indexed `[phase][row]`.
    pub(crate) phase_ns: Vec<Vec<u64>>,

    // Entity columns, indexed `[entity][row]`; allocated by `ensure_shape`
    // when the population is first seen (setup), then written in place.
    pub(crate) cluster_freq_mhz: Vec<Col>,
    pub(crate) cluster_volt_mv: Vec<Col>,
    pub(crate) cluster_power_w: Vec<Col>,
    pub(crate) cluster_temp_c: Vec<Col>,
    pub(crate) core_supply: Vec<Col>,
    pub(crate) core_price: Vec<Col>,
    pub(crate) task_share: Vec<Col>,
    pub(crate) task_granted: Vec<Col>,
    pub(crate) task_hr: Vec<Col>,
    pub(crate) task_hr_norm: Vec<Col>,
    pub(crate) task_queue: Vec<Col>,
    pub(crate) task_p99_ms: Vec<Col>,
    pub(crate) task_slo_ms: Vec<Col>,
    pub(crate) task_shed: Vec<Col>,
}

impl SeriesRecorder {
    /// A recorder holding the most recent `capacity` quanta.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> SeriesRecorder {
        assert!(capacity > 0, "recorder capacity must be positive");
        SeriesRecorder {
            cap: capacity,
            total: 0,
            n_clusters: 0,
            n_cores: 0,
            n_tasks: 0,
            t_us: vec![0; capacity],
            chip_power_w: vec![f64::NAN; capacity],
            tdp_headroom_w: vec![f64::NAN; capacity],
            hottest_c: vec![f64::NAN; capacity],
            allowance: vec![f64::NAN; capacity],
            money_supply: vec![f64::NAN; capacity],
            market_fast_hit: vec![f64::NAN; capacity],
            market_dirty_stages: vec![f64::NAN; capacity],
            market_workers: vec![f64::NAN; capacity],
            sensor_fallbacks: vec![0; capacity],
            dvfs_retries: vec![0; capacity],
            migration_retries: vec![0; capacity],
            tasks_orphaned: vec![0; capacity],
            obs_dropped_rows: vec![0; capacity],
            obs_stream_rows: vec![f64::NAN; capacity],
            obs_stream_lost: vec![f64::NAN; capacity],
            obs_stream_flushes: vec![f64::NAN; capacity],
            obs_alerts_firing: vec![0; capacity],
            phase_ns: (0..Phase::COUNT).map(|_| vec![0; capacity]).collect(),
            cluster_freq_mhz: Vec::new(),
            cluster_volt_mv: Vec::new(),
            cluster_power_w: Vec::new(),
            cluster_temp_c: Vec::new(),
            core_supply: Vec::new(),
            core_price: Vec::new(),
            task_share: Vec::new(),
            task_granted: Vec::new(),
            task_hr: Vec::new(),
            task_hr_norm: Vec::new(),
            task_queue: Vec::new(),
            task_p99_ms: Vec::new(),
            task_slo_ms: Vec::new(),
            task_shed: Vec::new(),
        }
    }

    /// Grow the entity columns to cover `clusters`/`cores`/`tasks`. Only
    /// grows (a shrinking population keeps its columns, recording `NaN`),
    /// and only allocates when the population actually changed — task
    /// admission is setup, so steady state takes three equality checks.
    pub fn ensure_shape(&mut self, clusters: usize, cores: usize, tasks: usize) {
        fn grow(cols: &mut Vec<Col>, to: usize, cap: usize) {
            while cols.len() < to {
                cols.push(vec![f64::NAN; cap]);
            }
        }
        if clusters > self.n_clusters {
            grow(&mut self.cluster_freq_mhz, clusters, self.cap);
            grow(&mut self.cluster_volt_mv, clusters, self.cap);
            grow(&mut self.cluster_power_w, clusters, self.cap);
            grow(&mut self.cluster_temp_c, clusters, self.cap);
            self.n_clusters = clusters;
        }
        if cores > self.n_cores {
            grow(&mut self.core_supply, cores, self.cap);
            grow(&mut self.core_price, cores, self.cap);
            self.n_cores = cores;
        }
        if tasks > self.n_tasks {
            grow(&mut self.task_share, tasks, self.cap);
            grow(&mut self.task_granted, tasks, self.cap);
            grow(&mut self.task_hr, tasks, self.cap);
            grow(&mut self.task_hr_norm, tasks, self.cap);
            grow(&mut self.task_queue, tasks, self.cap);
            grow(&mut self.task_p99_ms, tasks, self.cap);
            grow(&mut self.task_slo_ms, tasks, self.cap);
            grow(&mut self.task_shed, tasks, self.cap);
            self.n_tasks = tasks;
        }
    }

    /// Open the next row at simulated time `t_us`, returning a writer over
    /// it. Entity cells default to `NaN` for this row; scalar cells are
    /// overwritten by the writer's setters.
    pub fn push_row(&mut self, t_us: u64) -> RowWriter<'_> {
        let i = (self.total % self.cap as u64) as usize;
        self.total += 1;
        self.t_us[i] = t_us;
        self.chip_power_w[i] = f64::NAN;
        self.tdp_headroom_w[i] = f64::NAN;
        self.hottest_c[i] = f64::NAN;
        self.allowance[i] = f64::NAN;
        self.money_supply[i] = f64::NAN;
        self.market_fast_hit[i] = f64::NAN;
        self.market_dirty_stages[i] = f64::NAN;
        self.market_workers[i] = f64::NAN;
        self.sensor_fallbacks[i] = 0;
        self.dvfs_retries[i] = 0;
        self.migration_retries[i] = 0;
        self.tasks_orphaned[i] = 0;
        self.obs_dropped_rows[i] = self.total.saturating_sub(self.cap as u64);
        self.obs_stream_rows[i] = f64::NAN;
        self.obs_stream_lost[i] = f64::NAN;
        self.obs_stream_flushes[i] = f64::NAN;
        self.obs_alerts_firing[i] = 0;
        for col in &mut self.phase_ns {
            col[i] = 0;
        }
        for cols in [
            &mut self.cluster_freq_mhz,
            &mut self.cluster_volt_mv,
            &mut self.cluster_power_w,
            &mut self.cluster_temp_c,
            &mut self.core_supply,
            &mut self.core_price,
            &mut self.task_share,
            &mut self.task_granted,
            &mut self.task_hr,
            &mut self.task_hr_norm,
            &mut self.task_queue,
            &mut self.task_p99_ms,
            &mut self.task_slo_ms,
            &mut self.task_shed,
        ] {
            for col in cols.iter_mut() {
                col[i] = f64::NAN;
            }
        }
        RowWriter { rec: self, i }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Rows currently held (≤ capacity).
    pub fn rows(&self) -> usize {
        (self.total.min(self.cap as u64)) as usize
    }

    /// Rows ever written.
    pub fn total_rows(&self) -> u64 {
        self.total
    }

    /// Rows overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.cap as u64)
    }

    /// Entity population covered by the columns `(clusters, cores, tasks)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.n_clusters, self.n_cores, self.n_tasks)
    }

    /// Ring indices of the held rows, oldest first.
    pub fn row_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let held = self.rows();
        let start = if self.total > self.cap as u64 {
            (self.total % self.cap as u64) as usize
        } else {
            0
        };
        (0..held).map(move |k| (start + k) % self.cap)
    }

    /// Simulated time of row at ring index `i`, in µs.
    pub fn time_us(&self, i: usize) -> u64 {
        self.t_us[i]
    }
}

/// Write handle over one just-opened recorder row.
#[derive(Debug)]
pub struct RowWriter<'a> {
    rec: &'a mut SeriesRecorder,
    i: usize,
}

impl RowWriter<'_> {
    /// Chip-level scalars: power, headroom to the TDP (`NaN` without a
    /// cap), hottest cluster temperature (`NaN` without a thermal model).
    pub fn chip(&mut self, power_w: f64, tdp_headroom_w: f64, hottest_c: f64) -> &mut Self {
        self.rec.chip_power_w[self.i] = power_w;
        self.rec.tdp_headroom_w[self.i] = tdp_headroom_w;
        self.rec.hottest_c[self.i] = hottest_c;
        self
    }

    /// Market scalars from the [`PolicySample`].
    pub fn policy(&mut self, sample: &PolicySample) -> &mut Self {
        self.rec.allowance[self.i] = sample.allowance;
        self.rec.money_supply[self.i] = sample.money_supply;
        self.rec.market_fast_hit[self.i] = sample.market_fast_hit;
        self.rec.market_dirty_stages[self.i] = sample.market_dirty_stages;
        self.rec.market_workers[self.i] = sample.market_workers;
        for c in 0..self.rec.n_cores {
            self.rec.core_price[c][self.i] = sample.core_price(c);
        }
        self
    }

    /// Cumulative degradation counters (sensor fallbacks, DVFS retries,
    /// migration retries, orphaned tasks).
    pub fn degradation(&mut self, sf: u64, dr: u64, mr: u64, orphaned: u64) -> &mut Self {
        self.rec.sensor_fallbacks[self.i] = sf;
        self.rec.dvfs_retries[self.i] = dr;
        self.rec.migration_retries[self.i] = mr;
        self.rec.tasks_orphaned[self.i] = orphaned;
        self
    }

    /// This quantum's per-phase wall ns (from
    /// [`PhaseProfiler::take_last`](crate::profiler::PhaseProfiler::take_last)).
    pub fn phases(&mut self, last_ns: &[u64; Phase::COUNT]) -> &mut Self {
        for (p, &ns) in last_ns.iter().enumerate() {
            self.rec.phase_ns[p][self.i] = ns;
        }
        self
    }

    /// One cluster's operating point and sensors. Off clusters report zero
    /// frequency/voltage.
    pub fn cluster(
        &mut self,
        c: usize,
        freq_mhz: f64,
        volt_mv: f64,
        power_w: f64,
        temp_c: f64,
    ) -> &mut Self {
        if c < self.rec.n_clusters {
            self.rec.cluster_freq_mhz[c][self.i] = freq_mhz;
            self.rec.cluster_volt_mv[c][self.i] = volt_mv;
            self.rec.cluster_power_w[c][self.i] = power_w;
            self.rec.cluster_temp_c[c][self.i] = temp_c;
        }
        self
    }

    /// One core's supply (PU available this quantum).
    pub fn core_supply(&mut self, c: usize, supply: f64) -> &mut Self {
        if c < self.rec.n_cores {
            self.rec.core_supply[c][self.i] = supply;
        }
        self
    }

    /// One task's share, granted PU (the IPS proxy — PU actually executed
    /// per quantum), heart rate, and normalized heart rate. Inactive slots
    /// simply skip the call and stay `NaN`.
    pub fn task(&mut self, t: usize, share: f64, granted: f64, hr: f64, hr_norm: f64) -> &mut Self {
        if t < self.rec.n_tasks {
            self.rec.task_share[t][self.i] = share;
            self.rec.task_granted[t][self.i] = granted;
            self.rec.task_hr[t][self.i] = hr;
            self.rec.task_hr_norm[t][self.i] = hr_norm;
        }
        self
    }

    /// The streaming exporter's own counters
    /// ([`StreamStats`](crate::stream::StreamStats)-shaped:
    /// rows flushed, rows lost to wrap, flushes), so stream backlog is
    /// itself on the record. Runs without a stream skip the call and the
    /// columns stay `NaN`; the ring-wrap count is written unconditionally
    /// by [`SeriesRecorder::push_row`].
    pub fn obs_stream(&mut self, rows: f64, lost: f64, flushes: f64) -> &mut Self {
        self.rec.obs_stream_rows[self.i] = rows;
        self.rec.obs_stream_lost[self.i] = lost;
        self.rec.obs_stream_flushes[self.i] = flushes;
        self
    }

    /// One open-loop task's request-queue state: queue depth, windowed p99
    /// latency, its SLO (both ms), and the cumulative shed count. Closed-loop
    /// tasks skip the call and the columns stay `NaN`.
    pub fn task_latency(
        &mut self,
        t: usize,
        queue: f64,
        p99_ms: f64,
        slo_ms: f64,
        shed: f64,
    ) -> &mut Self {
        if t < self.rec.n_tasks {
            self.rec.task_queue[t][self.i] = queue;
            self.rec.task_p99_ms[t][self.i] = p99_ms;
            self.rec.task_slo_ms[t][self.i] = slo_ms;
            self.rec.task_shed[t][self.i] = shed;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_wrap_accounting() {
        let mut r = SeriesRecorder::new(4);
        r.ensure_shape(2, 5, 3);
        for q in 0..10u64 {
            r.push_row(q * 1000).chip(1.0 + q as f64, f64::NAN, 40.0);
        }
        assert_eq!(r.rows(), 4);
        assert_eq!(r.total_rows(), 10);
        assert_eq!(r.dropped(), 6);
        // Oldest-first iteration yields quanta 6..10.
        let times: Vec<u64> = r.row_indices().map(|i| r.time_us(i)).collect();
        assert_eq!(times, vec![6000, 7000, 8000, 9000]);
        let powers: Vec<f64> = r.row_indices().map(|i| r.chip_power_w[i]).collect();
        assert_eq!(powers, vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn unwritten_cells_are_nan() {
        let mut r = SeriesRecorder::new(2);
        r.ensure_shape(1, 2, 2);
        let mut row = r.push_row(0);
        row.task(0, 0.5, 0.4, 30.0, 1.0);
        // Task 1 untouched → NaN; core supplies untouched → NaN.
        let i = r.row_indices().next().unwrap();
        assert!(r.task_share[1][i].is_nan());
        assert!(r.core_supply[0][i].is_nan());
        assert_eq!(r.task_share[0][i], 0.5);
    }

    #[test]
    fn ensure_shape_only_grows() {
        let mut r = SeriesRecorder::new(2);
        r.ensure_shape(2, 4, 8);
        r.ensure_shape(1, 2, 3); // shrink: no-op
        assert_eq!(r.shape(), (2, 4, 8));
    }

    #[test]
    fn policy_sample_roundtrip() {
        let mut s = PolicySample::new();
        assert!(s.allowance.is_nan());
        s.reset(3);
        s.allowance = 12.0;
        s.set_core_price(1, 0.7);
        s.set_core_price(9, 0.9); // out of range: ignored
        assert_eq!(s.core_price(1), 0.7);
        assert!(s.core_price(0).is_nan());
        assert!(s.core_price(9).is_nan());
    }
}
