//! `obs_validate` — well-formedness check for exported telemetry.
//!
//! ```text
//! obs_validate [--scrape ADDR] [TRACE.json|METRICS.csv|METRICS.jsonl|
//!               SNAPSHOT.json|METRICS.prom]...
//! ```
//!
//! Each argument is validated by extension. `.json` documents parse in
//! full; when they carry trace events (a `traceEvents` object or the bare
//! array form) the events are checked too — complete `"X"` events need a
//! non-negative `dur`, any `"B"`/`"E"` pairs must balance per `(pid,
//! tid)`, and counter arguments must be finite numbers. Documents with an
//! `aggregate`/`alert` section (the scrape endpoint's JSON snapshot) get
//! a domain check instead: window invariants, gauge-stat coherence,
//! percentile ordering, and alert-rule sanity. `.prom` (or `.txt`) files
//! validate as Prometheus 0.0.4 text exposition. `.jsonl` parses
//! line-by-line; `.csv` must be rectangular with a header.
//!
//! `--scrape ADDR` (e.g. `--scrape 127.0.0.1:9898` or a full
//! `http://.../` URL) pulls `/metrics` and `/metrics.json` from a live
//! `ppm-sim --serve` endpoint and runs both validators on the responses.
//!
//! CI runs this on the smoke artifacts and against a live fleet serve;
//! exit status 0 means every input passed.

use std::collections::HashMap;
use std::process::exit;

use ppm_obs::json::{self, Json};

fn fail(msg: &str) -> ! {
    eprintln!("obs_validate: {msg}");
    exit(1);
}

fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")));
    // A scrape snapshot (aggregate/alert sections) gets the domain check.
    if doc.get("aggregate").is_some() || doc.get("alert").is_some() {
        validate_snapshot(path, &doc);
        return;
    }
    // Accept both the object form ({"traceEvents": [...]}) and the bare
    // array form of the trace_event spec. Any other well-formed document
    // (e.g. a BENCH_*.json record) passes as plain JSON.
    let Some(events) = doc.get("traceEvents").unwrap_or(&doc).as_arr() else {
        println!("ok: {path}: valid JSON (no trace events)");
        return;
    };
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut depth: HashMap<(i64, i64), i64> = HashMap::new();
    for (k, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: event {k}: missing \"ph\"")));
        let pid_tid = || {
            let pid = e.get("pid").and_then(Json::as_num).unwrap_or(0.0) as i64;
            let tid = e.get("tid").and_then(Json::as_num).unwrap_or(0.0) as i64;
            (pid, tid)
        };
        match ph {
            "X" => {
                spans += 1;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| fail(&format!("{path}: event {k}: X without dur")));
                if dur.is_nan() || dur < 0.0 {
                    fail(&format!("{path}: event {k}: negative/NaN dur"));
                }
                if e.get("ts").and_then(Json::as_num).is_none() {
                    fail(&format!("{path}: event {k}: X without numeric ts"));
                }
            }
            "B" => {
                spans += 1;
                *depth.entry(pid_tid()).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(pid_tid()).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    fail(&format!("{path}: event {k}: E without matching B"));
                }
            }
            "C" => {
                counters += 1;
                match e.get("args") {
                    Some(Json::Obj(args)) if !args.is_empty() => {
                        for (name, v) in args {
                            match v.as_num() {
                                Some(n) if n.is_finite() => {}
                                _ => fail(&format!(
                                    "{path}: event {k}: counter series {name} is not a finite number"
                                )),
                            }
                        }
                    }
                    _ => fail(&format!("{path}: event {k}: counter without args")),
                }
            }
            "M" | "I" => {}
            other => fail(&format!("{path}: event {k}: unsupported phase {other:?}")),
        }
    }
    if let Some((&(pid, tid), _)) = depth.iter().find(|(_, &d)| d != 0) {
        fail(&format!("{path}: unbalanced B/E on pid {pid} tid {tid}"));
    }
    println!(
        "ok: {path}: {} events ({spans} spans, {counters} counters)",
        events.len()
    );
}

/// A non-negative finite number at `ctx`, or die.
fn req_num(path: &str, ctx: &str, v: Option<&Json>) -> f64 {
    match v.and_then(Json::as_num) {
        Some(n) if n.is_finite() && n >= 0.0 => n,
        _ => fail(&format!("{path}: {ctx}: missing or negative number")),
    }
}

/// One gauge-stat object (`{"n","mean","min","max"}`): empty stats carry
/// null extrema; populated ones need finite `min <= max`.
fn check_gauge(path: &str, ctx: &str, g: &Json) {
    let n = req_num(path, &format!("{ctx}.n"), g.get("n"));
    if n == 0.0 {
        return;
    }
    let min = g.get("min").and_then(Json::as_num);
    let max = g.get("max").and_then(Json::as_num);
    match (min, max) {
        (Some(lo), Some(hi)) if lo.is_finite() && hi.is_finite() && lo <= hi => {}
        _ => fail(&format!("{path}: {ctx}: min/max incoherent for n > 0")),
    }
}

/// One latency-sketch object: non-negative counts with ordered
/// percentiles (p50 <= p95 <= p99 — the sketch reports bucket upper
/// bounds, so p99 may legitimately exceed `max_ns`).
fn check_hist(path: &str, ctx: &str, h: &Json) {
    req_num(path, &format!("{ctx}.count"), h.get("count"));
    req_num(path, &format!("{ctx}.sum_ns"), h.get("sum_ns"));
    let p50 = req_num(path, &format!("{ctx}.p50_ns"), h.get("p50_ns"));
    let p95 = req_num(path, &format!("{ctx}.p95_ns"), h.get("p95_ns"));
    let p99 = req_num(path, &format!("{ctx}.p99_ns"), h.get("p99_ns"));
    if !(p50 <= p95 && p95 <= p99) {
        fail(&format!(
            "{path}: {ctx}: percentiles out of order ({p50} / {p95} / {p99})"
        ));
    }
}

/// One window-stats object: quanta plus counters non-negative, every
/// gauge stat coherent, both latency sketches ordered.
fn check_window(path: &str, ctx: &str, w: &Json) {
    let quanta = req_num(path, &format!("{ctx}.quanta"), w.get("quanta"));
    for key in [
        "slo_bad_quanta",
        "over_tdp_quanta",
        "shed",
        "degradation",
        "obs_dropped_rows",
        "obs_stream_lost",
    ] {
        let v = req_num(path, &format!("{ctx}.{key}"), w.get(key));
        if key.ends_with("_quanta") && v > quanta {
            fail(&format!(
                "{path}: {ctx}.{key}: {v} exceeds the window's {quanta} quanta"
            ));
        }
    }
    for key in ["power_w", "tdp_headroom_w", "hottest_c", "p99_over_slo"] {
        let g = w
            .get(key)
            .unwrap_or_else(|| fail(&format!("{path}: {ctx}.{key}: missing gauge stat")));
        check_gauge(path, &format!("{ctx}.{key}"), g);
    }
    for key in ["plan_ns", "task_p99_ns"] {
        let h = w
            .get(key)
            .unwrap_or_else(|| fail(&format!("{path}: {ctx}.{key}: missing sketch")));
        check_hist(path, &format!("{ctx}.{key}"), h);
    }
}

/// One aggregation section (fleet rollup or a chip): label, positive
/// window, `last_window` extent inside the window grid, coherent totals.
fn check_agg(path: &str, ctx: &str, a: &Json) {
    if a.get("label").and_then(Json::as_str).is_none() {
        fail(&format!("{path}: {ctx}: missing label"));
    }
    let window_us = req_num(path, &format!("{ctx}.window_us"), a.get("window_us"));
    if window_us == 0.0 {
        fail(&format!("{path}: {ctx}: zero aggregation window"));
    }
    req_num(
        path,
        &format!("{ctx}.windows_closed"),
        a.get("windows_closed"),
    );
    req_num(path, &format!("{ctx}.now_us"), a.get("now_us"));
    match a.get("last_window") {
        None => fail(&format!("{path}: {ctx}: missing last_window")),
        Some(Json::Null) => {}
        Some(w) => {
            let start = req_num(
                path,
                &format!("{ctx}.last_window.start_us"),
                w.get("start_us"),
            );
            let end = req_num(path, &format!("{ctx}.last_window.end_us"), w.get("end_us"));
            if end <= start {
                fail(&format!("{path}: {ctx}.last_window: empty extent"));
            }
            let stats = w
                .get("stats")
                .unwrap_or_else(|| fail(&format!("{path}: {ctx}.last_window: missing stats")));
            check_window(path, &format!("{ctx}.last_window.stats"), stats);
        }
    }
    let totals = a
        .get("totals")
        .unwrap_or_else(|| fail(&format!("{path}: {ctx}: missing totals")));
    check_window(path, &format!("{ctx}.totals"), totals);
}

/// Domain check for a scrape snapshot document (`/metrics.json` or a
/// saved copy): the `aggregate` section's fleet/chip rollups and the
/// `alert` section's rule states.
fn validate_snapshot(path: &str, doc: &Json) {
    req_num(path, "at_us", doc.get("at_us"));
    let mut chips = 0usize;
    let mut rules = 0usize;
    if let Some(agg) = doc.get("aggregate") {
        match agg.get("fleet") {
            None | Some(Json::Null) => {}
            Some(fleet) => check_agg(path, "aggregate.fleet", fleet),
        }
        if let Some(arr) = agg.get("chips").and_then(Json::as_arr) {
            for (i, chip) in arr.iter().enumerate() {
                check_agg(path, &format!("aggregate.chips[{i}]"), chip);
            }
            chips = arr.len();
        }
    }
    match doc.get("alert") {
        None | Some(Json::Null) => {}
        Some(al) => {
            let arr = al
                .get("rules")
                .and_then(Json::as_arr)
                .unwrap_or_else(|| fail(&format!("{path}: alert: missing rules array")));
            for (i, r) in arr.iter().enumerate() {
                let ctx = format!("alert.rules[{i}]");
                if r.get("alert")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    fail(&format!("{path}: {ctx}: missing alert name"));
                }
                if !matches!(r.get("firing"), Some(Json::Bool(_))) {
                    fail(&format!("{path}: {ctx}: firing is not a bool"));
                }
                let threshold = req_num(path, &format!("{ctx}.threshold"), r.get("threshold"));
                if threshold == 0.0 {
                    fail(&format!("{path}: {ctx}: zero threshold"));
                }
                // Burns are null until enough windows closed.
                for key in ["fast_burn", "slow_burn"] {
                    match r.get(key) {
                        None => fail(&format!("{path}: {ctx}: missing {key}")),
                        Some(Json::Null) => {}
                        Some(v) => {
                            req_num(path, &format!("{ctx}.{key}"), Some(v));
                        }
                    }
                }
            }
            rules = arr.len();
            req_num(path, "alert.events_total", al.get("events_total"));
            req_num(path, "alert.fired_total", al.get("fired_total"));
        }
    }
    println!("ok: {path}: scrape snapshot ({chips} chip section(s), {rules} alert rule(s))");
}

/// A legal Prometheus metric/label name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line: metric name, label pairs, value text.
type PromSample<'a> = (&'a str, Vec<(String, String)>, &'a str);

/// Split one sample line into (name, labels, value-text). Label values
/// may contain escaped quotes; ours never do, but the parser tolerates
/// them rather than mis-splitting.
fn prom_sample(line: &str) -> Option<PromSample<'_>> {
    let Some(brace) = line.find('{') else {
        let mut it = line.splitn(2, ' ');
        return Some((it.next()?, Vec::new(), it.next()?.trim()));
    };
    let close = line.rfind('}')?;
    let name = &line[..brace];
    let value = line[close + 1..].trim();
    let mut labels = Vec::new();
    let mut rest = &line[brace + 1..close];
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        let mut val = String::new();
        let mut escaped = false;
        let mut consumed = None;
        for (i, c) in rest[eq + 2..].char_indices() {
            if escaped {
                val.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                consumed = Some(eq + 2 + i + 1);
                break;
            } else {
                val.push(c);
            }
        }
        labels.push((key, val));
        rest = &rest[consumed?..];
    }
    Some((name, labels, value))
}

/// Validate Prometheus 0.0.4 text exposition: legal names, parseable
/// finite sample values, non-negative counters, `ppm_up 1`, and ordered
/// `quantile` series per metric/label-set.
fn check_prom_text(label: &str, text: &str) {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    let mut up = None;
    let mut quantiles: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    for (n, line) in text.lines().enumerate() {
        let row = n + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            match (it.next(), it.next()) {
                (Some("HELP"), Some(name)) | (Some("TYPE"), Some(name)) => {
                    if !prom_name_ok(name) {
                        fail(&format!("{label}: line {row}: bad metric name {name:?}"));
                    }
                    if rest.starts_with("TYPE") {
                        let kind = it.next().unwrap_or("");
                        if !matches!(kind, "counter" | "gauge" | "summary" | "histogram") {
                            fail(&format!("{label}: line {row}: bad TYPE {kind:?}"));
                        }
                        types.insert(name.to_string(), kind.to_string());
                    }
                }
                _ => fail(&format!("{label}: line {row}: malformed comment")),
            }
            continue;
        }
        let Some((name, labels, value)) = prom_sample(line) else {
            fail(&format!("{label}: line {row}: malformed sample"));
        };
        if !prom_name_ok(name) {
            fail(&format!("{label}: line {row}: bad metric name {name:?}"));
        }
        for (k, _) in &labels {
            if !prom_name_ok(k) {
                fail(&format!("{label}: line {row}: bad label name {k:?}"));
            }
        }
        let v: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => fail(&format!("{label}: line {row}: unparseable value {value:?}")),
        };
        if !v.is_finite() {
            fail(&format!("{label}: line {row}: non-finite sample {value}"));
        }
        if types.get(name).is_some_and(|t| t == "counter") && v < 0.0 {
            fail(&format!("{label}: line {row}: negative counter {name}"));
        }
        if name == "ppm_up" {
            up = Some(v);
        }
        if let Some((_, q)) = labels.iter().find(|(k, _)| k == "quantile") {
            let q: f64 = q
                .parse()
                .unwrap_or_else(|_| fail(&format!("{label}: line {row}: bad quantile")));
            let mut key = String::from(name);
            for (k, v) in &labels {
                if k != "quantile" {
                    key.push_str(&format!("|{k}={v}"));
                }
            }
            quantiles.entry(key).or_default().push((q, v));
        }
        samples += 1;
    }
    if samples == 0 {
        fail(&format!("{label}: no samples"));
    }
    if up != Some(1.0) {
        fail(&format!("{label}: ppm_up is not 1"));
    }
    for (key, mut series) in quantiles {
        series.sort_by(|a, b| a.0.total_cmp(&b.0));
        if series.windows(2).any(|w| w[0].1 > w[1].1) {
            fail(&format!("{label}: quantile series {key} is not monotone"));
        }
    }
    println!(
        "ok: {label}: {samples} Prometheus samples, {} typed metrics",
        types.len()
    );
}

fn validate_prom(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    check_prom_text(path, &text);
}

/// Pull `/metrics` and `/metrics.json` from a live scrape endpoint and
/// validate both responses.
fn validate_scrape(addr: &str) {
    let addr = addr
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    let text = ppm_obs::http::fetch(&addr, "/metrics")
        .unwrap_or_else(|e| fail(&format!("scrape {addr}/metrics: {e}")));
    check_prom_text(&format!("{addr}/metrics"), &text);
    let body = ppm_obs::http::fetch(&addr, "/metrics.json")
        .unwrap_or_else(|e| fail(&format!("scrape {addr}/metrics.json: {e}")));
    let doc = json::parse(&body)
        .unwrap_or_else(|e| fail(&format!("scrape {addr}/metrics.json: invalid JSON: {e}")));
    validate_snapshot(&format!("{addr}/metrics.json"), &doc);
}

/// Domain check for the incremental-market telemetry: `market_fast_hit`
/// must be 0/1 (or absent — `null`/empty before the first round) and
/// `market_dirty_stages` an integer in 0..=4.
fn check_market_columns(path: &str, row: &str, fast: Option<f64>, dirty: Option<f64>) {
    if let Some(v) = fast {
        if v != 0.0 && v != 1.0 {
            fail(&format!("{path}: {row}: market_fast_hit {v} is not 0/1"));
        }
    }
    if let Some(v) = dirty {
        if v.fract() != 0.0 || !(0.0..=4.0).contains(&v) {
            fail(&format!(
                "{path}: {row}: market_dirty_stages {v} is not an integer in 0..=4"
            ));
        }
    }
}

fn validate_jsonl(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let mut rows = 0usize;
    for (n, line) in text.lines().enumerate() {
        let doc = json::parse(line)
            .unwrap_or_else(|e| fail(&format!("{path}: line {}: invalid JSON: {e}", n + 1)));
        check_market_columns(
            path,
            &format!("line {}", n + 1),
            doc.get("market_fast_hit").and_then(Json::as_num),
            doc.get("market_dirty_stages").and_then(Json::as_num),
        );
        rows += 1;
    }
    println!("ok: {path}: {rows} JSONL rows");
}

fn validate_csv(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let mut lines = text.lines();
    let header = lines
        .next()
        .unwrap_or_else(|| fail(&format!("{path}: empty CSV")));
    let cols = header.split(',').count();
    let col_idx = |name: &str| header.split(',').position(|h| h == name);
    let fast_col = col_idx("market_fast_hit");
    let dirty_col = col_idx("market_dirty_stages");
    let parse_cell = |line: &str, idx: Option<usize>| -> Option<f64> {
        let cell = line.split(',').nth(idx?)?;
        if cell.is_empty() {
            None // NaN exports as the empty cell
        } else {
            cell.parse::<f64>().ok()
        }
    };
    let mut rows = 0usize;
    for (n, line) in lines.enumerate() {
        if line.split(',').count() != cols {
            fail(&format!(
                "{path}: row {}: ragged ({cols} header columns)",
                n + 2
            ));
        }
        check_market_columns(
            path,
            &format!("row {}", n + 2),
            parse_cell(line, fast_col),
            parse_cell(line, dirty_col),
        );
        rows += 1;
    }
    println!("ok: {path}: {rows} CSV rows × {cols} columns");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail(
            "usage: obs_validate [--scrape ADDR] \
             [TRACE.json|METRICS.csv|METRICS.jsonl|METRICS.prom]...",
        );
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--scrape" {
            let addr = it
                .next()
                .unwrap_or_else(|| fail("--scrape needs an ADDR (host:port)"));
            validate_scrape(addr);
        } else if arg.ends_with(".jsonl") {
            validate_jsonl(arg);
        } else if arg.ends_with(".json") {
            validate_trace(arg);
        } else if arg.ends_with(".prom") || arg.ends_with(".txt") {
            validate_prom(arg);
        } else {
            validate_csv(arg);
        }
    }
}
