//! `obs_validate` — well-formedness check for exported telemetry.
//!
//! ```text
//! obs_validate [TRACE.json|METRICS.csv|METRICS.jsonl|OTHER.json]...
//! ```
//!
//! Each argument is validated by extension. `.json` documents parse in
//! full; when they carry trace events (a `traceEvents` object or the bare
//! array form) the events are checked too — complete `"X"` events need a
//! non-negative `dur`, any `"B"`/`"E"` pairs must balance per `(pid,
//! tid)`, and counter arguments must be finite numbers. `.jsonl` parses
//! line-by-line; `.csv` must be rectangular with a header. CI runs this
//! on the smoke artifacts; exit status 0 means every file passed.

use std::collections::HashMap;
use std::process::exit;

use ppm_obs::json::{self, Json};

fn fail(msg: &str) -> ! {
    eprintln!("obs_validate: {msg}");
    exit(1);
}

fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")));
    // Accept both the object form ({"traceEvents": [...]}) and the bare
    // array form of the trace_event spec. Any other well-formed document
    // (e.g. a BENCH_*.json record) passes as plain JSON.
    let Some(events) = doc.get("traceEvents").unwrap_or(&doc).as_arr() else {
        println!("ok: {path}: valid JSON (no trace events)");
        return;
    };
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut depth: HashMap<(i64, i64), i64> = HashMap::new();
    for (k, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: event {k}: missing \"ph\"")));
        let pid_tid = || {
            let pid = e.get("pid").and_then(Json::as_num).unwrap_or(0.0) as i64;
            let tid = e.get("tid").and_then(Json::as_num).unwrap_or(0.0) as i64;
            (pid, tid)
        };
        match ph {
            "X" => {
                spans += 1;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| fail(&format!("{path}: event {k}: X without dur")));
                if dur.is_nan() || dur < 0.0 {
                    fail(&format!("{path}: event {k}: negative/NaN dur"));
                }
                if e.get("ts").and_then(Json::as_num).is_none() {
                    fail(&format!("{path}: event {k}: X without numeric ts"));
                }
            }
            "B" => {
                spans += 1;
                *depth.entry(pid_tid()).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(pid_tid()).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    fail(&format!("{path}: event {k}: E without matching B"));
                }
            }
            "C" => {
                counters += 1;
                match e.get("args") {
                    Some(Json::Obj(args)) if !args.is_empty() => {
                        for (name, v) in args {
                            match v.as_num() {
                                Some(n) if n.is_finite() => {}
                                _ => fail(&format!(
                                    "{path}: event {k}: counter series {name} is not a finite number"
                                )),
                            }
                        }
                    }
                    _ => fail(&format!("{path}: event {k}: counter without args")),
                }
            }
            "M" | "I" => {}
            other => fail(&format!("{path}: event {k}: unsupported phase {other:?}")),
        }
    }
    if let Some((&(pid, tid), _)) = depth.iter().find(|(_, &d)| d != 0) {
        fail(&format!("{path}: unbalanced B/E on pid {pid} tid {tid}"));
    }
    println!(
        "ok: {path}: {} events ({spans} spans, {counters} counters)",
        events.len()
    );
}

/// Domain check for the incremental-market telemetry: `market_fast_hit`
/// must be 0/1 (or absent — `null`/empty before the first round) and
/// `market_dirty_stages` an integer in 0..=4.
fn check_market_columns(path: &str, row: &str, fast: Option<f64>, dirty: Option<f64>) {
    if let Some(v) = fast {
        if v != 0.0 && v != 1.0 {
            fail(&format!("{path}: {row}: market_fast_hit {v} is not 0/1"));
        }
    }
    if let Some(v) = dirty {
        if v.fract() != 0.0 || !(0.0..=4.0).contains(&v) {
            fail(&format!(
                "{path}: {row}: market_dirty_stages {v} is not an integer in 0..=4"
            ));
        }
    }
}

fn validate_jsonl(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let mut rows = 0usize;
    for (n, line) in text.lines().enumerate() {
        let doc = json::parse(line)
            .unwrap_or_else(|e| fail(&format!("{path}: line {}: invalid JSON: {e}", n + 1)));
        check_market_columns(
            path,
            &format!("line {}", n + 1),
            doc.get("market_fast_hit").and_then(Json::as_num),
            doc.get("market_dirty_stages").and_then(Json::as_num),
        );
        rows += 1;
    }
    println!("ok: {path}: {rows} JSONL rows");
}

fn validate_csv(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: read failed: {e}")));
    let mut lines = text.lines();
    let header = lines
        .next()
        .unwrap_or_else(|| fail(&format!("{path}: empty CSV")));
    let cols = header.split(',').count();
    let col_idx = |name: &str| header.split(',').position(|h| h == name);
    let fast_col = col_idx("market_fast_hit");
    let dirty_col = col_idx("market_dirty_stages");
    let parse_cell = |line: &str, idx: Option<usize>| -> Option<f64> {
        let cell = line.split(',').nth(idx?)?;
        if cell.is_empty() {
            None // NaN exports as the empty cell
        } else {
            cell.parse::<f64>().ok()
        }
    };
    let mut rows = 0usize;
    for (n, line) in lines.enumerate() {
        if line.split(',').count() != cols {
            fail(&format!(
                "{path}: row {}: ragged ({cols} header columns)",
                n + 2
            ));
        }
        check_market_columns(
            path,
            &format!("row {}", n + 2),
            parse_cell(line, fast_col),
            parse_cell(line, dirty_col),
        );
        rows += 1;
    }
    println!("ok: {path}: {rows} CSV rows × {cols} columns");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("usage: obs_validate [TRACE.json|METRICS.csv|METRICS.jsonl]...");
    }
    for path in &args {
        if path.ends_with(".jsonl") {
            validate_jsonl(path);
        } else if path.ends_with(".json") {
            validate_trace(path);
        } else {
            validate_csv(path);
        }
    }
}
