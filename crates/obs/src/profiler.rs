//! The phase profiler: where does a quantum's wall-clock go?
//!
//! The executor (and, through the [`Phase`] hooks, the market) wraps each
//! stage of a quantum — snapshot capture, the manager's plan with its
//! bid / price-discovery / DVFS / LBT sub-phases, plan application, the
//! physics step, and the auditor — in a *span* measured on the host's
//! monotonic clock ([`std::time::Instant`]). Spans are aggregated into
//! fixed-bucket log2 histograms ([`Hist`]), so recording is O(1), needs no
//! allocation, and the whole profiler is a few KB regardless of run length.
//!
//! Virtual time never appears here: the simulated clock orders the spans
//! (the recorder and the Chrome exporter place them on the quantum they
//! belong to), while the monotonic clock sizes them. Keeping the two
//! timebases separate is what lets profiling observe a run without
//! perturbing it — the golden tapes stay bit-identical with profiling on.

use std::time::Instant;

/// One instrumented stage of a simulation quantum.
///
/// The first block are executor stages (disjoint, in quantum order); the
/// `Market*` and `Lbt` entries are sub-phases *inside* [`Phase::Plan`]
/// reported by managers that implement
/// `PowerManager::plan_profiled` — their sum is bounded by `Plan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// `SystemSnapshot::capture` plus observation-fault perturbation.
    Capture,
    /// The whole `PowerManager::plan` call.
    Plan,
    /// Plan application (`System::apply_plan`, or the fault gauntlet).
    Apply,
    /// The physics quantum (`System::step`).
    Step,
    /// The every-quantum invariant auditor, when attached.
    Audit,
    /// Market sub-phase: observation diffing and fast-path replay — the
    /// incremental engine's change detection (and, on a clean converged
    /// round, the whole round).
    MarketDiff,
    /// Market sub-phase: slot placement, allowance distribution, task bids.
    /// In a sharded round this covers the serial agent-slot prepass.
    MarketBid,
    /// Market sub-phase: the parallel region of a sharded round — bidding,
    /// price discovery, purchases and cluster agents fanned out over the
    /// worker pool (zero in serial rounds).
    MarketShard,
    /// Market sub-phase: core-agent price discovery and purchases. In a
    /// sharded round this covers the slot-order merge and output sorts.
    MarketPrice,
    /// Market sub-phase: cluster inflation/deflation and chip allowance.
    MarketDvfs,
    /// The load-balancing module, on its cadence.
    Lbt,
}

impl Phase {
    /// Number of phases (sizes the fixed arrays).
    pub const COUNT: usize = 11;

    /// Every phase, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Capture,
        Phase::Plan,
        Phase::Apply,
        Phase::Step,
        Phase::Audit,
        Phase::MarketDiff,
        Phase::MarketBid,
        Phase::MarketShard,
        Phase::MarketPrice,
        Phase::MarketDvfs,
        Phase::Lbt,
    ];

    /// Stable display name (also the Chrome-trace span name and the
    /// `ph_<name>_ns` CSV column stem).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Capture => "capture",
            Phase::Plan => "plan",
            Phase::Apply => "apply",
            Phase::Step => "step",
            Phase::Audit => "audit",
            Phase::MarketDiff => "market_diff",
            Phase::MarketBid => "market_bid",
            Phase::MarketShard => "market_shard",
            Phase::MarketPrice => "market_price",
            Phase::MarketDvfs => "market_dvfs",
            Phase::Lbt => "lbt",
        }
    }

    /// Whether this is a sub-phase of [`Phase::Plan`] (drawn nested in the
    /// Chrome trace).
    pub fn is_plan_subphase(self) -> bool {
        matches!(
            self,
            Phase::MarketDiff
                | Phase::MarketBid
                | Phase::MarketShard
                | Phase::MarketPrice
                | Phase::MarketDvfs
                | Phase::Lbt
        )
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Number of log2 buckets: bucket `i` counts durations with
/// `floor(log2(ns)) == i`, so 40 buckets span 1 ns to ~18 minutes — far
/// beyond any quantum stage.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket log2 histogram of nanosecond durations.
///
/// Recording is a shift and two adds; percentiles are approximate (the
/// answer is the upper bound of the bucket holding the requested rank,
/// clamped to the true maximum), which is the right trade for a profiler
/// that must never allocate or sort on the hot path.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Hist {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Bucket index for a duration: `floor(log2(ns))`, clamped to the top
    /// bucket (0 ns shares bucket 0 with 1 ns).
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations in ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded duration in ns (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean duration in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (`buckets[i]` counts `floor(log2(ns)) == i`).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Approximate percentile `q` in `[0, 100]`: the inclusive upper bound
    /// (`2^(i+1) − 1` ns) of the bucket containing the rank-`ceil(q/100·n)`
    /// duration, clamped to the exact maximum. Returns 0 when empty.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-phase histograms plus the most recent span per phase (so the
/// recorder can attach "this quantum's" durations to its row).
///
/// Everything is fixed-size: construction is the only allocation-relevant
/// moment, and even that is plain stack-sized arrays.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    hists: [Hist; Phase::COUNT],
    /// Span recorded for each phase since the last [`PhaseProfiler::take_last`].
    last_ns: [u64; Phase::COUNT],
}

impl Default for PhaseProfiler {
    fn default() -> PhaseProfiler {
        PhaseProfiler::new()
    }
}

impl PhaseProfiler {
    /// A fresh profiler with empty histograms.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler {
            hists: [const { Hist::new() }; Phase::COUNT],
            last_ns: [0; Phase::COUNT],
        }
    }

    /// Record a span of `ns` for `phase`.
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.hists[phase.index()].record(ns);
        self.last_ns[phase.index()] += ns;
    }

    /// The histogram for `phase`.
    pub fn hist(&self, phase: Phase) -> &Hist {
        &self.hists[phase.index()]
    }

    /// Spans accumulated per phase since the previous call, then reset —
    /// the recorder calls this once per quantum to column-ize "where did
    /// *this* quantum's wall time go". Indexed like [`Phase::ALL`] via
    /// `Phase as usize`.
    pub fn take_last(&mut self) -> [u64; Phase::COUNT] {
        std::mem::replace(&mut self.last_ns, [0; Phase::COUNT])
    }

    /// Total spans recorded across all phases.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(Hist::count).sum()
    }

    /// Merge another profiler's histograms into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }
}

/// Close the span opened at `*mark` as `phase` and restart the mark — the
/// "lap" idiom instrumentation sites use. Both options collapse to nothing
/// when profiling is off, so the disabled cost is one branch.
#[inline]
pub fn lap(prof: Option<&mut PhaseProfiler>, mark: &mut Option<Instant>, phase: Phase) {
    if let (Some(p), Some(m)) = (prof, mark.as_mut()) {
        let now = Instant::now();
        p.record(phase, now.duration_since(*m).as_nanos() as u64);
        *m = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 0);
        assert_eq!(Hist::bucket_of(2), 1);
        assert_eq!(Hist::bucket_of(3), 1);
        assert_eq!(Hist::bucket_of(4), 2);
        assert_eq!(Hist::bucket_of(1023), 9);
        assert_eq!(Hist::bucket_of(1024), 10);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    // The hand-computed fixture the exporter tests lean on: ten spans with
    // known bucket placement and exact expected percentiles.
    #[test]
    fn percentiles_match_hand_computed_fixture() {
        let mut h = Hist::new();
        // Buckets: 100,120 → b6; 200 → b7; 1000(×6) → b9; 9000 → b13.
        for ns in [100, 120, 200, 1000, 1000, 1000, 1000, 1000, 1000, 9000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_ns(), 9000);
        assert_eq!(h.sum_ns(), 100 + 120 + 200 + 6000 + 9000);
        // p50: rank ceil(0.5·10)=5 → cumulative 2(b6)+1(b7)+6(b9) reaches 5
        // in bucket 9 → upper bound 2^10−1 = 1023.
        assert_eq!(h.percentile_ns(50.0), 1023);
        // p95: rank 10 → bucket 13 → upper bound 2^14−1 = 16383, clamped
        // to the exact max 9000.
        assert_eq!(h.percentile_ns(95.0), 9000);
        assert_eq!(h.percentile_ns(99.0), 9000);
        // p10: rank 1 → bucket 6 → upper bound 127.
        assert_eq!(h.percentile_ns(10.0), 127);
        assert_eq!(h.percentile_ns(0.0), 127); // rank clamps to 1
        assert_eq!(h.percentile_ns(100.0), 9000);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.percentile_ns(50.0), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(10);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 5000);
    }

    #[test]
    fn take_last_accumulates_and_resets() {
        let mut p = PhaseProfiler::new();
        p.record(Phase::Plan, 100);
        p.record(Phase::Plan, 50);
        p.record(Phase::Step, 7);
        let last = p.take_last();
        assert_eq!(last[Phase::Plan as usize], 150);
        assert_eq!(last[Phase::Step as usize], 7);
        assert_eq!(p.take_last(), [0; Phase::COUNT]);
        // Histograms keep the full history.
        assert_eq!(p.hist(Phase::Plan).count(), 2);
        assert_eq!(p.total_count(), 3);
    }

    #[test]
    fn lap_records_elapsed_and_restarts() {
        let mut p = PhaseProfiler::new();
        let mut mark = Some(Instant::now());
        lap(Some(&mut p), &mut mark, Phase::Capture);
        assert_eq!(p.hist(Phase::Capture).count(), 1);
        // Disabled profiler: no-op, mark untouched.
        lap(None, &mut mark, Phase::Capture);
        assert_eq!(p.hist(Phase::Capture).count(), 1);
        let mut no_mark = None;
        lap(Some(&mut p), &mut no_mark, Phase::Capture);
        assert_eq!(p.hist(Phase::Capture).count(), 1);
    }
}
