//! Windowed metric aggregation over the telemetry ring (DESIGN.md §16).
//!
//! The [`SeriesRecorder`](crate::SeriesRecorder) keeps a raw per-quantum
//! time series; this module rolls it up live into **tumbling sim-time
//! windows** the way an SRE-style monitoring stack would: per-window
//! gauge statistics (mean/min/max), monotone counter deltas, and the
//! profiler's log2 sketch histograms ([`Hist`]) for tail quantiles. The
//! registry is the substrate both the burn-rate alert engine
//! ([`crate::alert`]) and the scrape endpoint ([`crate::http`]) read.
//!
//! Determinism and cost contract:
//!
//! * Windows are aligned to multiples of `window_us` **in simulated
//!   time**, so the rollup a run produces is a pure function of the run's
//!   telemetry rows — the same seed yields the same window tape
//!   regardless of wall-clock speed, thread count, or scrape traffic.
//! * The per-quantum path ([`AggRegistry::observe`]) is indexed stores
//!   and compares into preallocated state: no allocation, no locks, no
//!   syscalls. Closing a window copies one inline [`WindowStats`] (the
//!   histograms are fixed arrays); only *snapshotting* for the scrape
//!   endpoint allocates, and that happens off the quantum hot path.
//! * [`AggSnapshot::absorb`] composes per-chip rollups into a fleet
//!   rollup the way `Auditor::absorb` composes audit reports: counters
//!   add, gauge extrema widen, histograms merge bucket-wise.

use crate::profiler::Hist;

/// Default tumbling-window length: 1 s of simulated time (1000 quanta at
/// the default 1 ms quantum) — long enough for stable percentile ranks,
/// short enough that burn-rate alerts react within a few seconds.
pub const DEFAULT_AGG_WINDOW_US: u64 = 1_000_000;

/// Streaming mean/min/max over the non-NaN samples of one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Samples observed (NaN samples are skipped, not counted).
    pub n: u64,
    /// Sum of samples (mean = `sum / n`).
    pub sum: f64,
    /// Smallest sample (`NaN` when empty).
    pub min: f64,
    /// Largest sample (`NaN` when empty).
    pub max: f64,
}

impl GaugeStat {
    /// An empty statistic.
    pub const fn new() -> GaugeStat {
        GaugeStat {
            n: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Fold one sample in; NaN (an absent sensor) is skipped.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.n += 1;
        self.sum += v;
    }

    /// Mean of the observed samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }

    /// Fold another statistic in (same-gauge windows or sibling chips).
    pub fn merge(&mut self, other: &GaugeStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl Default for GaugeStat {
    fn default() -> GaugeStat {
        GaugeStat::new()
    }
}

/// One window's (or the whole run's) aggregates. Everything is inline —
/// copying a `WindowStats` never touches the heap, which is what lets a
/// window close inside the zero-alloc steady-state quantum.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Quanta folded into this window.
    pub quanta: u64,
    /// Chip power (W).
    pub power_w: GaugeStat,
    /// TDP headroom (W; NaN when no TDP accounting is armed).
    pub headroom_w: GaugeStat,
    /// Hottest sensor (°C; NaN when no thermal model).
    pub hottest_c: GaugeStat,
    /// Worst per-quantum `p99 / SLO` ratio across open-loop tasks.
    pub p99_over_slo: GaugeStat,
    /// Quanta in which any open-loop task's p99 exceeded its SLO.
    pub slo_bad_quanta: u64,
    /// Quanta spent above the TDP (headroom < 0).
    pub over_tdp_quanta: u64,
    /// Requests shed by bounded queues (delta within the window).
    pub shed: u64,
    /// Degradation events — sensor fallbacks, DVFS/migration retries,
    /// orphaned tasks (delta within the window).
    pub degradation: u64,
    /// Telemetry rows lost to ring wrap (delta within the window) — the
    /// recorder's own loss, surfaced as a metric (`obs_*` self-metrics).
    pub obs_dropped_rows: u64,
    /// Rows the streaming exporter lost to wrap before flushing (delta).
    pub obs_stream_lost: u64,
    /// log2 sketch of the manager's plan-phase wall time per quantum
    /// (only populated when profiling is on; observation-only, excluded
    /// from alert evaluation because wall time is not deterministic).
    pub plan_ns: Hist,
    /// log2 sketch of the worst open-loop p99 per quantum, in ns of
    /// simulated latency — a deterministic tail-of-tails sketch.
    pub task_p99_ns: Hist,
}

impl WindowStats {
    /// An empty window.
    pub const fn new() -> WindowStats {
        WindowStats {
            quanta: 0,
            power_w: GaugeStat::new(),
            headroom_w: GaugeStat::new(),
            hottest_c: GaugeStat::new(),
            p99_over_slo: GaugeStat::new(),
            slo_bad_quanta: 0,
            over_tdp_quanta: 0,
            shed: 0,
            degradation: 0,
            obs_dropped_rows: 0,
            obs_stream_lost: 0,
            plan_ns: Hist::new(),
            task_p99_ns: Hist::new(),
        }
    }

    /// Fold another window in: counters add, gauges widen, sketches merge
    /// bucket-wise. Used both for run totals and for the fleet rollup.
    pub fn merge(&mut self, other: &WindowStats) {
        self.quanta += other.quanta;
        self.power_w.merge(&other.power_w);
        self.headroom_w.merge(&other.headroom_w);
        self.hottest_c.merge(&other.hottest_c);
        self.p99_over_slo.merge(&other.p99_over_slo);
        self.slo_bad_quanta += other.slo_bad_quanta;
        self.over_tdp_quanta += other.over_tdp_quanta;
        self.shed += other.shed;
        self.degradation += other.degradation;
        self.obs_dropped_rows += other.obs_dropped_rows;
        self.obs_stream_lost += other.obs_stream_lost;
        self.plan_ns.merge(&other.plan_ns);
        self.task_p99_ns.merge(&other.task_p99_ns);
    }
}

impl Default for WindowStats {
    fn default() -> WindowStats {
        WindowStats::new()
    }
}

/// One quantum's worth of scalars fed to the registry — assembled from
/// the row the recorder just wrote, all by-value (no borrows held).
#[derive(Debug, Clone, Copy)]
pub struct QuantumSample {
    /// Quantum end time (µs of sim time).
    pub t_us: u64,
    /// Chip power (W).
    pub power_w: f64,
    /// TDP headroom (W; NaN when unarmed).
    pub headroom_w: f64,
    /// Hottest sensor (°C; NaN without a thermal model).
    pub hottest_c: f64,
    /// Worst `p99 / SLO` across open-loop tasks (NaN when none).
    pub p99_over_slo: f64,
    /// Any open-loop task's p99 above its SLO this quantum.
    pub slo_bad: bool,
    /// Cumulative sheds across tasks (monotone; the registry takes deltas).
    pub shed_total: u64,
    /// Cumulative degradation events (monotone).
    pub degradation_total: u64,
    /// Cumulative rows dropped by the ring (monotone).
    pub dropped_rows: u64,
    /// Cumulative rows the stream lost to wrap (monotone).
    pub stream_lost: u64,
    /// Plan-phase wall time this quantum (0 = profiling off).
    pub plan_ns: u64,
    /// Worst open-loop p99 this quantum, in ns (0 = no open-loop tasks).
    pub task_p99_ns: u64,
}

/// A closed window handed to the alert engine: the aggregates plus the
/// window's sim-time extent.
#[derive(Debug, Clone)]
pub struct WindowRollup {
    /// Window start (inclusive, µs sim time, aligned to the window length).
    pub start_us: u64,
    /// Window end (exclusive).
    pub end_us: u64,
    /// The aggregates.
    pub stats: WindowStats,
}

/// Counter bases latched at window open, so in-window deltas survive the
/// sources being cumulative.
#[derive(Debug, Clone, Copy, Default)]
struct CounterBase {
    shed: u64,
    degradation: u64,
    dropped: u64,
    stream_lost: u64,
}

/// The live windowed-rollup registry: one accumulating window, the most
/// recently closed window, and run totals. All state is preallocated at
/// construction; [`AggRegistry::observe`] never allocates.
#[derive(Debug, Clone)]
pub struct AggRegistry {
    window_us: u64,
    /// Start of the accumulating window (µs, aligned); meaningless until
    /// the first sample arrives.
    cur_start_us: u64,
    started: bool,
    cur: WindowStats,
    base: CounterBase,
    /// Most recently *closed* window.
    last: Option<WindowRollup>,
    totals: WindowStats,
    windows_closed: u64,
    /// Last sample time seen (for snapshots and monotonicity checks).
    now_us: u64,
}

impl AggRegistry {
    /// A registry with tumbling windows of `window_us` µs of sim time.
    ///
    /// # Panics
    /// If `window_us` is zero.
    pub fn new(window_us: u64) -> AggRegistry {
        assert!(window_us > 0, "aggregation window must be non-zero");
        AggRegistry {
            window_us,
            cur_start_us: 0,
            started: false,
            cur: WindowStats::new(),
            base: CounterBase::default(),
            last: None,
            totals: WindowStats::new(),
            windows_closed: 0,
            now_us: 0,
        }
    }

    /// The tumbling-window length (µs sim time).
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// The most recently closed window, if any has closed yet.
    pub fn last(&self) -> Option<&WindowRollup> {
        self.last.as_ref()
    }

    /// Run totals folded over every observed quantum (including the
    /// still-open window).
    pub fn totals(&self) -> &WindowStats {
        &self.totals
    }

    /// Last observed sim time (µs).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Fold one quantum in. Returns the closed window when this sample
    /// crossed a window boundary (the caller feeds it to the alert
    /// engine and/or publishes a snapshot); `None` otherwise.
    ///
    /// Hot-path contract: no allocation — closing a window copies inline
    /// structs only.
    pub fn observe(&mut self, s: &QuantumSample) -> Option<WindowRollup> {
        let mut closed = None;
        if !self.started {
            self.started = true;
            self.cur_start_us = s.t_us - s.t_us % self.window_us;
            self.base = CounterBase {
                shed: s.shed_total,
                degradation: s.degradation_total,
                dropped: s.dropped_rows,
                stream_lost: s.stream_lost,
            };
        } else if s.t_us >= self.cur_start_us + self.window_us {
            // Tumble: emit the completed window, then open the aligned
            // window containing this sample (empty gap windows are
            // skipped, not emitted — the alert engine sees sim time via
            // `end_us`, so gaps cannot smear rates).
            let end_us = self.cur_start_us + self.window_us;
            let rollup = WindowRollup {
                start_us: self.cur_start_us,
                end_us,
                stats: self.cur.clone(),
            };
            self.last = Some(rollup.clone());
            self.windows_closed += 1;
            self.cur = WindowStats::new();
            self.cur_start_us = s.t_us - s.t_us % self.window_us;
            closed = Some(rollup);
        }
        self.now_us = s.t_us;

        // Counter deltas against the window-open bases. `saturating_sub`
        // guards against a source resetting (it never should).
        let shed = s.shed_total.saturating_sub(self.base.shed);
        let degradation = s.degradation_total.saturating_sub(self.base.degradation);
        let dropped = s.dropped_rows.saturating_sub(self.base.dropped);
        let stream_lost = s.stream_lost.saturating_sub(self.base.stream_lost);
        self.base = CounterBase {
            shed: s.shed_total,
            degradation: s.degradation_total,
            dropped: s.dropped_rows,
            stream_lost: s.stream_lost,
        };

        for w in [&mut self.cur, &mut self.totals] {
            w.quanta += 1;
            w.power_w.observe(s.power_w);
            w.headroom_w.observe(s.headroom_w);
            w.hottest_c.observe(s.hottest_c);
            w.p99_over_slo.observe(s.p99_over_slo);
            w.slo_bad_quanta += u64::from(s.slo_bad);
            w.over_tdp_quanta += u64::from(s.headroom_w < 0.0);
            w.shed += shed;
            w.degradation += degradation;
            w.obs_dropped_rows += dropped;
            w.obs_stream_lost += stream_lost;
            if s.plan_ns > 0 {
                w.plan_ns.record(s.plan_ns);
            }
            if s.task_p99_ns > 0 {
                w.task_p99_ns.record(s.task_p99_ns);
            }
        }
        closed
    }

    /// A labelled, self-contained copy for scraping or fleet composition.
    /// Allocates (the label) — call off the hot path only.
    pub fn snapshot(&self, label: &str) -> AggSnapshot {
        AggSnapshot {
            label: label.to_string(),
            window_us: self.window_us,
            windows_closed: self.windows_closed,
            now_us: self.now_us,
            last: self.last.clone(),
            totals: self.totals.clone(),
        }
    }
}

/// A detached, labelled rollup — what the scrape endpoint serves and what
/// fleet composition merges. Mirrors `Auditor`'s absorb-with-label shape:
/// a fleet snapshot is built by absorbing each chip's snapshot into an
/// initially empty rollup labelled `"fleet"`.
#[derive(Debug, Clone)]
pub struct AggSnapshot {
    /// Source label (`"chip 3"`, `"fleet"`, a workload name, …).
    pub label: String,
    /// Tumbling-window length (µs sim time).
    pub window_us: u64,
    /// Windows closed at snapshot time.
    pub windows_closed: u64,
    /// Last observed sim time (µs).
    pub now_us: u64,
    /// Most recently closed window.
    pub last: Option<WindowRollup>,
    /// Run totals.
    pub totals: WindowStats,
}

impl AggSnapshot {
    /// An empty snapshot to absorb chips into.
    pub fn empty(label: &str, window_us: u64) -> AggSnapshot {
        AggSnapshot {
            label: label.to_string(),
            window_us,
            windows_closed: 0,
            now_us: 0,
            last: None,
            totals: WindowStats::new(),
        }
    }

    /// Fold `other` in, the way `Auditor::absorb` folds a chip's audit
    /// into the fleet rollup: totals and last-window aggregates merge
    /// numerically; the fleet's window count and clock are the maxima
    /// (chips step in lockstep sim time, so aligned windows coincide).
    pub fn absorb(&mut self, other: &AggSnapshot) {
        self.windows_closed = self.windows_closed.max(other.windows_closed);
        self.now_us = self.now_us.max(other.now_us);
        self.totals.merge(&other.totals);
        match (&mut self.last, &other.last) {
            (Some(mine), Some(theirs)) => {
                // Lockstep chips close identical [start, end) windows;
                // keep the latest extent if they ever diverge.
                if theirs.end_us > mine.end_us {
                    mine.start_us = theirs.start_us;
                    mine.end_us = theirs.end_us;
                }
                mine.stats.merge(&theirs.stats);
            }
            (None, Some(theirs)) => self.last = Some(theirs.clone()),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_us: u64, power: f64) -> QuantumSample {
        QuantumSample {
            t_us,
            power_w: power,
            headroom_w: 4.0 - power,
            hottest_c: 50.0,
            p99_over_slo: 0.5,
            slo_bad: false,
            shed_total: 0,
            degradation_total: 0,
            dropped_rows: 0,
            stream_lost: 0,
            plan_ns: 1000,
            task_p99_ns: 2_000_000,
        }
    }

    #[test]
    fn windows_tumble_on_sim_time_boundaries() {
        let mut reg = AggRegistry::new(1_000_000);
        for q in 0..2500u64 {
            let t = (q + 1) * 1000; // 1 ms quanta, ends at 1000, 2000, ...
            let closed = reg.observe(&sample(t, 2.0));
            match t {
                1_000_000 | 2_000_000 => {
                    let w = closed.expect("boundary closes the window");
                    assert_eq!(w.end_us, t);
                    assert_eq!(w.start_us, t - 1_000_000);
                    // Window [0, 1e6) holds ends 1000..=999_000 → 999 quanta;
                    // [1e6, 2e6) holds 1_000_000..=1_999_000 → 1000.
                    assert!(w.stats.quanta == 999 || w.stats.quanta == 1000);
                }
                _ => assert!(closed.is_none(), "no close at t={t}"),
            }
        }
        assert_eq!(reg.windows_closed(), 2);
        assert_eq!(reg.totals().quanta, 2500);
        assert_eq!(reg.last().unwrap().end_us, 2_000_000);
    }

    #[test]
    fn gauges_and_counters_aggregate_correctly() {
        let mut reg = AggRegistry::new(1_000_000);
        let mut s = sample(1000, 1.0);
        reg.observe(&s);
        s.t_us = 2000;
        s.power_w = 3.0;
        s.shed_total = 5;
        s.degradation_total = 2;
        s.slo_bad = true;
        s.p99_over_slo = 2.0;
        reg.observe(&s);
        let t = reg.totals();
        assert_eq!(t.quanta, 2);
        assert_eq!(t.power_w.min, 1.0);
        assert_eq!(t.power_w.max, 3.0);
        assert!((t.power_w.mean() - 2.0).abs() < 1e-12);
        assert_eq!(t.shed, 5);
        assert_eq!(t.degradation, 2);
        assert_eq!(t.slo_bad_quanta, 1);
        assert_eq!(t.p99_over_slo.max, 2.0);
        assert_eq!(t.task_p99_ns.count(), 2);
    }

    #[test]
    fn nan_gauges_are_skipped_not_poisoning() {
        let mut g = GaugeStat::new();
        g.observe(f64::NAN);
        assert_eq!(g.n, 0);
        assert!(g.mean().is_nan());
        g.observe(2.0);
        g.observe(f64::NAN);
        assert_eq!(g.n, 1);
        assert_eq!(g.mean(), 2.0);
    }

    #[test]
    fn counter_deltas_span_window_boundaries_without_loss() {
        let mut reg = AggRegistry::new(1000);
        let mut s = sample(500, 1.0);
        s.shed_total = 10;
        reg.observe(&s); // base latched at 10
        s.t_us = 1500; // crosses into window [1000, 2000)
        s.shed_total = 17;
        let closed = reg.observe(&s).expect("closed");
        assert_eq!(closed.stats.shed, 0, "first window saw no delta");
        assert_eq!(reg.totals().shed, 7);
        s.t_us = 2500;
        s.shed_total = 20;
        let closed = reg.observe(&s).expect("closed");
        assert_eq!(closed.stats.shed, 7, "second window carried the delta");
        assert_eq!(reg.totals().shed, 10);
    }

    #[test]
    fn absorb_composes_like_the_auditor() {
        let mut a = AggRegistry::new(1_000_000);
        let mut b = AggRegistry::new(1_000_000);
        for q in 0..1200u64 {
            let t = (q + 1) * 1000;
            a.observe(&sample(t, 1.0));
            b.observe(&sample(t, 3.0));
        }
        let mut fleet = AggSnapshot::empty("fleet", 1_000_000);
        fleet.absorb(&a.snapshot("chip 0"));
        fleet.absorb(&b.snapshot("chip 1"));
        assert_eq!(fleet.totals.quanta, 2400);
        assert_eq!(fleet.totals.power_w.min, 1.0);
        assert_eq!(fleet.totals.power_w.max, 3.0);
        assert_eq!(fleet.windows_closed, 1);
        let last = fleet.last.expect("merged last window");
        assert_eq!(last.end_us, 1_000_000);
        assert_eq!(last.stats.quanta, 999 * 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = AggRegistry::new(0);
    }
}
