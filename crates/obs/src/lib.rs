//! # ppm-obs — zero-overhead observability for the PPM simulator
//!
//! Three pieces, all dependency-free:
//!
//! - [`recorder::SeriesRecorder`] — a per-quantum time-series in columnar
//!   ring buffers: per-core price/supply, per-cluster V/f/power/
//!   temperature, chip power vs TDP headroom, money supply and allowance,
//!   per-task share/granted/heart-rate, and the degradation counters.
//!   Allocation happens at construction and at entity admission only;
//!   every steady-state row write is indexed stores.
//! - [`profiler::PhaseProfiler`] — wall-clock spans around the stages of a
//!   quantum (capture, plan with market bid / price / DVFS / LBT
//!   sub-phases, apply, step, audit) aggregated into fixed-bucket log2
//!   histograms with approximate p50/p95/p99 and exact max.
//! - [`export`] — Chrome `trace_event` JSON (Perfetto-loadable), CSV and
//!   JSONL time-series, and a human-readable summary table. [`json`] is
//!   the minimal parser the validation tooling uses on those artifacts.
//!   [`stream::TelemetryStream`] flushes the same rows incrementally to
//!   disk during the run, so an undersized ring loses no history.
//!
//! The contract that makes this "zero-overhead": the simulator carries an
//! `Option<Telemetry>`; when `None`, every instrumentation site is a
//! single branch and the goldens/allocation tests prove nothing else
//! happens. When `Some`, observation is strictly read-only — the 18
//! golden actuation tapes are bit-identical either way.

#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod profiler;
pub mod recorder;
pub mod stream;

pub use crate::export::{csv_header, summary_table, write_chrome_trace, write_csv, write_jsonl};
pub use crate::profiler::{lap, Hist, Phase, PhaseProfiler, HIST_BUCKETS};
pub use crate::recorder::{PolicySample, RowWriter, SeriesRecorder};
pub use crate::stream::{StreamFormat, StreamStats, TelemetryStream};

/// The telemetry sink a simulation carries: the time-series recorder, the
/// phase profiler, and the policy-sample scratch the manager fills.
///
/// Constructing one is the setup allocation; everything after is in-place.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Per-quantum time-series (ring of the most recent `capacity` quanta).
    pub recorder: SeriesRecorder,
    /// Phase histograms; populated only when profiling is enabled.
    pub profiler: PhaseProfiler,
    /// Scratch the manager's `sample_policy` fills each recorded quantum.
    pub policy: PolicySample,
    profile: bool,
}

impl Telemetry {
    /// A telemetry sink recording the most recent `capacity` quanta, with
    /// phase profiling off.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Telemetry {
        Telemetry {
            recorder: SeriesRecorder::new(capacity),
            profiler: PhaseProfiler::new(),
            policy: PolicySample::new(),
            profile: false,
        }
    }

    /// Enable wall-clock phase profiling. Off by default because reading
    /// the monotonic clock ~10× per quantum, while cheap, is not free —
    /// and time-series recording alone never needs it.
    pub fn with_profiling(mut self) -> Telemetry {
        self.profile = true;
        self
    }

    /// Whether phase profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_profiling_toggle() {
        let t = Telemetry::new(16);
        assert!(!t.profiling());
        assert!(t.clone().with_profiling().profiling());
        assert_eq!(t.recorder.capacity(), 16);
    }
}
