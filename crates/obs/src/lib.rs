//! # ppm-obs — zero-overhead observability for the PPM simulator
//!
//! Six pieces, all dependency-free:
//!
//! - [`recorder::SeriesRecorder`] — a per-quantum time-series in columnar
//!   ring buffers: per-core price/supply, per-cluster V/f/power/
//!   temperature, chip power vs TDP headroom, money supply and allowance,
//!   per-task share/granted/heart-rate, and the degradation counters.
//!   Allocation happens at construction and at entity admission only;
//!   every steady-state row write is indexed stores.
//! - [`profiler::PhaseProfiler`] — wall-clock spans around the stages of a
//!   quantum (capture, plan with market bid / price / DVFS / LBT
//!   sub-phases, apply, step, audit) aggregated into fixed-bucket log2
//!   histograms with approximate p50/p95/p99 and exact max.
//! - [`export`] — Chrome `trace_event` JSON (Perfetto-loadable), CSV and
//!   JSONL time-series, and a human-readable summary table. [`json`] is
//!   the minimal parser the validation tooling uses on those artifacts.
//!   [`stream::TelemetryStream`] flushes the same rows incrementally to
//!   disk during the run, so an undersized ring loses no history.
//! - [`aggregate`] — live tumbling-window rollups over the recorder's
//!   columns (gauges, counter deltas, log2 sketch quantiles), mergeable
//!   per-chip → fleet the way the auditor's reports absorb.
//! - [`alert`] — a deterministic SRE-style multi-window burn-rate engine
//!   over SLO attainment, shed rate, TDP headroom, and degradation,
//!   evaluated purely in sim time (same seed → same alert tape).
//! - [`http`] — a `std::net` scrape endpoint serving Prometheus text and
//!   a JSON snapshot from a double-buffered publish slot.
//!
//! The contract that makes this "zero-overhead": the simulator carries an
//! `Option<Telemetry>`; when `None`, every instrumentation site is a
//! single branch and the goldens/allocation tests prove nothing else
//! happens. When `Some`, observation is strictly read-only — the
//! committed golden actuation tapes are bit-identical either way, with or
//! without aggregation, alerting, and a live scrape server attached.

#![warn(missing_docs)]

pub mod aggregate;
pub mod alert;
pub mod export;
pub mod http;
pub mod json;
pub mod profiler;
pub mod recorder;
pub mod stream;

pub use crate::aggregate::{
    AggRegistry, AggSnapshot, GaugeStat, QuantumSample, WindowRollup, WindowStats,
    DEFAULT_AGG_WINDOW_US,
};
pub use crate::alert::{AlertEngine, AlertEvent, AlertKind, AlertSnapshot, BurnRule, RuleStatus};
pub use crate::export::{csv_header, summary_table, write_chrome_trace, write_csv, write_jsonl};
pub use crate::http::{render_json, render_prometheus, ScrapeServer, ScrapeSnapshot, SnapshotHub};
pub use crate::profiler::{lap, Hist, Phase, PhaseProfiler, HIST_BUCKETS};
pub use crate::recorder::{PolicySample, RowWriter, SeriesRecorder};
pub use crate::stream::{StreamFormat, StreamStats, TelemetryStream};

use crate::profiler::Phase as Ph;
use std::sync::Arc;

/// The telemetry sink a simulation carries: the time-series recorder, the
/// phase profiler, the policy-sample scratch the manager fills, and —
/// when enabled — the live aggregation registry, the burn-rate alert
/// engine, and a publish hub for the scrape endpoint.
///
/// Constructing one is the setup allocation; everything after is in-place
/// (publishing a scrape snapshot allocates, but only at window
/// boundaries, never on the per-quantum path).
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Per-quantum time-series (ring of the most recent `capacity` quanta).
    pub recorder: SeriesRecorder,
    /// Phase histograms; populated only when profiling is enabled.
    pub profiler: PhaseProfiler,
    /// Scratch the manager's `sample_policy` fills each recorded quantum.
    pub policy: PolicySample,
    /// Live windowed rollups, when aggregation is enabled.
    pub aggregate: Option<AggRegistry>,
    /// Burn-rate alerting over closed windows, when enabled (implies
    /// aggregation).
    pub alerts: Option<AlertEngine>,
    hub: Option<Arc<SnapshotHub>>,
    label: String,
    profile: bool,
}

impl Telemetry {
    /// A telemetry sink recording the most recent `capacity` quanta, with
    /// phase profiling, aggregation, and alerting all off.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Telemetry {
        Telemetry {
            recorder: SeriesRecorder::new(capacity),
            profiler: PhaseProfiler::new(),
            policy: PolicySample::new(),
            aggregate: None,
            alerts: None,
            hub: None,
            label: "chip 0".to_string(),
            profile: false,
        }
    }

    /// Enable wall-clock phase profiling. Off by default because reading
    /// the monotonic clock ~10× per quantum, while cheap, is not free —
    /// and time-series recording alone never needs it.
    pub fn with_profiling(mut self) -> Telemetry {
        self.profile = true;
        self
    }

    /// Whether phase profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profile
    }

    /// Enable live windowed aggregation with tumbling windows of
    /// `window_us` µs of sim time (see [`DEFAULT_AGG_WINDOW_US`]).
    pub fn with_aggregation(mut self, window_us: u64) -> Telemetry {
        self.aggregate = Some(AggRegistry::new(window_us));
        self
    }

    /// Enable burn-rate alerting with the default rule set; implies
    /// aggregation (attached at [`DEFAULT_AGG_WINDOW_US`] if absent).
    pub fn with_alerts(self) -> Telemetry {
        self.with_alert_rules(BurnRule::defaults())
    }

    /// Enable burn-rate alerting with explicit rules; implies aggregation.
    pub fn with_alert_rules(mut self, rules: Vec<BurnRule>) -> Telemetry {
        if self.aggregate.is_none() {
            self.aggregate = Some(AggRegistry::new(DEFAULT_AGG_WINDOW_US));
        }
        self.alerts = Some(AlertEngine::new(rules));
        self
    }

    /// Publish a [`ScrapeSnapshot`] into `hub` at every window boundary
    /// (and nowhere else); implies aggregation. The hub is what a
    /// [`ScrapeServer`] serves.
    pub fn with_hub(mut self, hub: Arc<SnapshotHub>) -> Telemetry {
        if self.aggregate.is_none() {
            self.aggregate = Some(AggRegistry::new(DEFAULT_AGG_WINDOW_US));
        }
        self.hub = Some(hub);
        self
    }

    /// Label used in snapshots and the scrape exposition (default
    /// `"chip 0"`).
    pub fn with_label(mut self, label: &str) -> Telemetry {
        self.label = label.to_string();
        self
    }

    /// The publish hub, when attached.
    pub fn hub(&self) -> Option<&Arc<SnapshotHub>> {
        self.hub.as_ref()
    }

    /// Fold the most recently recorded row into the aggregation registry,
    /// run the alert engine over any window that closed, and publish a
    /// snapshot to the hub when one did. Called by the executor right
    /// after the row is written; a no-op without aggregation.
    ///
    /// Hot-path contract: reads and indexed stores only — the single
    /// allocating step (building the published snapshot) happens iff a
    /// window closed *and* a hub is attached.
    pub fn roll_forward(&mut self) {
        let Some(agg) = self.aggregate.as_mut() else {
            return;
        };
        let rec = &self.recorder;
        let total = rec.total_rows();
        if total == 0 {
            return;
        }
        let i = ((total - 1) % rec.capacity() as u64) as usize;

        let (_, _, n_tasks) = rec.shape();
        let mut worst_ratio = f64::NAN;
        let mut worst_p99_ms = 0.0f64;
        let mut slo_bad = false;
        let mut shed_total = 0u64;
        for t in 0..n_tasks {
            let p99 = rec.task_p99_ms[t][i];
            let slo = rec.task_slo_ms[t][i];
            if p99.is_nan() {
                continue;
            }
            if p99 > worst_p99_ms {
                worst_p99_ms = p99;
            }
            if slo > 0.0 {
                let ratio = p99 / slo;
                if worst_ratio.is_nan() || ratio > worst_ratio {
                    worst_ratio = ratio;
                }
                slo_bad |= p99 > slo;
            }
            let shed = rec.task_shed[t][i];
            if shed.is_finite() {
                shed_total += shed as u64;
            }
        }
        let degradation_total = rec.sensor_fallbacks[i]
            + rec.dvfs_retries[i]
            + rec.migration_retries[i]
            + rec.tasks_orphaned[i];
        let stream_lost = {
            let lost = rec.obs_stream_lost[i];
            if lost.is_finite() {
                lost as u64
            } else {
                0
            }
        };
        let sample = QuantumSample {
            t_us: rec.t_us[i],
            power_w: rec.chip_power_w[i],
            headroom_w: rec.tdp_headroom_w[i],
            hottest_c: rec.hottest_c[i],
            p99_over_slo: worst_ratio,
            slo_bad,
            shed_total,
            degradation_total,
            dropped_rows: rec.dropped(),
            stream_lost,
            plan_ns: rec.phase_ns[Ph::Plan as usize][i],
            task_p99_ns: (worst_p99_ms * 1e6) as u64,
        };
        let closed = agg.observe(&sample);
        if let Some(w) = &closed {
            if let Some(engine) = self.alerts.as_mut() {
                engine.observe_window(w);
            }
        }
        if let Some(engine) = &self.alerts {
            self.recorder.obs_alerts_firing[i] = engine.firing_count();
        }
        if closed.is_some() {
            if let Some(hub) = &self.hub {
                let hub = Arc::clone(hub);
                hub.publish(self.scrape_snapshot());
            }
        }
    }

    /// Build a [`ScrapeSnapshot`] of this (single-chip) telemetry:
    /// one chip section that doubles as the fleet rollup, plus the alert
    /// state. Allocates — off the hot path only. Fleet drivers build
    /// their merged snapshot themselves via [`AggSnapshot::absorb`].
    pub fn scrape_snapshot(&self) -> ScrapeSnapshot {
        let Some(agg) = &self.aggregate else {
            return ScrapeSnapshot::default();
        };
        let chip = agg.snapshot(&self.label);
        let mut fleet = AggSnapshot::empty("fleet", agg.window_us());
        fleet.absorb(&chip);
        ScrapeSnapshot {
            at_us: agg.now_us(),
            fleet: Some(fleet),
            chips: vec![chip],
            alerts: self.alerts.as_ref().map(AlertEngine::snapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_profiling_toggle() {
        let t = Telemetry::new(16);
        assert!(!t.profiling());
        assert!(t.clone().with_profiling().profiling());
        assert_eq!(t.recorder.capacity(), 16);
    }

    #[test]
    fn alerts_imply_aggregation() {
        let t = Telemetry::new(16).with_alerts();
        assert!(t.aggregate.is_some());
        assert!(t.alerts.is_some());
        assert_eq!(
            t.aggregate.as_ref().unwrap().window_us(),
            DEFAULT_AGG_WINDOW_US
        );
    }

    #[test]
    fn roll_forward_aggregates_recorded_rows_and_publishes() {
        let hub = SnapshotHub::new();
        let mut t = Telemetry::new(64)
            .with_aggregation(10_000)
            .with_alerts()
            .with_hub(Arc::clone(&hub))
            .with_label("unit chip");
        t.recorder.ensure_shape(1, 1, 1);
        for q in 0..25u64 {
            let at = (q + 1) * 1000;
            let mut row = t.recorder.push_row(at);
            row.chip(2.0, 1.0, 50.0);
            row.task_latency(0, 1.0, 8.0, 10.0, 3.0);
            t.roll_forward();
        }
        let agg = t.aggregate.as_ref().unwrap();
        assert_eq!(agg.totals().quanta, 25);
        assert_eq!(agg.windows_closed(), 2);
        assert_eq!(agg.totals().shed, 0, "cumulative shed never moved");
        assert!((agg.totals().p99_over_slo.max - 0.8).abs() < 1e-12);
        assert_eq!(hub.version(), 2, "one publish per closed window");
        let snap = hub.get();
        assert_eq!(snap.chips[0].label, "unit chip");
        assert!(snap.alerts.is_some());
    }

    #[test]
    fn roll_forward_without_aggregation_is_a_noop() {
        let mut t = Telemetry::new(4);
        t.recorder.push_row(1000).chip(1.0, f64::NAN, f64::NAN);
        t.roll_forward();
        assert!(t.scrape_snapshot().fleet.is_none());
    }
}
