//! Exporters over the recorder and profiler: Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`), CSV and JSONL time-series
//! (one row per quantum — ready to regenerate the paper's figures), and a
//! human-readable phase summary table.
//!
//! Exporting runs strictly after (or outside) the simulation hot path, so
//! these functions allocate freely; what they must not do is lie —
//! wrapped-away rows are reported via [`SeriesRecorder::dropped`], `NaN`
//! cells export as empty/`null` and are *omitted* from the Chrome trace
//! (JSON has no NaN), and span durations are the measured wall
//! nanoseconds, not invented.

use std::io::{self, Write};

use crate::profiler::{Phase, PhaseProfiler};
use crate::recorder::SeriesRecorder;

/// The CSV header for `rec`'s column shape. Scalar columns first, then
/// per-phase wall ns, then per-cluster / per-core / per-task groups.
pub fn csv_header(rec: &SeriesRecorder) -> String {
    let (n_cl, n_co, n_t) = rec.shape();
    let mut h = String::from(
        "t_s,chip_power_w,tdp_headroom_w,hottest_c,allowance,money_supply,\
         market_fast_hit,market_dirty_stages,market_workers,\
         sensor_fallbacks,dvfs_retries,migration_retries,tasks_orphaned,\
         obs_dropped_rows,obs_alerts_firing,obs_stream_rows,obs_stream_lost,\
         obs_stream_flushes",
    );
    for p in Phase::ALL {
        h.push_str(&format!(",ph_{}_ns", p.name()));
    }
    for c in 0..n_cl {
        h.push_str(&format!(
            ",cl{c}_freq_mhz,cl{c}_volt_mv,cl{c}_power_w,cl{c}_temp_c"
        ));
    }
    for c in 0..n_co {
        h.push_str(&format!(",core{c}_supply_pu,core{c}_price"));
    }
    for t in 0..n_t {
        h.push_str(&format!(
            ",task{t}_share_pu,task{t}_granted_pu,task{t}_hr,task{t}_hr_norm,\
             task{t}_queue,task{t}_p99_ms,task{t}_slo_ms,task{t}_shed"
        ));
    }
    h
}

/// A CSV cell: shortest round-trip decimal, empty for `NaN`.
fn cell(v: f64) -> String {
    if v.is_nan() {
        String::new()
    } else {
        format!("{v}")
    }
}

/// Append row `i`'s cells — everything after `t_s` — to `line`. Shared by
/// the single-recorder CSV and the fleet join, so the two stay
/// column-for-column consistent.
fn csv_row_cells(rec: &SeriesRecorder, i: usize, line: &mut String) {
    let (n_cl, n_co, n_t) = rec.shape();
    for v in [
        rec.chip_power_w[i],
        rec.tdp_headroom_w[i],
        rec.hottest_c[i],
        rec.allowance[i],
        rec.money_supply[i],
        rec.market_fast_hit[i],
        rec.market_dirty_stages[i],
        rec.market_workers[i],
    ] {
        line.push(',');
        line.push_str(&cell(v));
    }
    for v in [
        rec.sensor_fallbacks[i],
        rec.dvfs_retries[i],
        rec.migration_retries[i],
        rec.tasks_orphaned[i],
        rec.obs_dropped_rows[i],
        rec.obs_alerts_firing[i],
    ] {
        line.push_str(&format!(",{v}"));
    }
    for v in [
        rec.obs_stream_rows[i],
        rec.obs_stream_lost[i],
        rec.obs_stream_flushes[i],
    ] {
        line.push(',');
        line.push_str(&cell(v));
    }
    for p in 0..Phase::COUNT {
        line.push_str(&format!(",{}", rec.phase_ns[p][i]));
    }
    for c in 0..n_cl {
        for v in [
            rec.cluster_freq_mhz[c][i],
            rec.cluster_volt_mv[c][i],
            rec.cluster_power_w[c][i],
            rec.cluster_temp_c[c][i],
        ] {
            line.push(',');
            line.push_str(&cell(v));
        }
    }
    for c in 0..n_co {
        for v in [rec.core_supply[c][i], rec.core_price[c][i]] {
            line.push(',');
            line.push_str(&cell(v));
        }
    }
    for t in 0..n_t {
        for v in [
            rec.task_share[t][i],
            rec.task_granted[t][i],
            rec.task_hr[t][i],
            rec.task_hr_norm[t][i],
            rec.task_queue[t][i],
            rec.task_p99_ms[t][i],
            rec.task_slo_ms[t][i],
            rec.task_shed[t][i],
        ] {
            line.push(',');
            line.push_str(&cell(v));
        }
    }
}

/// Append row `i` as one full CSV line (`t_s` plus every cell) to `line`.
/// Shared by [`write_csv`] and the incremental
/// [`TelemetryStream`](crate::stream::TelemetryStream), so streamed output
/// is byte-identical to a post-run export.
pub(crate) fn csv_row(rec: &SeriesRecorder, i: usize, line: &mut String) {
    line.push_str(&format!("{}", rec.t_us[i] as f64 / 1e6));
    csv_row_cells(rec, i, line);
}

/// Write the held rows as CSV, oldest first: the header, then one row per
/// recorded quantum.
pub fn write_csv<W: Write>(rec: &SeriesRecorder, w: &mut W) -> io::Result<()> {
    writeln!(w, "{}", csv_header(rec))?;
    let mut line = String::new();
    for i in rec.row_indices() {
        line.clear();
        csv_row(rec, i, &mut line);
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// The header for a fleet CSV: one shared `t_s`, then every chip's columns
/// tagged `c{chip}_`. Chips may have different shapes — each contributes
/// its own column group, so a heterogeneous fleet still joins cleanly.
pub fn fleet_csv_header(recs: &[&SeriesRecorder]) -> String {
    let mut h = String::from("t_s");
    for (chip, rec) in recs.iter().enumerate() {
        for col in csv_header(rec).split(',').skip(1) {
            h.push_str(&format!(",c{chip}_{col}"));
        }
    }
    h
}

/// Write a fleet of recorders as one wide CSV joined on the simulated
/// timeline: row `k` holds quantum `k` of every chip side by side, columns
/// tagged `c{chip}_`. All recorders must hold the same number of rows
/// (they do when the chips ran in lock-step under one [`Fleet`] epoch
/// loop); mismatched row counts are an `InvalidInput` error rather than a
/// silently misaligned join.
///
/// [`Fleet`]: https://docs.rs/ppm-fleet
pub fn write_fleet_csv<W: Write>(recs: &[&SeriesRecorder], w: &mut W) -> io::Result<()> {
    let Some(first) = recs.first() else {
        return Ok(());
    };
    if recs.iter().any(|r| r.rows() != first.rows()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "fleet recorders hold different row counts; cannot join on time",
        ));
    }
    writeln!(w, "{}", fleet_csv_header(recs))?;
    let indices: Vec<Vec<usize>> = recs.iter().map(|r| r.row_indices().collect()).collect();
    let mut line = String::new();
    for (k, &row) in indices[0].iter().enumerate() {
        line.clear();
        line.push_str(&format!("{}", first.t_us[row] as f64 / 1e6));
        for (chip, rec) in recs.iter().enumerate() {
            csv_row_cells(rec, indices[chip][k], &mut line);
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// A JSON number, `null` for `NaN` (JSON has no NaN literal).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Write the held rows as JSONL: one self-describing JSON object per
/// quantum (entity columns as arrays), oldest first.
pub fn write_jsonl<W: Write>(rec: &SeriesRecorder, w: &mut W) -> io::Result<()> {
    let mut line = String::new();
    for i in rec.row_indices() {
        line.clear();
        jsonl_row(rec, i, &mut line);
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Append row `i` as one JSONL object to `line`. Shared by [`write_jsonl`]
/// and the incremental [`TelemetryStream`](crate::stream::TelemetryStream).
pub(crate) fn jsonl_row(rec: &SeriesRecorder, i: usize, line: &mut String) {
    let (n_cl, n_co, n_t) = rec.shape();
    line.push('{');
    line.push_str(&format!("\"t_s\":{}", rec.t_us[i] as f64 / 1e6));
    {
        for (k, v) in [
            ("chip_power_w", rec.chip_power_w[i]),
            ("tdp_headroom_w", rec.tdp_headroom_w[i]),
            ("hottest_c", rec.hottest_c[i]),
            ("allowance", rec.allowance[i]),
            ("money_supply", rec.money_supply[i]),
            ("market_fast_hit", rec.market_fast_hit[i]),
            ("market_dirty_stages", rec.market_dirty_stages[i]),
            ("market_workers", rec.market_workers[i]),
        ] {
            line.push_str(&format!(",\"{k}\":{}", jnum(v)));
        }
        for (k, v) in [
            ("sensor_fallbacks", rec.sensor_fallbacks[i]),
            ("dvfs_retries", rec.dvfs_retries[i]),
            ("migration_retries", rec.migration_retries[i]),
            ("tasks_orphaned", rec.tasks_orphaned[i]),
            ("obs_dropped_rows", rec.obs_dropped_rows[i]),
            ("obs_alerts_firing", rec.obs_alerts_firing[i]),
        ] {
            line.push_str(&format!(",\"{k}\":{v}"));
        }
        for (k, v) in [
            ("obs_stream_rows", rec.obs_stream_rows[i]),
            ("obs_stream_lost", rec.obs_stream_lost[i]),
            ("obs_stream_flushes", rec.obs_stream_flushes[i]),
        ] {
            line.push_str(&format!(",\"{k}\":{}", jnum(v)));
        }
        line.push_str(",\"phase_ns\":{");
        for (k, p) in Phase::ALL.iter().enumerate() {
            if k > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", p.name(), rec.phase_ns[k][i]));
        }
        line.push('}');
        let arr = |line: &mut String, key: &str, get: &dyn Fn(usize) -> f64, n: usize| {
            line.push_str(&format!(",\"{key}\":["));
            for e in 0..n {
                if e > 0 {
                    line.push(',');
                }
                line.push_str(&jnum(get(e)));
            }
            line.push(']');
        };
        arr(
            line,
            "cluster_freq_mhz",
            &|c| rec.cluster_freq_mhz[c][i],
            n_cl,
        );
        arr(
            line,
            "cluster_volt_mv",
            &|c| rec.cluster_volt_mv[c][i],
            n_cl,
        );
        arr(
            line,
            "cluster_power_w",
            &|c| rec.cluster_power_w[c][i],
            n_cl,
        );
        arr(line, "cluster_temp_c", &|c| rec.cluster_temp_c[c][i], n_cl);
        arr(line, "core_supply_pu", &|c| rec.core_supply[c][i], n_co);
        arr(line, "core_price", &|c| rec.core_price[c][i], n_co);
        arr(line, "task_share_pu", &|t| rec.task_share[t][i], n_t);
        arr(line, "task_granted_pu", &|t| rec.task_granted[t][i], n_t);
        arr(line, "task_hr", &|t| rec.task_hr[t][i], n_t);
        arr(line, "task_hr_norm", &|t| rec.task_hr_norm[t][i], n_t);
        arr(line, "task_queue", &|t| rec.task_queue[t][i], n_t);
        arr(line, "task_p99_ms", &|t| rec.task_p99_ms[t][i], n_t);
        arr(line, "task_slo_ms", &|t| rec.task_slo_ms[t][i], n_t);
        arr(line, "task_shed", &|t| rec.task_shed[t][i], n_t);
    }
    line.push('}');
}

/// One Chrome counter event on `pid`: `name` at `ts_us` with the finite
/// `(series, value)` pairs. Emits nothing when every value is NaN.
fn counter(out: &mut Vec<String>, pid: usize, ts_us: f64, name: &str, series: &[(String, f64)]) {
    let finite: Vec<&(String, f64)> = series.iter().filter(|(_, v)| v.is_finite()).collect();
    if finite.is_empty() {
        return;
    }
    let args = finite
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    out.push(format!(
        "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts_us},\"name\":\"{name}\",\"args\":{{{args}}}}}"
    ));
}

/// Write a Chrome `trace_event` JSON document (the `{"traceEvents": [...]}`
/// object form) covering the held rows.
///
/// Two synthetic processes: pid 0 carries the time-series as counter
/// events on the *simulated* timeline (µs), pid 1 carries the phase spans
/// as complete (`"ph":"X"`) events — each span sits on the quantum it
/// belongs to, with its measured wall-clock nanoseconds as the duration
/// (rendered as µs, the trace unit). Executor phases stack sequentially on
/// tid 0; manager sub-phases (bid / price / DVFS / LBT) nest under the
/// plan span on tid 1. `stride` decimates rows (1 = every quantum) to keep
/// long runs loadable; it applies to counters and spans alike.
pub fn write_chrome_trace<W: Write>(
    rec: &SeriesRecorder,
    w: &mut W,
    stride: usize,
) -> io::Result<()> {
    let stride = stride.max(1);
    let mut ev: Vec<String> = vec![
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ppm time-series (simulated time)\"}}"
            .to_string(),
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ppm quantum phases (wall ns on sim timeline)\"}}"
            .to_string(),
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"executor\"}}"
            .to_string(),
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"manager sub-phases\"}}"
            .to_string(),
    ];
    recorder_events(rec, &mut ev, stride, 0, 1);
    writeln!(
        w,
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"rows\":{},\"dropped\":{},\"stride\":{stride}}},\"traceEvents\":[",
        rec.rows(),
        rec.dropped(),
    )?;
    for (k, e) in ev.iter().enumerate() {
        let sep = if k + 1 == ev.len() { "" } else { "," };
        writeln!(w, "{e}{sep}")?;
    }
    writeln!(w, "]}}")
}

/// Emit one recorder's counter events (on `pid_counters`) and phase spans
/// (on `pid_spans`) into `ev`. The per-row body shared by the single-chip
/// and fleet trace writers.
fn recorder_events(
    rec: &SeriesRecorder,
    ev: &mut Vec<String>,
    stride: usize,
    pid_counters: usize,
    pid_spans: usize,
) {
    let (n_cl, n_co, n_t) = rec.shape();
    for (k, i) in rec.row_indices().enumerate() {
        if k % stride != 0 {
            continue;
        }
        let ts = rec.t_us[i] as f64;

        // Counters (simulated timeline).
        let mut power = vec![("chip".to_string(), rec.chip_power_w[i])];
        let mut temp = vec![("hottest".to_string(), rec.hottest_c[i])];
        let mut freq = Vec::new();
        for c in 0..n_cl {
            power.push((format!("cl{c}"), rec.cluster_power_w[c][i]));
            temp.push((format!("cl{c}"), rec.cluster_temp_c[c][i]));
            freq.push((format!("cl{c}"), rec.cluster_freq_mhz[c][i]));
        }
        counter(ev, pid_counters, ts, "power_w", &power);
        counter(ev, pid_counters, ts, "temp_c", &temp);
        counter(ev, pid_counters, ts, "freq_mhz", &freq);
        counter(
            ev,
            pid_counters,
            ts,
            "tdp_headroom_w",
            &[("headroom".to_string(), rec.tdp_headroom_w[i])],
        );
        counter(
            ev,
            pid_counters,
            ts,
            "money",
            &[
                ("allowance".to_string(), rec.allowance[i]),
                ("supply".to_string(), rec.money_supply[i]),
            ],
        );
        counter(
            ev,
            pid_counters,
            ts,
            "market_fast_path",
            &[
                ("fast_hit".to_string(), rec.market_fast_hit[i]),
                ("dirty_stages".to_string(), rec.market_dirty_stages[i]),
            ],
        );
        let price: Vec<(String, f64)> = (0..n_co)
            .map(|c| (format!("core{c}"), rec.core_price[c][i]))
            .collect();
        counter(ev, pid_counters, ts, "price", &price);
        let supply: Vec<(String, f64)> = (0..n_co)
            .map(|c| (format!("core{c}"), rec.core_supply[c][i]))
            .collect();
        counter(ev, pid_counters, ts, "supply_pu", &supply);
        let hr: Vec<(String, f64)> = (0..n_t)
            .map(|t| (format!("task{t}"), rec.task_hr_norm[t][i]))
            .collect();
        counter(ev, pid_counters, ts, "hr_norm", &hr);
        let share: Vec<(String, f64)> = (0..n_t)
            .map(|t| (format!("task{t}"), rec.task_share[t][i]))
            .collect();
        counter(ev, pid_counters, ts, "share_pu", &share);
        counter(
            ev,
            pid_counters,
            ts,
            "degradation",
            &[
                (
                    "sensor_fallbacks".to_string(),
                    rec.sensor_fallbacks[i] as f64,
                ),
                ("dvfs_retries".to_string(), rec.dvfs_retries[i] as f64),
                (
                    "migration_retries".to_string(),
                    rec.migration_retries[i] as f64,
                ),
                ("tasks_orphaned".to_string(), rec.tasks_orphaned[i] as f64),
            ],
        );

        // Phase spans. Executor phases stack left-to-right from the
        // quantum start; sub-phases start where the plan span starts.
        let mut cursor = ts;
        let mut plan_start = ts;
        for p in [
            Phase::Capture,
            Phase::Plan,
            Phase::Apply,
            Phase::Step,
            Phase::Audit,
        ] {
            let ns = rec.phase_ns[p as usize][i];
            if ns == 0 {
                continue;
            }
            if p == Phase::Plan {
                plan_start = cursor;
            }
            let dur = ns as f64 / 1000.0;
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid_spans},\"tid\":0,\"ts\":{cursor},\"dur\":{dur},\"name\":\"{}\"}}",
                p.name()
            ));
            cursor += dur;
        }
        let mut sub_cursor = plan_start;
        for p in [
            Phase::MarketDiff,
            Phase::MarketBid,
            Phase::MarketShard,
            Phase::MarketPrice,
            Phase::MarketDvfs,
            Phase::Lbt,
        ] {
            let ns = rec.phase_ns[p as usize][i];
            if ns == 0 {
                continue;
            }
            let dur = ns as f64 / 1000.0;
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid_spans},\"tid\":1,\"ts\":{sub_cursor},\"dur\":{dur},\"name\":\"{}\"}}",
                p.name()
            ));
            sub_cursor += dur;
        }
    }
}

/// One sample on an extra counter track of a fleet trace — the exchange's
/// per-epoch view (cap, total power, allowance, watt price), or any other
/// series the caller wants alongside the chip tracks.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Simulated time of the sample, µs.
    pub t_us: u64,
    /// `(series name, value)` pairs; NaN values are omitted per event.
    pub series: Vec<(String, f64)>,
}

/// Write one Chrome trace covering a whole fleet: chip `i`'s counters land
/// on pid `2i` and its phase spans on pid `2i + 1` (so Perfetto shows one
/// labelled track pair per chip), and the `exchange` samples land as a
/// `"exchange"` counter track on their own process after the chips. The
/// per-chip content is emitted by the same code path as
/// [`write_chrome_trace`]; `stride` decimates chip rows but never exchange
/// epochs (they are already sparse — one per trading epoch).
pub fn write_fleet_chrome_trace<W: Write>(
    chips: &[&SeriesRecorder],
    exchange: &[CounterSample],
    w: &mut W,
    stride: usize,
) -> io::Result<()> {
    let stride = stride.max(1);
    let mut ev: Vec<String> = Vec::new();
    for (chip, rec) in chips.iter().enumerate() {
        let pid_counters = 2 * chip;
        let pid_spans = 2 * chip + 1;
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid_counters},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"chip {chip} time-series (simulated time)\"}}}}"
        ));
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid_spans},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"chip {chip} quantum phases (wall ns on sim timeline)\"}}}}"
        ));
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid_spans},\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"executor\"}}}}"
        ));
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid_spans},\"tid\":1,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"manager sub-phases\"}}}}"
        ));
        recorder_events(rec, &mut ev, stride, pid_counters, pid_spans);
    }
    let pid_ex = 2 * chips.len();
    if !exchange.is_empty() {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid_ex},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"fleet exchange (per-epoch clearing)\"}}}}"
        ));
        for s in exchange {
            counter(&mut ev, pid_ex, s.t_us as f64, "exchange", &s.series);
        }
    }
    let (rows, dropped) = chips.iter().fold((0u64, 0u64), |(r, d), rec| {
        (r + rec.rows() as u64, d + rec.dropped())
    });
    writeln!(
        w,
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"chips\":{},\"epochs\":{},\"rows\":{rows},\"dropped\":{dropped},\"stride\":{stride}}},\"traceEvents\":[",
        chips.len(),
        exchange.len(),
    )?;
    for (k, e) in ev.iter().enumerate() {
        let sep = if k + 1 == ev.len() { "" } else { "," };
        writeln!(w, "{e}{sep}")?;
    }
    writeln!(w, "]}}")
}

/// Human-readable duration.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Render the profiler as an aligned summary table: per phase, the span
/// count, approximate p50/p95/p99, exact max, mean, and total wall time.
pub fn summary_table(prof: &PhaseProfiler) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}\n",
        "phase", "count", "p50", "p95", "p99", "max", "mean", "total"
    ));
    for p in Phase::ALL {
        let h = prof.hist(p);
        if h.count() == 0 {
            continue;
        }
        let indent = if p.is_plan_subphase() { "  " } else { "" };
        out.push_str(&format!(
            "{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}\n",
            format!("{indent}{}", p.name()),
            h.count(),
            fmt_ns(h.percentile_ns(50.0) as f64),
            fmt_ns(h.percentile_ns(95.0) as f64),
            fmt_ns(h.percentile_ns(99.0) as f64),
            fmt_ns(h.max_ns() as f64),
            fmt_ns(h.mean_ns()),
            fmt_ns(h.sum_ns() as f64),
        ));
    }
    if prof.total_count() == 0 {
        out.push_str("(no spans recorded — was profiling enabled?)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_recorder() -> SeriesRecorder {
        let mut rec = SeriesRecorder::new(8);
        rec.ensure_shape(2, 3, 2);
        for q in 0..3u64 {
            let mut phases = [0u64; Phase::COUNT];
            phases[Phase::Capture as usize] = 500;
            phases[Phase::Plan as usize] = 2000;
            phases[Phase::MarketBid as usize] = 700;
            phases[Phase::Step as usize] = 1500;
            let mut row = rec.push_row(q * 1000);
            row.chip(3.5 + q as f64, 0.5, 41.0)
                .degradation(1, 0, 0, 0)
                .phases(&phases)
                .cluster(0, 350.0, 900.0, 0.4, 40.0)
                .cluster(1, 1000.0, 1050.0, 3.1, 41.0)
                .core_supply(0, 0.35)
                .task(0, 0.2, 0.18, 30.0, 1.0);
            // task 1 and cores 1–2 left NaN on purpose.
        }
        rec
    }

    #[test]
    fn csv_has_header_and_one_row_per_quantum() {
        let rec = sample_recorder();
        let mut buf = Vec::new();
        write_csv(&rec, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        let cols = lines[0].split(',').count();
        // 13 scalars + 5 obs self-metrics + 11 phases + 2·4 cluster
        // + 3·2 core + 2·8 task = 59.
        assert_eq!(cols, 59);
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
        // NaN cells are empty, not "NaN".
        assert!(!text.contains("NaN"));
    }

    /// A second, deliberately smaller chip: the fleet join must tolerate
    /// heterogeneous shapes.
    fn small_recorder() -> SeriesRecorder {
        let mut rec = SeriesRecorder::new(8);
        rec.ensure_shape(1, 2, 1);
        for q in 0..3u64 {
            let mut row = rec.push_row(q * 1000);
            row.chip(1.5, 2.5, 38.0)
                .cluster(0, 250.0, 900.0, 0.3, 37.0)
                .core_supply(1, 0.2)
                .task(0, 0.4, 0.4, 10.0, 0.9);
        }
        rec
    }

    #[test]
    fn fleet_csv_joins_chips_on_the_shared_timeline() {
        let a = sample_recorder();
        let b = small_recorder();
        let mut buf = Vec::new();
        write_fleet_csv(&[&a, &b], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        // 1 shared t_s + chip 0's 58 columns + chip 1's 44 columns.
        let cols = lines[0].split(',').count();
        assert_eq!(cols, 1 + 58 + 44);
        assert!(lines[0].starts_with("t_s,c0_chip_power_w,"));
        assert!(lines[0].contains(",c1_chip_power_w,"));
        assert!(lines[0].contains(",c1_cl0_freq_mhz,"));
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn fleet_csv_rejects_misaligned_recorders() {
        let a = sample_recorder();
        let mut b = small_recorder();
        b.push_row(9_000); // a fourth row chip 0 never saw
        let err = write_fleet_csv(&[&a, &b], &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn single_chip_csv_is_the_fleet_join_of_one() {
        // The shared row emitter guarantees the fleet join of one chip is
        // the standalone CSV with tagged headers — cell bytes identical.
        let rec = sample_recorder();
        let (mut lone, mut fleet) = (Vec::new(), Vec::new());
        write_csv(&rec, &mut lone).unwrap();
        write_fleet_csv(&[&rec], &mut fleet).unwrap();
        let lone = String::from_utf8(lone).unwrap();
        let fleet = String::from_utf8(fleet).unwrap();
        assert_eq!(
            lone.lines().skip(1).collect::<Vec<_>>(),
            fleet.lines().skip(1).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn jsonl_lines_parse_with_null_for_nan() {
        let rec = sample_recorder();
        let mut buf = Vec::new();
        write_jsonl(&rec, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = json::parse(line).expect("JSONL line parses");
            assert!(v.get("chip_power_w").unwrap().as_num().is_some());
            // Unwritten task 1 share is null.
            let shares = v.get("task_share_pu").unwrap().as_arr().unwrap();
            assert_eq!(shares[1], json::Json::Null);
        }
    }

    #[test]
    fn chrome_trace_parses_and_spans_are_complete_events() {
        let rec = sample_recorder();
        let mut buf = Vec::new();
        write_chrome_trace(&rec, &mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let doc = json::parse(&text).expect("trace parses as JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut spans = 0;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            match ph {
                "X" => {
                    spans += 1;
                    assert!(e.get("dur").unwrap().as_num().unwrap() >= 0.0);
                    assert!(e.get("ts").is_some() && e.get("name").is_some());
                }
                "C" => {
                    // Counter args must all be finite numbers (NaN omitted).
                    if let json::Json::Obj(args) = e.get("args").unwrap() {
                        assert!(!args.is_empty());
                        for v in args.values() {
                            assert!(v.as_num().unwrap().is_finite());
                        }
                    }
                }
                "M" => {}
                other => panic!("unexpected event type {other}"),
            }
        }
        // 3 rows × 4 measured phases each.
        assert_eq!(spans, 12);
    }

    #[test]
    fn fleet_trace_tags_chips_and_carries_the_exchange_track() {
        let a = sample_recorder();
        let b = small_recorder();
        let exchange = vec![
            CounterSample {
                t_us: 0,
                series: vec![
                    ("cap_w".to_string(), 10.0),
                    ("total_power_w".to_string(), 7.0),
                    ("allowance".to_string(), 10.0),
                    ("price_per_watt".to_string(), 1.02),
                ],
            },
            CounterSample {
                t_us: 2_000,
                series: vec![
                    ("cap_w".to_string(), 10.0),
                    ("total_power_w".to_string(), 11.0),
                    ("allowance".to_string(), 8.5),
                    ("price_per_watt".to_string(), 1.31),
                ],
            },
        ];
        let mut buf = Vec::new();
        write_fleet_chrome_trace(&[&a, &b], &exchange, &mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let doc = json::parse(&text).expect("fleet trace parses as JSON");
        assert_eq!(
            doc.get("otherData").unwrap().get("chips").unwrap().as_num(),
            Some(2.0)
        );
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut chip_pids = std::collections::BTreeSet::new();
        let mut exchange_counters = 0;
        let mut spans = 0;
        for e in events {
            let pid = e.get("pid").unwrap().as_num().unwrap() as usize;
            match e.get("ph").unwrap().as_str().unwrap() {
                "C" if pid == 4 => {
                    exchange_counters += 1;
                    assert_eq!(e.get("name").unwrap().as_str(), Some("exchange"));
                    assert!(e.get("args").unwrap().get("price_per_watt").is_some());
                }
                "C" => {
                    chip_pids.insert(pid);
                }
                "X" => spans += 1,
                _ => {}
            }
        }
        // Each chip counts on its own even pid; chip 1 recorded no phases
        // so all 12 spans are chip 0's, on pid 1.
        assert_eq!(chip_pids.into_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(exchange_counters, 2);
        assert_eq!(spans, 12);
    }

    #[test]
    fn chrome_trace_stride_decimates() {
        let rec = sample_recorder();
        let mut all = Vec::new();
        let mut dec = Vec::new();
        write_chrome_trace(&rec, &mut all, 1).unwrap();
        write_chrome_trace(&rec, &mut dec, 2).unwrap();
        let count = |b: &[u8]| {
            let doc = json::parse(std::str::from_utf8(b).unwrap()).unwrap();
            doc.get("traceEvents").unwrap().as_arr().unwrap().len()
        };
        assert!(count(&dec) < count(&all));
    }

    #[test]
    fn summary_table_lists_measured_phases_only() {
        let mut prof = PhaseProfiler::new();
        for ns in [100, 120, 200, 1000, 1000, 1000, 1000, 1000, 1000, 9000] {
            prof.record(Phase::Plan, ns);
        }
        let table = summary_table(&prof);
        assert!(table.contains("plan"));
        assert!(!table.contains("capture"));
        // The hand-computed fixture percentiles (see profiler tests).
        assert!(table.contains("1.0 µs")); // p50 = 1023 ns
        assert!(table.contains("9.0 µs")); // p95/p99/max = 9000 ns
    }
}
