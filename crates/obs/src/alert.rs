//! Deterministic multi-window burn-rate alerting (DESIGN.md §16).
//!
//! SRE-style alerting over the windowed rollups of [`crate::aggregate`]:
//! each rule watches one error signal (SLO-bad quanta, request sheds,
//! over-TDP quanta, degradation events), expresses a budget for it, and
//! fires only when the **burn rate** — observed rate over budgeted rate —
//! exceeds a threshold in *both* a fast window (the last few rollups,
//! for reaction speed) and a slow window (a longer tail, to reject
//! blips). This is the classic multi-window multi-burn-rate shape from
//! the Google SRE workbook, evaluated **purely in simulated time**: the
//! engine consumes closed windows whose extent is sim time, so the same
//! seed produces byte-identical alert tapes regardless of wall-clock
//! speed, market worker count, or fleet thread count.
//!
//! Cost contract: the engine is preallocated at construction (signal
//! ring, rule states, a bounded event tape) and evaluation performs no
//! allocation — state *transitions* write into the reserved event tape,
//! and overflow beyond its capacity is counted, not grown.

use crate::aggregate::WindowRollup;
use std::fmt::Write as _;

/// The error signals a rule can watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Fraction of quanta where any open-loop task's p99 exceeded its
    /// SLO (the attainment signal PR 8 introduced).
    SloBurn,
    /// Requests shed by bounded queues, per simulated second.
    ShedRate,
    /// Fraction of quanta spent above the TDP (headroom < 0).
    TdpHeadroom,
    /// Degradation events (sensor fallbacks, DVFS/migration retries,
    /// orphaned tasks) per simulated second.
    Degradation,
}

impl AlertKind {
    /// All kinds, in evaluation and rendering order.
    pub const ALL: [AlertKind; 4] = [
        AlertKind::SloBurn,
        AlertKind::ShedRate,
        AlertKind::TdpHeadroom,
        AlertKind::Degradation,
    ];

    /// Stable snake_case name (label value in the scrape exposition).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::SloBurn => "slo_burn",
            AlertKind::ShedRate => "shed_rate",
            AlertKind::TdpHeadroom => "tdp_headroom",
            AlertKind::Degradation => "degradation",
        }
    }
}

/// One burn-rate rule: `signal rate / budget > threshold` in both the
/// fast and the slow lookback for the rule to fire.
#[derive(Debug, Clone, Copy)]
pub struct BurnRule {
    /// The watched signal.
    pub kind: AlertKind,
    /// Budgeted rate: a fraction of quanta for [`AlertKind::SloBurn`] /
    /// [`AlertKind::TdpHeadroom`], events per simulated second for the
    /// others. Must be positive.
    pub budget: f64,
    /// Fast lookback, in closed windows (reaction speed).
    pub fast_windows: usize,
    /// Slow lookback, in closed windows (blip rejection). Must be at
    /// least `fast_windows`; the rule stays silent until this many
    /// windows have closed.
    pub slow_windows: usize,
    /// Burn-rate threshold both lookbacks must exceed.
    pub threshold: f64,
}

impl BurnRule {
    /// The default rule set: page-grade thresholds over 1 s windows.
    ///
    /// | alert | budget | fast | slow | threshold |
    /// |---|---|---|---|---|
    /// | `slo_burn` | 0.1 % of quanta | 2 | 6 | 10× |
    /// | `shed_rate` | 1 shed/s | 2 | 6 | 5× |
    /// | `tdp_headroom` | 2 % of quanta | 2 | 6 | 10× |
    /// | `degradation` | 2 events/s | 2 | 6 | 5× |
    pub fn defaults() -> Vec<BurnRule> {
        vec![
            BurnRule {
                kind: AlertKind::SloBurn,
                budget: 0.001,
                fast_windows: 2,
                slow_windows: 6,
                threshold: 10.0,
            },
            BurnRule {
                kind: AlertKind::ShedRate,
                budget: 1.0,
                fast_windows: 2,
                slow_windows: 6,
                threshold: 5.0,
            },
            BurnRule {
                kind: AlertKind::TdpHeadroom,
                budget: 0.02,
                fast_windows: 2,
                slow_windows: 6,
                threshold: 10.0,
            },
            BurnRule {
                kind: AlertKind::Degradation,
                budget: 2.0,
                fast_windows: 2,
                slow_windows: 6,
                threshold: 5.0,
            },
        ]
    }
}

/// One state transition on the alert tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertEvent {
    /// Sim time of the window close that caused the transition (µs).
    pub at_us: u64,
    /// Which rule.
    pub kind: AlertKind,
    /// `true` = started firing, `false` = resolved.
    pub firing: bool,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
    /// The rule's threshold (for self-contained rendering).
    pub threshold: f64,
}

/// Per-window error-signal sample kept in the engine's ring.
#[derive(Debug, Clone, Copy, Default)]
struct WindowSignal {
    quanta: u64,
    slo_bad: u64,
    over_tdp: u64,
    shed: u64,
    degradation: u64,
    dur_us: u64,
}

/// Live evaluation state of one rule (also what the scrape exposes).
#[derive(Debug, Clone, Copy)]
pub struct RuleState {
    /// Currently firing?
    pub firing: bool,
    /// Latest fast-window burn rate (NaN until `slow_windows` closed).
    pub fast_burn: f64,
    /// Latest slow-window burn rate (NaN until `slow_windows` closed).
    pub slow_burn: f64,
}

/// Cap on the retained event tape; transitions beyond it are counted in
/// [`AlertEngine::events_dropped`], never allocated.
pub const EVENTS_CAP: usize = 256;

/// The burn-rate engine: feed it every closed window, read the tape.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<BurnRule>,
    states: Vec<RuleState>,
    ring: Box<[WindowSignal]>,
    head: usize,
    len: usize,
    events: Vec<AlertEvent>,
    events_dropped: u64,
    fired_total: u64,
}

impl AlertEngine {
    /// An engine over `rules`.
    ///
    /// # Panics
    /// If a rule has a non-positive budget, a zero fast window, or a
    /// slow window shorter than its fast window.
    pub fn new(rules: Vec<BurnRule>) -> AlertEngine {
        let mut cap = 1;
        for r in &rules {
            assert!(r.budget > 0.0, "burn-rate budget must be positive");
            assert!(r.fast_windows > 0, "fast window must be non-zero");
            assert!(
                r.slow_windows >= r.fast_windows,
                "slow window shorter than fast window"
            );
            cap = cap.max(r.slow_windows);
        }
        let states = rules
            .iter()
            .map(|_| RuleState {
                firing: false,
                fast_burn: f64::NAN,
                slow_burn: f64::NAN,
            })
            .collect();
        AlertEngine {
            rules,
            states,
            ring: vec![WindowSignal::default(); cap].into_boxed_slice(),
            head: 0,
            len: 0,
            events: Vec::with_capacity(EVENTS_CAP),
            events_dropped: 0,
            fired_total: 0,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[BurnRule] {
        &self.rules
    }

    /// Live state per rule, indexed like [`AlertEngine::rules`].
    pub fn states(&self) -> &[RuleState] {
        &self.states
    }

    /// The event tape (bounded at [`EVENTS_CAP`]).
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Transitions that did not fit the tape.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Rules currently firing.
    pub fn firing_count(&self) -> u64 {
        self.states.iter().filter(|s| s.firing).count() as u64
    }

    /// Fire transitions over the whole run (monotone; nonzero means the
    /// run was not alert-clean even if everything later resolved).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Signal rate over the last `n` ring entries for `kind`:
    /// quanta-fraction signals divide by quanta, rate signals divide by
    /// simulated seconds.
    fn rate(&self, kind: AlertKind, n: usize) -> f64 {
        let mut quanta = 0u64;
        let mut dur_us = 0u64;
        let mut events = 0u64;
        for k in 0..n.min(self.len) {
            let idx = (self.head + self.ring.len() - 1 - k) % self.ring.len();
            let w = &self.ring[idx];
            quanta += w.quanta;
            dur_us += w.dur_us;
            events += match kind {
                AlertKind::SloBurn => w.slo_bad,
                AlertKind::TdpHeadroom => w.over_tdp,
                AlertKind::ShedRate => w.shed,
                AlertKind::Degradation => w.degradation,
            };
        }
        match kind {
            AlertKind::SloBurn | AlertKind::TdpHeadroom => {
                if quanta == 0 {
                    0.0
                } else {
                    events as f64 / quanta as f64
                }
            }
            AlertKind::ShedRate | AlertKind::Degradation => {
                if dur_us == 0 {
                    0.0
                } else {
                    events as f64 / (dur_us as f64 / 1e6)
                }
            }
        }
    }

    /// Fold one closed window in and re-evaluate every rule. No
    /// allocation: transitions write into the preallocated tape (or bump
    /// the drop counter once it is full).
    pub fn observe_window(&mut self, w: &WindowRollup) {
        self.ring[self.head] = WindowSignal {
            quanta: w.stats.quanta,
            slo_bad: w.stats.slo_bad_quanta,
            over_tdp: w.stats.over_tdp_quanta,
            shed: w.stats.shed,
            degradation: w.stats.degradation,
            dur_us: w.end_us - w.start_us,
        };
        self.head = (self.head + 1) % self.ring.len();
        self.len = (self.len + 1).min(self.ring.len());

        for i in 0..self.rules.len() {
            let r = self.rules[i];
            if self.len < r.slow_windows {
                continue; // not enough history yet — stay silent
            }
            let fast = self.rate(r.kind, r.fast_windows) / r.budget;
            let slow = self.rate(r.kind, r.slow_windows) / r.budget;
            let firing = fast > r.threshold && slow > r.threshold;
            let state = &mut self.states[i];
            state.fast_burn = fast;
            state.slow_burn = slow;
            if firing != state.firing {
                state.firing = firing;
                if firing {
                    self.fired_total += 1;
                }
                if self.events.len() < self.events.capacity() {
                    self.events.push(AlertEvent {
                        at_us: w.end_us,
                        kind: r.kind,
                        firing,
                        fast_burn: fast,
                        slow_burn: slow,
                        threshold: r.threshold,
                    });
                } else {
                    self.events_dropped += 1;
                }
            }
        }
    }

    /// Render the alert tape: one deterministic line per transition plus
    /// a summary head, the analogue of `Auditor::render` for alerts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "alert tape: {} transition(s), {} rule(s) firing at end, {} fired over the run{}",
            self.events.len(),
            self.firing_count(),
            self.fired_total,
            if self.events_dropped > 0 {
                " (tape truncated)"
            } else {
                ""
            }
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "[{:9.3}s] {:8} {:12} fast={:.2}x slow={:.2}x (threshold {:.2}x)",
                e.at_us as f64 / 1e6,
                if e.firing { "FIRING" } else { "RESOLVED" },
                e.kind.name(),
                e.fast_burn,
                e.slow_burn,
                e.threshold,
            );
        }
        out
    }

    /// A detached copy of rule states for scraping (allocates; off the
    /// hot path).
    pub fn snapshot(&self) -> AlertSnapshot {
        AlertSnapshot {
            rules: self
                .rules
                .iter()
                .zip(self.states.iter())
                .map(|(r, s)| RuleStatus {
                    name: r.kind.name(),
                    firing: s.firing,
                    fast_burn: s.fast_burn,
                    slow_burn: s.slow_burn,
                    threshold: r.threshold,
                })
                .collect(),
            events_total: self.events.len() as u64 + self.events_dropped,
            fired_total: self.fired_total,
        }
    }
}

/// Scrape view of one rule.
#[derive(Debug, Clone)]
pub struct RuleStatus {
    /// Rule name (`slo_burn`, …).
    pub name: &'static str,
    /// Currently firing?
    pub firing: bool,
    /// Latest fast burn (NaN until evaluable).
    pub fast_burn: f64,
    /// Latest slow burn (NaN until evaluable).
    pub slow_burn: f64,
    /// Threshold.
    pub threshold: f64,
}

/// Scrape view of the whole engine; fleet scrapes absorb per-chip
/// snapshots with [`AlertSnapshot::absorb`].
#[derive(Debug, Clone, Default)]
pub struct AlertSnapshot {
    /// Per-rule status (fleet: worst across chips, matched by name).
    pub rules: Vec<RuleStatus>,
    /// Transitions observed (including any beyond the tape cap).
    pub events_total: u64,
    /// Fire transitions over the run.
    pub fired_total: u64,
}

impl AlertSnapshot {
    /// Fold a chip's snapshot in: a fleet rule fires if any chip's rule
    /// fires, and reports the worst burn rates across chips.
    pub fn absorb(&mut self, other: &AlertSnapshot) {
        self.events_total += other.events_total;
        self.fired_total += other.fired_total;
        for theirs in &other.rules {
            if let Some(mine) = self.rules.iter_mut().find(|r| r.name == theirs.name) {
                mine.firing |= theirs.firing;
                if !theirs.fast_burn.is_nan()
                    && (mine.fast_burn.is_nan() || theirs.fast_burn > mine.fast_burn)
                {
                    mine.fast_burn = theirs.fast_burn;
                }
                if !theirs.slow_burn.is_nan()
                    && (mine.slow_burn.is_nan() || theirs.slow_burn > mine.slow_burn)
                {
                    mine.slow_burn = theirs.slow_burn;
                }
            } else {
                self.rules.push(theirs.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{WindowRollup, WindowStats};

    fn window(i: u64, quanta: u64, slo_bad: u64, shed: u64) -> WindowRollup {
        let mut stats = WindowStats::new();
        stats.quanta = quanta;
        stats.slo_bad_quanta = slo_bad;
        stats.shed = shed;
        WindowRollup {
            start_us: i * 1_000_000,
            end_us: (i + 1) * 1_000_000,
            stats,
        }
    }

    #[test]
    fn stays_silent_until_slow_window_fills() {
        let mut e = AlertEngine::new(BurnRule::defaults());
        for i in 0..5 {
            e.observe_window(&window(i, 1000, 1000, 0)); // 100% bad!
            assert_eq!(e.firing_count(), 0, "silent before 6 windows");
        }
        e.observe_window(&window(5, 1000, 1000, 0));
        assert_eq!(e.firing_count(), 1);
        assert_eq!(e.events().len(), 1);
        assert!(e.events()[0].firing);
        assert_eq!(e.events()[0].kind, AlertKind::SloBurn);
    }

    #[test]
    fn fires_and_resolves_on_both_window_agreement() {
        let rules = vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 1,
            slow_windows: 3,
            threshold: 10.0,
        }];
        let mut e = AlertEngine::new(rules);
        // Three clean windows: evaluable, silent.
        for i in 0..3 {
            e.observe_window(&window(i, 1000, 0, 0));
        }
        assert_eq!(e.firing_count(), 0);
        // One hot window: fast burn = 1.0/0.001 = 1000x; slow = 333x → fire.
        e.observe_window(&window(3, 1000, 1000, 0));
        assert_eq!(e.firing_count(), 1);
        // Clean again: fast drops instantly → resolve, even though slow
        // is still hot (both must exceed to fire).
        e.observe_window(&window(4, 1000, 0, 0));
        assert_eq!(e.firing_count(), 0);
        assert_eq!(e.events().len(), 2);
        assert!(!e.events()[1].firing);
        assert_eq!(e.fired_total(), 1);
    }

    #[test]
    fn rate_signals_use_sim_seconds() {
        let rules = vec![BurnRule {
            kind: AlertKind::ShedRate,
            budget: 1.0,
            fast_windows: 1,
            slow_windows: 2,
            threshold: 5.0,
        }];
        let mut e = AlertEngine::new(rules);
        e.observe_window(&window(0, 1000, 0, 0));
        // 20 sheds in a 1 s window = 20/s → fast 20x, slow 10x → fire.
        e.observe_window(&window(1, 1000, 0, 20));
        assert_eq!(e.firing_count(), 1);
        let s = e.states()[0];
        assert!((s.fast_burn - 20.0).abs() < 1e-9);
        assert!((s.slow_burn - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_deterministic_and_self_describing() {
        let mut e = AlertEngine::new(vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 1,
            slow_windows: 1,
            threshold: 1.0,
        }]);
        e.observe_window(&window(0, 100, 100, 0));
        let r = e.render();
        assert!(r.contains("FIRING"), "{r}");
        assert!(r.contains("slo_burn"), "{r}");
        assert!(r.starts_with("alert tape: 1 transition(s), 1 rule(s) firing"));
    }

    #[test]
    fn event_tape_is_bounded() {
        let mut e = AlertEngine::new(vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 1,
            slow_windows: 1,
            threshold: 1.0,
        }]);
        for i in 0..2 * EVENTS_CAP as u64 {
            // Alternate hot/clean so every window transitions.
            e.observe_window(&window(i, 100, if i % 2 == 0 { 100 } else { 0 }, 0));
        }
        assert_eq!(e.events().len(), EVENTS_CAP);
        assert!(e.events_dropped() > 0);
        assert_eq!(
            e.snapshot().events_total,
            EVENTS_CAP as u64 + e.events_dropped()
        );
    }

    #[test]
    fn fleet_absorb_takes_worst_across_chips() {
        let mut quiet = AlertEngine::new(vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 1,
            slow_windows: 1,
            threshold: 10.0,
        }]);
        let mut loud = AlertEngine::new(vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 1,
            slow_windows: 1,
            threshold: 10.0,
        }]);
        quiet.observe_window(&window(0, 1000, 0, 0));
        loud.observe_window(&window(0, 1000, 500, 0));
        let mut fleet = quiet.snapshot();
        fleet.absorb(&loud.snapshot());
        assert!(fleet.rules[0].firing);
        assert_eq!(fleet.fired_total, 1);
        assert!((fleet.rules[0].fast_burn - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slow window")]
    fn bad_rule_panics() {
        let _ = AlertEngine::new(vec![BurnRule {
            kind: AlertKind::SloBurn,
            budget: 0.001,
            fast_windows: 3,
            slow_windows: 2,
            threshold: 1.0,
        }]);
    }
}
