//! Dependency-free scrape endpoint (DESIGN.md §16).
//!
//! A `std::net::TcpListener` HTTP/1.0 server exposing the live windowed
//! rollups of [`crate::aggregate`] and the alert state of
//! [`crate::alert`] in two formats:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4);
//! * `GET /metrics.json` — a JSON snapshot (`aggregate` + `alert`
//!   sections, parseable by [`crate::json`] and validated by
//!   `obs_validate`);
//! * `GET /` — a plain index.
//!
//! The simulation never talks to the server. It publishes into a
//! [`SnapshotHub`] — a double-buffered snapshot slot: the producer builds
//! a fresh [`ScrapeSnapshot`] off to the side (the back buffer) at each
//! window boundary, then swaps it in with one pointer store under a
//! mutex held for nanoseconds. The per-quantum hot path never touches
//! the hub at all (publishing happens only when a window closes, which
//! is also where the telemetry stream flushes), so attaching an endpoint
//! cannot perturb the schedule: the golden-tape byte-identity tests run
//! with a live server attached.

use crate::aggregate::{AggSnapshot, GaugeStat, WindowStats};
use crate::alert::AlertSnapshot;
use crate::profiler::Hist;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything one scrape returns: the fleet rollup, the per-chip rollups
/// it was absorbed from (a single-chip run publishes one chip that
/// equals the fleet), and the alert state.
#[derive(Debug, Clone, Default)]
pub struct ScrapeSnapshot {
    /// Sim time of the publish (µs).
    pub at_us: u64,
    /// The merged rollup ([`AggSnapshot::absorb`] over chips).
    pub fleet: Option<AggSnapshot>,
    /// Per-chip rollups, in chip order.
    pub chips: Vec<AggSnapshot>,
    /// Alert state (fleet: absorbed across chips).
    pub alerts: Option<AlertSnapshot>,
}

/// The double-buffered publish slot between the simulation (producer)
/// and the HTTP thread (consumer). `publish` swaps a freshly built back
/// buffer in; `get` clones the front pointer. Neither side ever blocks
/// the other for more than a pointer store.
#[derive(Debug)]
pub struct SnapshotHub {
    front: Mutex<Arc<ScrapeSnapshot>>,
    version: AtomicU64,
}

impl SnapshotHub {
    /// A hub holding an empty snapshot.
    pub fn new() -> Arc<SnapshotHub> {
        Arc::new(SnapshotHub {
            front: Mutex::new(Arc::new(ScrapeSnapshot::default())),
            version: AtomicU64::new(0),
        })
    }

    /// Swap `snap` in as the new front buffer.
    pub fn publish(&self, snap: ScrapeSnapshot) {
        let fresh = Arc::new(snap);
        *self.front.lock().expect("hub poisoned") = fresh;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The current front buffer.
    pub fn get(&self) -> Arc<ScrapeSnapshot> {
        Arc::clone(&self.front.lock().expect("hub poisoned"))
    }

    /// Publishes so far (0 = nothing published yet).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Append one sample line, skipping non-finite values (our validator —
/// and many real scrapers — reject NaN/Inf samples).
fn sample(out: &mut String, name: &str, labels: &str, v: f64) {
    if !v.is_finite() {
        return;
    }
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {v}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {v}");
    }
}

fn gauge_stats(out: &mut String, name: &str, chip: &str, g: &GaugeStat) {
    let chip = prom_label(chip);
    sample(
        out,
        name,
        &format!("chip=\"{chip}\",stat=\"mean\""),
        g.mean(),
    );
    sample(out, name, &format!("chip=\"{chip}\",stat=\"min\""), g.min);
    sample(out, name, &format!("chip=\"{chip}\",stat=\"max\""), g.max);
}

fn hist_summary(out: &mut String, name: &str, chip: &str, h: &Hist) {
    let chip = prom_label(chip);
    for (q, label) in [(50.0, "0.5"), (95.0, "0.95"), (99.0, "0.99")] {
        sample(
            out,
            name,
            &format!("chip=\"{chip}\",quantile=\"{label}\""),
            h.percentile_ns(q) as f64,
        );
    }
    sample(
        out,
        &format!("{name}_sum"),
        &format!("chip=\"{chip}\""),
        h.sum_ns() as f64,
    );
    sample(
        out,
        &format!("{name}_count"),
        &format!("chip=\"{chip}\""),
        h.count() as f64,
    );
}

fn window_section(out: &mut String, chip: &str, w: &WindowStats, prefix: &str) {
    let l = format!("chip=\"{}\"", prom_label(chip));
    sample(out, &format!("ppm_{prefix}quanta"), &l, w.quanta as f64);
    gauge_stats(out, &format!("ppm_{prefix}power_watts"), chip, &w.power_w);
    gauge_stats(
        out,
        &format!("ppm_{prefix}tdp_headroom_watts"),
        chip,
        &w.headroom_w,
    );
    gauge_stats(
        out,
        &format!("ppm_{prefix}hottest_celsius"),
        chip,
        &w.hottest_c,
    );
    gauge_stats(
        out,
        &format!("ppm_{prefix}p99_over_slo"),
        chip,
        &w.p99_over_slo,
    );
    sample(
        out,
        &format!("ppm_{prefix}slo_bad_quanta"),
        &l,
        w.slo_bad_quanta as f64,
    );
    sample(
        out,
        &format!("ppm_{prefix}over_tdp_quanta"),
        &l,
        w.over_tdp_quanta as f64,
    );
    sample(out, &format!("ppm_{prefix}shed"), &l, w.shed as f64);
    sample(
        out,
        &format!("ppm_{prefix}degradation"),
        &l,
        w.degradation as f64,
    );
    sample(
        out,
        &format!("ppm_{prefix}obs_dropped_rows"),
        &l,
        w.obs_dropped_rows as f64,
    );
    sample(
        out,
        &format!("ppm_{prefix}obs_stream_lost"),
        &l,
        w.obs_stream_lost as f64,
    );
    hist_summary(out, &format!("ppm_{prefix}plan_ns"), chip, &w.plan_ns);
    hist_summary(
        out,
        &format!("ppm_{prefix}task_p99_ns"),
        chip,
        &w.task_p99_ns,
    );
}

fn agg_section(out: &mut String, a: &AggSnapshot) {
    let l = format!("chip=\"{}\"", prom_label(&a.label));
    sample(out, "ppm_windows_closed_total", &l, a.windows_closed as f64);
    sample(out, "ppm_window_seconds", &l, a.window_us as f64 / 1e6);
    sample(out, "ppm_sim_seconds", &l, a.now_us as f64 / 1e6);
    window_section(out, &a.label, &a.totals, "total_");
    if let Some(w) = &a.last {
        window_section(out, &a.label, &w.stats, "window_");
    }
}

/// Render a snapshot as Prometheus text exposition (format 0.0.4). The
/// output is deterministic for a deterministic snapshot: fixed metric
/// order, fixed label order, `{:?}`-free float formatting via `Display`.
pub fn render_prometheus(s: &ScrapeSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP ppm_up Scrape endpoint liveness.\n# TYPE ppm_up gauge\n");
    sample(&mut out, "ppm_up", "", 1.0);
    sample(
        &mut out,
        "ppm_snapshot_sim_seconds",
        "",
        s.at_us as f64 / 1e6,
    );
    out.push_str(
        "# HELP ppm_total_quanta Quanta aggregated since the run began.\n\
         # TYPE ppm_total_quanta counter\n\
         # HELP ppm_window_quanta Quanta in the last closed window.\n\
         # TYPE ppm_window_quanta gauge\n",
    );
    if let Some(f) = &s.fleet {
        agg_section(&mut out, f);
    }
    for c in &s.chips {
        agg_section(&mut out, c);
    }
    if let Some(al) = &s.alerts {
        out.push_str("# TYPE ppm_alert_firing gauge\n");
        for r in &al.rules {
            let l = format!("alert=\"{}\"", r.name);
            sample(
                &mut out,
                "ppm_alert_firing",
                &l,
                f64::from(u8::from(r.firing)),
            );
            sample(&mut out, "ppm_alert_fast_burn", &l, r.fast_burn);
            sample(&mut out, "ppm_alert_slow_burn", &l, r.slow_burn);
            sample(&mut out, "ppm_alert_threshold", &l, r.threshold);
        }
        sample(
            &mut out,
            "ppm_alert_events_total",
            "",
            al.events_total as f64,
        );
        sample(&mut out, "ppm_alert_fired_total", "", al.fired_total as f64);
    }
    out
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn gauge_json(g: &GaugeStat) -> String {
    format!(
        "{{\"n\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
        g.n,
        jnum(g.mean()),
        jnum(g.min),
        jnum(g.max)
    )
}

fn hist_json(h: &Hist) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        h.count(),
        h.sum_ns(),
        h.max_ns(),
        h.percentile_ns(50.0),
        h.percentile_ns(95.0),
        h.percentile_ns(99.0)
    )
}

fn window_json(w: &WindowStats) -> String {
    format!(
        "{{\"quanta\":{},\"power_w\":{},\"tdp_headroom_w\":{},\"hottest_c\":{},\
         \"p99_over_slo\":{},\"slo_bad_quanta\":{},\"over_tdp_quanta\":{},\"shed\":{},\
         \"degradation\":{},\"obs_dropped_rows\":{},\"obs_stream_lost\":{},\
         \"plan_ns\":{},\"task_p99_ns\":{}}}",
        w.quanta,
        gauge_json(&w.power_w),
        gauge_json(&w.headroom_w),
        gauge_json(&w.hottest_c),
        gauge_json(&w.p99_over_slo),
        w.slo_bad_quanta,
        w.over_tdp_quanta,
        w.shed,
        w.degradation,
        w.obs_dropped_rows,
        w.obs_stream_lost,
        hist_json(&w.plan_ns),
        hist_json(&w.task_p99_ns)
    )
}

fn agg_json(a: &AggSnapshot) -> String {
    let last = match &a.last {
        Some(w) => format!(
            "{{\"start_us\":{},\"end_us\":{},\"stats\":{}}}",
            w.start_us,
            w.end_us,
            window_json(&w.stats)
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"label\":{},\"window_us\":{},\"windows_closed\":{},\"now_us\":{},\
         \"last_window\":{},\"totals\":{}}}",
        jstr(&a.label),
        a.window_us,
        a.windows_closed,
        a.now_us,
        last,
        window_json(&a.totals)
    )
}

/// Render a snapshot as the JSON document `obs_validate` checks: an
/// object with `at_us`, an `aggregate` section (`fleet` + `chips`), and
/// an `alert` section.
pub fn render_json(s: &ScrapeSnapshot) -> String {
    let fleet = s.fleet.as_ref().map_or("null".to_string(), agg_json);
    let chips: Vec<String> = s.chips.iter().map(agg_json).collect();
    let alert = match &s.alerts {
        Some(al) => {
            let rules: Vec<String> = al
                .rules
                .iter()
                .map(|r| {
                    format!(
                        "{{\"alert\":{},\"firing\":{},\"fast_burn\":{},\"slow_burn\":{},\
                         \"threshold\":{}}}",
                        jstr(r.name),
                        r.firing,
                        jnum(r.fast_burn),
                        jnum(r.slow_burn),
                        jnum(r.threshold)
                    )
                })
                .collect();
            format!(
                "{{\"rules\":[{}],\"events_total\":{},\"fired_total\":{}}}",
                rules.join(","),
                al.events_total,
                al.fired_total
            )
        }
        None => "null".to_string(),
    };
    format!(
        "{{\"at_us\":{},\"aggregate\":{{\"fleet\":{},\"chips\":[{}]}},\"alert\":{}}}\n",
        s.at_us,
        fleet,
        chips.join(","),
        alert
    )
}

/// The scrape server: owns a listener thread serving the hub's current
/// snapshot until shut down (or dropped).
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `hub` from a background thread.
    pub fn serve(addr: &str, hub: Arc<SnapshotHub>) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let t_stop = Arc::clone(&stop);
        let t_served = Arc::clone(&served);
        let handle = std::thread::Builder::new()
            .name("ppm-scrape".into())
            .spawn(move || {
                while !t_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrape bodies are small and
                            // scrapers are few; a connection pool would be
                            // dead weight here.
                            if handle_conn(stream, &hub).is_ok() {
                                t_served.fetch_add(1, Ordering::Release);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr: local,
            stop,
            served,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served successfully so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Acquire)
    }

    /// Stop accepting and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, hub: &SnapshotHub) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2000)))?;
    // Read until the end of the request head (or the buffer fills — any
    // real scrape GET fits comfortably).
    let mut buf = [0u8; 2048];
    let mut n = 0;
    loop {
        let got = stream.read(&mut buf[n..])?;
        if got == 0 {
            break;
        }
        n += got;
        if n >= buf.len() || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&hub.get()),
            ),
            "/metrics.json" | "/json" => (
                "200 OK",
                "application/json; charset=utf-8",
                render_json(&hub.get()),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "ppm scrape endpoint\n  /metrics       Prometheus text exposition\n  /metrics.json  JSON snapshot\n".to_string(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

/// A minimal scrape client (for `obs_validate --scrape` and the CLI
/// tests): `GET path` from `addr`, returning the body on a 200.
pub fn fetch(addr: &str, path: &str) -> io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!(
            "scrape of {path} failed: {status}"
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggRegistry, QuantumSample};
    use crate::alert::{AlertEngine, BurnRule};

    fn populated_snapshot() -> ScrapeSnapshot {
        let mut reg = AggRegistry::new(1_000_000);
        let mut engine = AlertEngine::new(BurnRule::defaults());
        for q in 0..2200u64 {
            let closed = reg.observe(&QuantumSample {
                t_us: (q + 1) * 1000,
                power_w: 2.0 + (q % 7) as f64 * 0.1,
                headroom_w: 1.5,
                hottest_c: 55.0,
                p99_over_slo: 0.8,
                slo_bad: false,
                shed_total: q / 100,
                degradation_total: 0,
                dropped_rows: 0,
                stream_lost: 0,
                plan_ns: 900 + q % 50,
                task_p99_ns: 3_000_000,
            });
            if let Some(w) = closed {
                engine.observe_window(&w);
            }
        }
        let chip = reg.snapshot("chip 0");
        let mut fleet = AggSnapshot::empty("fleet", reg.window_us());
        fleet.absorb(&chip);
        ScrapeSnapshot {
            at_us: reg.now_us(),
            fleet: Some(fleet),
            chips: vec![chip],
            alerts: Some(engine.snapshot()),
        }
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let text = render_prometheus(&populated_snapshot());
        assert!(text.contains("ppm_up 1"), "{text}");
        assert!(text.contains("ppm_windows_closed_total{chip=\"fleet\"} 2"));
        assert!(text.contains("ppm_window_power_watts{chip=\"chip 0\",stat=\"mean\"}"));
        assert!(text.contains("ppm_alert_firing{alert=\"slo_burn\"} 0"));
        // No NaN/Inf samples ever.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v.is_finite(), "non-finite sample: {line}");
        }
    }

    #[test]
    fn json_rendering_parses_and_has_sections() {
        let doc = render_json(&populated_snapshot());
        let v = crate::json::parse(&doc).expect("valid JSON");
        let agg = v.get("aggregate").expect("aggregate section");
        assert_eq!(
            agg.get("chips")
                .and_then(crate::json::Json::as_arr)
                .unwrap()
                .len(),
            1
        );
        let fleet = agg.get("fleet").unwrap();
        assert_eq!(
            fleet
                .get("windows_closed")
                .and_then(crate::json::Json::as_num),
            Some(2.0)
        );
        let alert = v.get("alert").expect("alert section");
        assert_eq!(
            alert
                .get("rules")
                .and_then(crate::json::Json::as_arr)
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn server_round_trip_on_ephemeral_port() {
        let hub = SnapshotHub::new();
        hub.publish(populated_snapshot());
        let server = ScrapeServer::serve("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
        let addr = server.local_addr().to_string();
        let prom = fetch(&addr, "/metrics").expect("scrape /metrics");
        assert!(prom.contains("ppm_up 1"));
        let json = fetch(&addr, "/metrics.json").expect("scrape /metrics.json");
        assert!(crate::json::parse(&json).is_ok());
        assert!(fetch(&addr, "/nope").is_err(), "404 surfaces as error");
        assert!(server.served() >= 2);
        server.shutdown();
    }

    #[test]
    fn hub_swap_is_versioned() {
        let hub = SnapshotHub::new();
        assert_eq!(hub.version(), 0);
        assert!(hub.get().fleet.is_none());
        hub.publish(populated_snapshot());
        assert_eq!(hub.version(), 1);
        assert!(hub.get().fleet.is_some());
    }
}
