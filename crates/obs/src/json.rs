//! A minimal JSON parser for validating the exporters' output.
//!
//! The workspace is dependency-free by policy, so the trace/JSONL
//! well-formedness checks (the `obs_validate` bin and the integration
//! tests) bring their own parser. It is a straightforward recursive
//! descent over the full grammar — objects, arrays, strings with escapes,
//! numbers, booleans, null — tuned for correctness and error messages,
//! not speed; it only ever runs on test and CI artifacts.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`) — fine for validation,
    /// which never depends on insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as U+FFFD — the exporters
                            // never emit them, validation only needs to not
                            // crash.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("number needs digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if self.digits() == 0 {
                return Err(self.err("fraction needs digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("exponent needs digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }

    fn digits(&mut self) -> usize {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        self.i - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb\u0041""#).unwrap(), Json::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "nul", "\"\\q\"", "01x"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // NaN is not JSON — the exporters must omit/nullify it.
        assert!(parse("NaN").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
    }
}
