//! # ppm-predict — online cross-class demand prediction
//!
//! The paper's LBT module speculates about migrations using *off-line
//! profiled* per-core-type demand and power (§5.2), and names its own
//! follow-up work as the fix: "we plan to include this estimation model
//! [power-performance prediction via program analysis, mechanistic
//! modeling, and empirical modeling — Pricopi et al., CASES 2013] within
//! our price theory based power management framework to eliminate the
//! off-line profiling step."
//!
//! This crate implements that online estimator in the same spirit:
//!
//! * **Empirical**: whenever a task runs, its observed cycles-per-heartbeat
//!   on the current core class is folded into a per-task, per-class EWMA
//!   ([`TaskProfile`]).
//! * **Mechanistic prior**: a class the task has never visited is predicted
//!   from its known class scaled by the *population speedup* — itself an
//!   EWMA over every task that has been observed on both classes — seeded
//!   with a mechanistic big/LITTLE prior (issue-width and window ratio of
//!   an OOO A15 vs an in-order A7, ≈ 1.8×).
//!
//! [`OnlineEstimator`] exposes the same `(task, class) → demand` query the
//! LBT snapshot builder needs, so the manager can run entirely without the
//! off-line tables.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use ppm_platform::core::CoreClass;
use ppm_platform::units::ProcessingUnits;
use ppm_workload::perclass::PerClass;
use ppm_workload::task::TaskId;

/// Mechanistic big/LITTLE speedup prior: the ratio of sustainable IPC of a
/// 3-wide out-of-order core over a 2-wide in-order core on mixed code, as a
/// mechanistic (interval) model estimates before any measurement exists.
pub const MECHANISTIC_SPEEDUP_PRIOR: f64 = 1.8;

/// EWMA smoothing factor for per-task cost observations.
const COST_ALPHA: f64 = 0.2;

/// EWMA smoothing factor for the population speedup.
const SPEEDUP_ALPHA: f64 = 0.05;

/// Per-task empirical state: smoothed cycles-per-heartbeat per class.
#[derive(Debug, Clone, Default)]
pub struct TaskProfile {
    cost: PerClass<Option<f64>>,
    /// Heart-rate target used to convert cost to demand.
    target_hr: f64,
}

impl TaskProfile {
    /// Smoothed cycles-per-heartbeat on `class`, if ever observed.
    pub fn cost(&self, class: CoreClass) -> Option<f64> {
        self.cost[class]
    }

    /// The task's own observed speedup, when it has run on both classes.
    pub fn own_speedup(&self) -> Option<f64> {
        match (self.cost.little, self.cost.big) {
            (Some(l), Some(b)) if b > 0.0 => Some(l / b),
            _ => None,
        }
    }
}

/// The online demand estimator.
///
/// ```
/// use ppm_platform::core::CoreClass;
/// use ppm_predict::OnlineEstimator;
/// use ppm_workload::task::TaskId;
///
/// let mut est = OnlineEstimator::new();
/// // A task observed on LITTLE at 30 hb/s target, costing 15e6 cycles/beat:
/// est.observe(TaskId(0), CoreClass::Little, 30.0, 15.0e6);
/// let d_little = est.demand(TaskId(0), CoreClass::Little).unwrap();
/// assert!((d_little.value() - 450.0).abs() < 1.0);
/// // The unseen big-core demand is extrapolated with the mechanistic prior.
/// let d_big = est.demand(TaskId(0), CoreClass::Big).unwrap();
/// assert!(d_big < d_little);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    tasks: HashMap<TaskId, TaskProfile>,
    /// Population-level LITTLE/big cost ratio (empirical speedup).
    speedup: f64,
    speedup_samples: u64,
}

impl OnlineEstimator {
    /// An estimator with no observations, using the mechanistic prior.
    pub fn new() -> OnlineEstimator {
        OnlineEstimator {
            tasks: HashMap::new(),
            speedup: MECHANISTIC_SPEEDUP_PRIOR,
            speedup_samples: 0,
        }
    }

    /// Fold in an observation: `task` ran on `class` with heart-rate target
    /// `target_hr` (hb/s) and an observed cost of `cycles_per_beat`.
    ///
    /// Observations with non-positive cost or target are ignored.
    pub fn observe(
        &mut self,
        task: TaskId,
        class: CoreClass,
        target_hr: f64,
        cycles_per_beat: f64,
    ) {
        if cycles_per_beat <= 0.0 || target_hr <= 0.0 {
            return;
        }
        let profile = self.tasks.entry(task).or_default();
        profile.target_hr = target_hr;
        let slot = &mut profile.cost[class];
        *slot = Some(match *slot {
            Some(prev) => prev + COST_ALPHA * (cycles_per_beat - prev),
            None => cycles_per_beat,
        });
        // Any task seen on both classes refines the population speedup.
        if let Some(own) = profile.own_speedup() {
            self.speedup += SPEEDUP_ALPHA * (own - self.speedup);
            self.speedup_samples += 1;
        }
    }

    /// Predicted steady demand of `task` on `class`, in PU; `None` until
    /// the task has been observed at least once on *some* class.
    pub fn demand(&self, task: TaskId, class: CoreClass) -> Option<ProcessingUnits> {
        let profile = self.tasks.get(&task)?;
        let cost = self.predict_cost(profile, class)?;
        Some(ProcessingUnits(profile.target_hr * cost / 1e6))
    }

    /// Predicted cost for `class`: the task's own EWMA if observed there,
    /// otherwise its other-class EWMA scaled by the population speedup.
    fn predict_cost(&self, profile: &TaskProfile, class: CoreClass) -> Option<f64> {
        if let Some(c) = profile.cost(class) {
            return Some(c);
        }
        match class {
            CoreClass::Big => profile.cost(CoreClass::Little).map(|l| l / self.speedup),
            CoreClass::Little => profile.cost(CoreClass::Big).map(|b| b * self.speedup),
        }
    }

    /// Both-class demand prediction, when available.
    pub fn demand_per_class(&self, task: TaskId) -> Option<PerClass<ProcessingUnits>> {
        Some(PerClass::new(
            self.demand(task, CoreClass::Little)?,
            self.demand(task, CoreClass::Big)?,
        ))
    }

    /// The current population speedup estimate.
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// How many dual-class observations have refined the speedup.
    pub fn speedup_samples(&self) -> u64 {
        self.speedup_samples
    }

    /// Per-task profile, if any.
    pub fn profile(&self, task: TaskId) -> Option<&TaskProfile> {
        self.tasks.get(&task)
    }

    /// Drop a departed task's profile.
    pub fn remove_task(&mut self, task: TaskId) {
        self.tasks.remove(&task);
    }
}

impl Default for OnlineEstimator {
    fn default() -> Self {
        OnlineEstimator::new()
    }
}

impl fmt::Display for OnlineEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "estimator[{} tasks, speedup {:.2} ({} samples)]",
            self.tasks.len(),
            self.speedup,
            self.speedup_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_the_true_cost() {
        let mut est = OnlineEstimator::new();
        for _ in 0..50 {
            est.observe(TaskId(0), CoreClass::Little, 30.0, 10.0e6);
        }
        let d = est.demand(TaskId(0), CoreClass::Little).expect("observed");
        assert!((d.value() - 300.0).abs() < 0.5, "{d}");
    }

    #[test]
    fn unseen_class_uses_the_prior() {
        let mut est = OnlineEstimator::new();
        est.observe(TaskId(0), CoreClass::Little, 30.0, 18.0e6);
        let big = est.demand(TaskId(0), CoreClass::Big).expect("extrapolated");
        let little = est.demand(TaskId(0), CoreClass::Little).expect("observed");
        assert!((little.value() / big.value() - MECHANISTIC_SPEEDUP_PRIOR).abs() < 1e-9);
    }

    #[test]
    fn population_speedup_is_learned_from_dual_class_tasks() {
        let mut est = OnlineEstimator::new();
        // Task 0 runs on both classes with a true speedup of 2.2.
        for _ in 0..500 {
            est.observe(TaskId(0), CoreClass::Little, 30.0, 22.0e6);
            est.observe(TaskId(0), CoreClass::Big, 30.0, 10.0e6);
        }
        assert!(
            (est.speedup() - 2.2).abs() < 0.05,
            "learned speedup {}",
            est.speedup()
        );
        // Task 1 has only been seen on LITTLE; its big-core prediction now
        // uses the learned 2.2, not the 1.8 prior.
        est.observe(TaskId(1), CoreClass::Little, 10.0, 44.0e6);
        let big = est.demand(TaskId(1), CoreClass::Big).expect("extrapolated");
        assert!((big.value() - 440.0 / 2.2).abs() < 5.0, "{big}");
    }

    #[test]
    fn unknown_task_predicts_nothing() {
        let est = OnlineEstimator::new();
        assert!(est.demand(TaskId(9), CoreClass::Little).is_none());
        assert!(est.demand_per_class(TaskId(9)).is_none());
    }

    #[test]
    fn bad_observations_are_ignored() {
        let mut est = OnlineEstimator::new();
        est.observe(TaskId(0), CoreClass::Little, 30.0, -5.0);
        est.observe(TaskId(0), CoreClass::Little, 0.0, 5.0e6);
        assert!(est.demand(TaskId(0), CoreClass::Little).is_none());
    }

    #[test]
    fn removal_forgets_the_task() {
        let mut est = OnlineEstimator::new();
        est.observe(TaskId(0), CoreClass::Little, 30.0, 10.0e6);
        est.remove_task(TaskId(0));
        assert!(est.demand(TaskId(0), CoreClass::Little).is_none());
    }

    #[test]
    fn ewma_tracks_phase_changes() {
        let mut est = OnlineEstimator::new();
        for _ in 0..50 {
            est.observe(TaskId(0), CoreClass::Little, 30.0, 10.0e6);
        }
        // Demand doubles (new phase); the estimate follows within ~20 obs.
        for _ in 0..20 {
            est.observe(TaskId(0), CoreClass::Little, 30.0, 20.0e6);
        }
        let d = est.demand(TaskId(0), CoreClass::Little).expect("observed");
        assert!(d.value() > 580.0, "estimate lags the phase change: {d}");
    }
}
