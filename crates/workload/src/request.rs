//! Open-loop requests, bounded queues, and the tail-latency SLO monitor.
//!
//! Where a closed-loop benchmark's performance signal is its heart-rate
//! error, an open-loop service's signal is *tail latency against an SLO*:
//! requests arrive on an [`crate::arrivals::ArrivalProcess`] tape whether
//! or not the task keeps up, wait in a bounded FIFO queue, consume a
//! Weibull-distributed number of heartbeats of service, and report their
//! sojourn time on completion. The [`SloMonitor`] parallels
//! [`crate::heartbeat::HeartbeatMonitor`]: it keeps a preallocated window
//! of recent latencies and exposes the p99 the market prices against the
//! SLO (the performance-based-pricing signal of Lučanin et al.).
//!
//! Everything here is preallocated at admission: steady-state operation —
//! admit, shed, serve, refresh percentiles — never allocates.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppm_platform::units::{SimDuration, SimTime};

use crate::arrivals::{ArrivalKind, ArrivalProcess};
use crate::generator::gamma;

/// One in-flight request: when it arrived and how many heartbeats of
/// service it still needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival timestamp from the tape.
    pub arrival: SimTime,
    /// Remaining service demand in heartbeats.
    pub remaining: f64,
}

/// A bounded FIFO request queue backed by a preallocated ring.
///
/// A full queue sheds the *oldest* request (the one already most likely to
/// have blown its SLO) and counts it; pushing never panics and never
/// allocates after construction.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    buf: Vec<Request>,
    head: usize,
    len: usize,
    shed: u64,
}

impl RequestQueue {
    /// An empty queue holding at most `cap` requests.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    pub fn new(cap: usize) -> RequestQueue {
        assert!(cap > 0, "queue capacity must be positive");
        RequestQueue {
            buf: vec![
                Request {
                    arrival: SimTime::ZERO,
                    remaining: 0.0,
                };
                cap
            ],
            head: 0,
            len: 0,
            shed: 0,
        }
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Requests shed (oldest-dropped on overflow) so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The oldest queued request.
    pub fn front(&self) -> Option<&Request> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    /// Append `req`; on a full ring the oldest request is dropped and
    /// counted. Returns the shed request, if any.
    pub fn push(&mut self, req: Request) -> Option<Request> {
        let cap = self.buf.len();
        let dropped = if self.len == cap {
            let old = self.buf[self.head];
            self.head = (self.head + 1) % cap;
            self.len -= 1;
            self.shed += 1;
            Some(old)
        } else {
            None
        };
        self.buf[(self.head + self.len) % cap] = req;
        self.len += 1;
        dropped
    }

    /// Remove and return the oldest request.
    pub fn pop(&mut self) -> Option<Request> {
        if self.len == 0 {
            return None;
        }
        let req = self.buf[self.head];
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(req)
    }

    /// Mutable access to the oldest request (to serve it in place).
    fn front_mut(&mut self) -> Option<&mut Request> {
        (self.len > 0).then(|| &mut self.buf[self.head])
    }
}

/// Sliding-window tail-latency monitor, the open-loop analogue of
/// [`crate::heartbeat::HeartbeatMonitor`].
///
/// Completion latencies land in a preallocated ring; percentiles are
/// recomputed into a preallocated scratch buffer only when new completions
/// arrived ([`SloMonitor::refresh`]), so reads are cheap and allocation-free.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    slo: SimDuration,
    window: Vec<f64>,
    head: usize,
    len: usize,
    scratch: Vec<f64>,
    cached_p99_s: f64,
    cached_p50_s: f64,
    dirty: bool,
    completed: u64,
}

impl SloMonitor {
    /// Default latency-window capacity (completions).
    pub const DEFAULT_WINDOW: usize = 512;

    /// A monitor targeting `slo` at p99 over a `window_cap`-completion window.
    ///
    /// # Panics
    ///
    /// Panics on a zero SLO or window.
    pub fn new(slo: SimDuration, window_cap: usize) -> SloMonitor {
        assert!(!slo.is_zero(), "SLO must be positive");
        assert!(window_cap > 0, "latency window must be positive");
        SloMonitor {
            slo,
            window: vec![0.0; window_cap],
            head: 0,
            len: 0,
            scratch: Vec::with_capacity(window_cap),
            cached_p99_s: 0.0,
            cached_p50_s: 0.0,
            dirty: false,
            completed: 0,
        }
    }

    /// The p99 latency target.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// Completions observed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Record one completion with sojourn time `latency`.
    pub fn record(&mut self, latency: SimDuration) {
        let cap = self.window.len();
        if self.len == cap {
            self.head = (self.head + 1) % cap;
            self.len -= 1;
        }
        self.window[(self.head + self.len) % cap] = latency.as_secs_f64();
        self.len += 1;
        self.completed += 1;
        self.dirty = true;
    }

    /// Recompute the cached percentiles if new completions arrived since
    /// the last refresh. Sorts into the preallocated scratch buffer — no
    /// allocation in steady state.
    pub fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.scratch.clear();
        let cap = self.window.len();
        for i in 0..self.len {
            self.scratch.push(self.window[(self.head + i) % cap]);
        }
        self.scratch.sort_unstable_by(f64::total_cmp);
        self.cached_p99_s = percentile(&self.scratch, 0.99);
        self.cached_p50_s = percentile(&self.scratch, 0.50);
        self.dirty = false;
    }

    /// p99 latency (s) over the window, as of the last refresh.
    pub fn p99_secs(&self) -> f64 {
        self.cached_p99_s
    }

    /// Median latency (s) over the window, as of the last refresh.
    pub fn p50_secs(&self) -> f64 {
        self.cached_p50_s
    }

    /// True when the refreshed p99 exceeds the SLO — the open-loop
    /// QoS-miss condition.
    pub fn misses_slo(&self) -> bool {
        self.cached_p99_s > self.slo.as_secs_f64()
    }
}

impl fmt::Display for SloMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p99 {:.1} ms / SLO {:.1} ms ({} done)",
            self.cached_p99_s * 1e3,
            self.slo.as_secs_f64() * 1e3,
            self.completed
        )
    }
}

/// Tail-conservative percentile of an ascending-sorted slice: the smallest
/// element strictly greater-ranked than `q` of the samples, so one slow
/// request in a hundred *is* the p99 rather than hiding behind it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).floor() as usize + 1).min(sorted.len());
    sorted[rank - 1]
}

/// Static description of an open-loop service attached to a
/// [`crate::benchmarks::BenchmarkSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// The arrival process shape.
    pub arrivals: ArrivalKind,
    /// Seed of the arrival tape and the service-demand stream.
    pub seed: u64,
    /// Mean service demand per request, in heartbeats.
    pub service_beats: f64,
    /// Weibull shape `k` of the per-request service variation (1.0 =
    /// exponential; larger = more uniform; smaller = heavier tail).
    pub weibull_shape: f64,
    /// p99 latency target.
    pub slo: SimDuration,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Latency-window capacity of the [`SloMonitor`].
    pub window: usize,
}

impl OpenLoopSpec {
    /// A spec with the default queue (256) and window
    /// ([`SloMonitor::DEFAULT_WINDOW`]) sizes.
    pub fn new(
        arrivals: ArrivalKind,
        seed: u64,
        service_beats: f64,
        weibull_shape: f64,
        slo: SimDuration,
    ) -> OpenLoopSpec {
        OpenLoopSpec {
            arrivals,
            seed,
            service_beats,
            weibull_shape,
            slo,
            queue_cap: 256,
            window: SloMonitor::DEFAULT_WINDOW,
        }
    }

    /// Replace the queue capacity.
    pub fn with_queue_cap(mut self, cap: usize) -> OpenLoopSpec {
        self.queue_cap = cap;
        self
    }

    /// Replace the [`SloMonitor`] window capacity. The window is the
    /// monitor's memory: at λ requests/s it spans `window / λ` seconds, so
    /// a window far larger than the control loop's time scale keeps p99
    /// pointing at long-gone transients (and the pressure term saturated)
    /// long after the queue has drained.
    pub fn with_window(mut self, window: usize) -> OpenLoopSpec {
        self.window = window;
        self
    }

    /// Target heartbeat throughput (hb/s) needed to keep up with the mean
    /// arrival rate: `λ · service_beats`.
    pub fn target_beat_rate(&self) -> f64 {
        self.arrivals.mean_rate() * self.service_beats
    }
}

/// Copyable open-loop vitals carried by the system snapshot so managers
/// and telemetry see queue pressure and tail latency without touching the
/// live task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSnap {
    /// Requests waiting in the bounded queue.
    pub queue_depth: u32,
    /// p99 latency over the monitor window, in milliseconds.
    pub p99_ms: f64,
    /// The p99 SLO, in milliseconds.
    pub slo_ms: f64,
    /// Requests shed (oldest-dropped) since admission.
    pub shed: u64,
}

/// Live open-loop state of one task: arrival tape cursor, service-demand
/// stream, bounded queue, and SLO monitor.
///
/// Steady-state operation (admit/serve/refresh per quantum) is
/// allocation-free; everything is sized at construction.
#[derive(Debug, Clone)]
pub struct OpenLoopState {
    spec: OpenLoopSpec,
    arrivals: ArrivalProcess,
    service_rng: StdRng,
    /// Weibull scale premultiplied so samples have mean `service_beats`.
    weibull_scale: f64,
    queue: RequestQueue,
    monitor: SloMonitor,
    /// Running sum of `remaining` over the queue (kept incrementally so
    /// the executor's work cap is O(1)).
    queued_beats: f64,
    /// Shed events not yet logged by a manager (drained via
    /// [`OpenLoopState::shed_total`] deltas on the snapshot side).
    served: u64,
}

impl OpenLoopState {
    /// Instantiate `spec`: seeds the arrival tape and an independent
    /// service-demand stream, preallocates the queue and latency window.
    pub fn new(spec: OpenLoopSpec) -> OpenLoopState {
        assert!(spec.service_beats > 0.0, "service demand must be positive");
        assert!(spec.weibull_shape > 0.0, "Weibull shape must be positive");
        // Mean of Weibull(k, scale) is scale·Γ(1 + 1/k); normalize so the
        // sampled service demand has mean `service_beats`.
        let weibull_scale = spec.service_beats / gamma(1.0 + 1.0 / spec.weibull_shape);
        OpenLoopState {
            arrivals: ArrivalProcess::new(spec.arrivals, spec.seed),
            // Decorrelate the service stream from the arrival tape.
            service_rng: StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15),
            weibull_scale,
            queue: RequestQueue::new(spec.queue_cap),
            monitor: SloMonitor::new(spec.slo, spec.window),
            queued_beats: 0.0,
            served: 0,
            spec,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &OpenLoopSpec {
        &self.spec
    }

    /// Admit every arrival due at or before `now` into the queue, sampling
    /// each request's service demand; a full queue sheds its oldest entry.
    pub fn admit_until(&mut self, now: SimTime) {
        while let Some(arrival) = self.arrivals.next_due(now) {
            let u: f64 = self.service_rng.gen_range(0.0..1.0);
            let beats = self.weibull_scale * (-(1.0 - u).ln()).powf(1.0 / self.spec.weibull_shape);
            // Degenerate draws (u ≈ 0) round up to a minimal request, kept
            // above the dust threshold `serve` completes for free.
            let beats = beats.max(1e-6);
            if let Some(old) = self.queue.push(Request {
                arrival,
                remaining: beats,
            }) {
                self.queued_beats -= old.remaining;
            }
            self.queued_beats += beats;
        }
    }

    /// Serve up to `beats` heartbeats of queued work FIFO, recording the
    /// sojourn time of every request completed by `now`. Returns the beats
    /// actually consumed.
    pub fn serve(&mut self, beats: f64, now: SimTime) -> f64 {
        let mut left = beats;
        while left > 0.0 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            if front.remaining > left {
                front.remaining -= left;
                self.queued_beats -= left;
                left = 0.0;
            } else {
                left -= front.remaining;
                self.queued_beats -= front.remaining;
                let done = self.queue.pop().expect("front exists");
                self.monitor.record(now.since(done.arrival));
                self.served += 1;
            }
        }
        // Sweep float dust: `queued_beats` is maintained incrementally, so
        // its rounding can land a hair *under* the front request's true
        // residue. Left alone, that ε-request would strand until the next
        // arrival replenishes the work cap — inflating measured tail
        // latency by a whole inter-arrival gap. Anything below a
        // nano-beat completes now.
        while self.queue.front().is_some_and(|f| f.remaining <= 1e-9) {
            let done = self.queue.pop().expect("front exists");
            self.queued_beats -= done.remaining;
            self.monitor.record(now.since(done.arrival));
            self.served += 1;
        }
        self.queued_beats = self.queued_beats.max(0.0);
        if self.queue.is_empty() {
            self.queued_beats = 0.0;
        }
        self.monitor.refresh();
        beats - left
    }

    /// Total heartbeats of queued work (the executor's service cap).
    pub fn queued_beats(&self) -> f64 {
        self.queued_beats
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests shed since admission.
    pub fn shed_total(&self) -> u64 {
        self.queue.shed()
    }

    /// Requests completed since admission.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The latency monitor.
    pub fn monitor(&self) -> &SloMonitor {
        &self.monitor
    }

    /// SLO pressure on the task's bid: the worse of two ratios against the
    /// SLO, clamped to `[1.0, 2.0]`. Above 1 the task bids its demand up
    /// (latency at risk).
    ///
    /// - **Measured tail** — `p99 / SLO`, once ≥ 20 completions exist to
    ///   trust the percentile. Tracks sustained overload, but the window
    ///   needs `window / λ` seconds to notice a change.
    /// - **Backlog drain** — the seconds of queued work (at the offered
    ///   arrival rate) over the SLO. A burst inflates the backlog at its
    ///   first over-full quantum, so the bid rises *at burst onset*,
    ///   before a single slowed request reaches the percentile window.
    ///
    /// The floor is 1.0 — never below the provisioned service rate —
    /// because a bid under nominal capacity undercuts the offered load
    /// itself (the arrival headroom is smaller than any sub-1 floor would
    /// allow), so the queue rebuilds and the tail limit-cycles around the
    /// SLO instead of settling under it. Slack capacity is already
    /// returned through price: an open-loop task at pressure 1.0 bids
    /// exactly what serving its provisioned traffic costs, no more.
    pub fn pressure(&self) -> f64 {
        let slo = self.spec.slo.as_secs_f64();
        let offered = self.arrivals.kind().mean_rate() * self.spec.service_beats;
        let drain = if offered > 0.0 {
            self.queued_beats / offered
        } else {
            0.0
        };
        let mut p = drain / slo;
        if self.monitor.completed() >= 20 {
            p = p.max(self.monitor.p99_secs() / slo);
        }
        p.clamp(1.0, 2.0)
    }

    /// Copyable vitals for the system snapshot.
    pub fn snap(&self) -> OpenLoopSnap {
        OpenLoopSnap {
            queue_depth: self.queue.len() as u32,
            p99_ms: self.monitor.p99_secs() * 1e3,
            slo_ms: self.spec.slo.as_secs_f64() * 1e3,
            shed: self.queue.shed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> OpenLoopSpec {
        OpenLoopSpec::new(
            ArrivalKind::Poisson { rate: 100.0 },
            42,
            4.0,
            1.5,
            SimDuration::from_millis(100),
        )
    }

    #[test]
    fn queue_sheds_oldest_on_overflow() {
        let mut q = RequestQueue::new(3);
        for i in 0..5u64 {
            q.push(Request {
                arrival: SimTime(i),
                remaining: 1.0,
            });
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed(), 2);
        // The two oldest (0, 1) were shed.
        assert_eq!(q.pop().expect("front").arrival, SimTime(2));
        assert_eq!(q.pop().expect("front").arrival, SimTime(3));
        assert_eq!(q.pop().expect("front").arrival, SimTime(4));
        assert!(q.pop().is_none());
    }

    #[test]
    fn slo_monitor_p99_tracks_tail() {
        let mut m = SloMonitor::new(SimDuration::from_millis(100), 200);
        // 99 fast completions, 1 slow: p99 lands on the slow one.
        for _ in 0..99 {
            m.record(SimDuration::from_millis(10));
        }
        m.record(SimDuration::from_millis(500));
        m.refresh();
        assert!((m.p99_secs() - 0.5).abs() < 1e-12);
        assert!((m.p50_secs() - 0.01).abs() < 1e-12);
        assert!(m.misses_slo());
    }

    #[test]
    fn slo_monitor_empty_window_reads_zero() {
        let mut m = SloMonitor::new(SimDuration::from_millis(100), 8);
        m.refresh();
        assert_eq!(m.p50_secs(), 0.0);
        assert_eq!(m.p99_secs(), 0.0);
        assert!(!m.misses_slo(), "an empty window is not an SLO miss");
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn slo_monitor_exact_percentile_rank_boundaries() {
        // A single completion IS every percentile.
        let mut m = SloMonitor::new(SimDuration::from_millis(100), 8);
        m.record(SimDuration::from_millis(42));
        m.refresh();
        assert!((m.p50_secs() - 0.042).abs() < 1e-12);
        assert!((m.p99_secs() - 0.042).abs() < 1e-12);

        // Exactly 100 distinct latencies: the nearest-rank rule lands p50
        // on the 51st order statistic and p99 on the 100th — no
        // interpolation between observed values, ever.
        let mut m = SloMonitor::new(SimDuration::from_millis(500), 100);
        for i in 1..=100u64 {
            m.record(SimDuration::from_millis(i));
        }
        m.refresh();
        assert!((m.p50_secs() - 0.051).abs() < 1e-12);
        assert!((m.p99_secs() - 0.100).abs() < 1e-12);
    }

    #[test]
    fn slo_monitor_full_eviction_forgets_the_old_tail() {
        // Fill the window with slow completions, then push a full window
        // of fast ones: the slow tail must be completely evicted, so the
        // refreshed p99 drops back under the SLO (guards the ring
        // head/len arithmetic at the exact wrap boundary).
        let mut m = SloMonitor::new(SimDuration::from_millis(100), 64);
        for _ in 0..64 {
            m.record(SimDuration::from_millis(500));
        }
        m.refresh();
        assert!(m.misses_slo());
        for _ in 0..64 {
            m.record(SimDuration::from_millis(1));
        }
        m.refresh();
        assert!((m.p99_secs() - 0.001).abs() < 1e-12);
        assert!(!m.misses_slo());
        assert_eq!(m.completed(), 128, "eviction never uncounts completions");
    }

    #[test]
    fn admission_clock_regression_admits_nothing_twice() {
        // The executor's clock only moves forward, but a stalled or
        // repeated `now` must be a no-op: re-admitting up to the same
        // instant (or an earlier one) may not re-deliver arrivals, shed,
        // or resample service draws.
        let mut s = OpenLoopState::new(spec());
        s.admit_until(SimTime::from_secs(1));
        let (depth, beats, shed) = (s.queue_depth(), s.queued_beats(), s.shed_total());
        assert!(depth > 0, "1 s at 100 req/s must admit something");
        s.admit_until(SimTime::from_secs(1));
        s.admit_until(SimTime::from_millis(1));
        assert_eq!(s.queue_depth(), depth);
        assert_eq!(s.queued_beats(), beats);
        assert_eq!(s.shed_total(), shed);
    }

    proptest! {
        /// Percentiles are ordered and always one of the windowed
        /// observations — the nearest-rank estimator never interpolates.
        #[test]
        fn slo_monitor_percentiles_ordered_and_observed(
            lat in proptest::collection::vec(1_u64..1_000_000, 1..300),
        ) {
            let mut m = SloMonitor::new(SimDuration::from_millis(100), 128);
            for &l in &lat {
                m.record(SimDuration(l));
            }
            m.refresh();
            prop_assert!(m.p50_secs() <= m.p99_secs());
            let windowed: Vec<f64> = lat
                .iter()
                .rev()
                .take(128)
                .map(|&l| SimDuration(l).as_secs_f64())
                .collect();
            prop_assert!(windowed.iter().any(|&s| (s - m.p99_secs()).abs() < 1e-15));
            prop_assert!(windowed.iter().any(|&s| (s - m.p50_secs()).abs() < 1e-15));
        }
    }

    #[test]
    fn service_mean_respects_weibull_normalization() {
        let mut s = OpenLoopState::new(spec());
        s.admit_until(SimTime::from_secs(20));
        // ~2000 arrivals at 100 req/s over 20 s; the queue kept only the
        // newest 256, but queued_beats/queue_depth still estimates the
        // per-request mean.
        let mean = s.queued_beats() / s.queue_depth() as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean {mean}");
        assert!(s.shed_total() > 0, "undersized queue must shed");
    }

    #[test]
    fn serving_completes_requests_and_measures_latency() {
        let mut s = OpenLoopState::new(spec());
        let mut now = SimTime::ZERO;
        // Serve comfortably above the 400 hb/s offered load: 2 s of
        // traffic at 100 req/s is ~200 requests.
        for _ in 0..2000 {
            now += SimDuration::from_millis(1);
            s.admit_until(now);
            s.serve(0.8, now);
        }
        assert!(s.served() > 150, "served {}", s.served());
        assert_eq!(s.shed_total(), 0);
        // Overprovisioned: the tail stays well under the 100 ms SLO, and
        // the bid floors at the provisioned rate rather than undercutting
        // the offered load.
        assert!(!s.monitor().misses_slo(), "{}", s.monitor());
        assert!((s.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_state_builds_pressure() {
        let mut s = OpenLoopState::new(spec());
        let mut now = SimTime::ZERO;
        // Serve a quarter of the offered load: the queue saturates and
        // completions blow the SLO.
        for _ in 0..4000 {
            now += SimDuration::from_millis(1);
            s.admit_until(now);
            s.serve(0.1, now);
        }
        assert!(s.monitor().misses_slo(), "{}", s.monitor());
        assert!((s.pressure() - 2.0).abs() < 1e-12);
        assert!(s.shed_total() > 0);
    }

    #[test]
    fn state_is_deterministic_per_seed() {
        let mut a = OpenLoopState::new(spec());
        let mut b = OpenLoopState::new(spec());
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += SimDuration::from_millis(1);
            a.admit_until(now);
            b.admit_until(now);
            a.serve(0.4, now);
            b.serve(0.4, now);
        }
        assert_eq!(a.snap(), b.snap());
        assert_eq!(a.served(), b.served());
    }

    proptest! {
        /// A full queue always sheds the oldest request and never panics,
        /// whatever the push pattern; counters stay consistent.
        #[test]
        fn overflow_sheds_oldest_never_panics(
            cap in 1usize..32,
            pushes in proptest::collection::vec(0u64..1_000_000, 0..200),
        ) {
            let mut q = RequestQueue::new(cap);
            for (i, &t) in pushes.iter().enumerate() {
                q.push(Request { arrival: SimTime(t), remaining: (i % 7) as f64 + 0.5 });
                prop_assert!(q.len() <= cap);
                prop_assert_eq!(q.len() as u64 + q.shed(), i as u64 + 1);
            }
            let expected_shed = pushes.len().saturating_sub(cap) as u64;
            prop_assert_eq!(q.shed(), expected_shed);
            // Survivors are exactly the newest `min(len, cap)` pushes, FIFO.
            let start = pushes.len() - q.len();
            for &t in &pushes[start..] {
                prop_assert_eq!(q.pop().expect("survivor").arrival, SimTime(t));
            }
            prop_assert!(q.pop().is_none());
        }
    }
}
