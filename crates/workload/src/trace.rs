//! Demand traces: define a task's time-varying computational demand as a
//! piecewise-constant schedule and compile it into the phase model.
//!
//! Useful for replaying measured application behaviour through the market
//! (the off-line-profiling role in §5.2, but user-supplied) and for
//! constructing targeted experiments.
//!
//! The textual format is a comma-separated list of `start_s:scale`
//! segments; each scale multiplies the benchmark's nominal demand until the
//! next segment starts:
//!
//! ```text
//! 0:1.0, 30:0.5, 60:1.4
//! ```

use std::fmt;
use std::str::FromStr;

use crate::phase::Phase;

/// One segment of a [`DemandTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// Segment start, in seconds from the trace origin.
    pub start_s: f64,
    /// Demand multiplier relative to the nominal cost.
    pub scale: f64,
}

/// A piecewise-constant demand schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTrace {
    segments: Vec<TraceSegment>,
}

/// Error from parsing a [`DemandTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError(String);

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid demand trace: {}", self.0)
    }
}

impl std::error::Error for ParseTraceError {}

impl DemandTrace {
    /// Build a trace from segments.
    ///
    /// # Errors
    ///
    /// Returns an error when the list is empty, does not start at 0,
    /// start times are not strictly increasing, or a scale is not positive.
    pub fn new(segments: Vec<TraceSegment>) -> Result<DemandTrace, ParseTraceError> {
        if segments.is_empty() {
            return Err(ParseTraceError("no segments".into()));
        }
        if segments[0].start_s != 0.0 {
            return Err(ParseTraceError("first segment must start at 0".into()));
        }
        for w in segments.windows(2) {
            if w[1].start_s <= w[0].start_s {
                return Err(ParseTraceError(format!(
                    "start times must increase ({} after {})",
                    w[1].start_s, w[0].start_s
                )));
            }
        }
        if let Some(bad) = segments.iter().find(|s| s.scale <= 0.0) {
            return Err(ParseTraceError(format!(
                "scale must be positive (got {} at {}s)",
                bad.scale, bad.start_s
            )));
        }
        Ok(DemandTrace { segments })
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Total trace span in seconds (start of the last segment plus
    /// `tail_s`, the duration given to it).
    pub fn span_s(&self, tail_s: f64) -> f64 {
        self.segments.last().expect("non-empty").start_s + tail_s
    }

    /// Compile the trace into cyclic [`Phase`]s for a task whose target
    /// heart rate is `target_hr` hb/s. The final segment lasts `tail_s`
    /// seconds per cycle.
    ///
    /// Phase lengths are in heartbeats at the target rate, so a starved
    /// task stretches its schedule — the same semantics as the built-in
    /// benchmark phases.
    ///
    /// # Panics
    ///
    /// Panics if `target_hr` or `tail_s` is not positive.
    pub fn to_phases(&self, target_hr: f64, tail_s: f64) -> Vec<Phase> {
        assert!(target_hr > 0.0, "target heart rate must be positive");
        assert!(tail_s > 0.0, "tail duration must be positive");
        let mut phases = Vec::with_capacity(self.segments.len());
        for (i, seg) in self.segments.iter().enumerate() {
            let duration = match self.segments.get(i + 1) {
                Some(next) => next.start_s - seg.start_s,
                None => tail_s,
            };
            phases.push(Phase::new(duration * target_hr, seg.scale));
        }
        phases
    }
}

impl FromStr for DemandTrace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<DemandTrace, ParseTraceError> {
        let mut segments = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (start, scale) = part
                .split_once(':')
                .ok_or_else(|| ParseTraceError(format!("`{part}` is not `start:scale`")))?;
            let start_s: f64 = start
                .trim()
                .parse()
                .map_err(|e| ParseTraceError(format!("start `{start}`: {e}")))?;
            let scale: f64 = scale
                .trim()
                .parse()
                .map_err(|e| ParseTraceError(format!("scale `{scale}`: {e}")))?;
            segments.push(TraceSegment { start_s, scale });
        }
        DemandTrace::new(segments)
    }
}

impl fmt::Display for DemandTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", s.start_s, s.scale)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::BenchmarkSpec;
    use crate::heartbeat::HeartRateRange;
    use ppm_platform::core::CoreClass;
    use ppm_platform::units::ProcessingUnits;

    #[test]
    fn parses_the_documented_format() {
        let t: DemandTrace = "0:1.0, 30:0.5, 60:1.4".parse().expect("valid");
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.segments()[1].start_s, 30.0);
        assert_eq!(t.segments()[2].scale, 1.4);
        assert_eq!(t.to_string(), "0:1, 30:0.5, 60:1.4");
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!("".parse::<DemandTrace>().is_err());
        assert!("5:1.0".parse::<DemandTrace>().is_err()); // must start at 0
        assert!("0:1.0, 0:2.0".parse::<DemandTrace>().is_err()); // not increasing
        assert!("0:-1.0".parse::<DemandTrace>().is_err()); // non-positive scale
        assert!("0;1.0".parse::<DemandTrace>().is_err()); // wrong separator
    }

    #[test]
    fn phases_get_heartbeat_lengths() {
        let t: DemandTrace = "0:1.0, 10:2.0".parse().expect("valid");
        let phases = t.to_phases(30.0, 5.0);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].heartbeats, 300.0); // 10 s at 30 hb/s
        assert_eq!(phases[0].cost_scale, 1.0);
        assert_eq!(phases[1].heartbeats, 150.0); // 5 s tail
        assert_eq!(phases[1].cost_scale, 2.0);
        assert_eq!(t.span_s(5.0), 15.0);
    }

    #[test]
    fn trace_drives_a_custom_benchmark() {
        let trace: DemandTrace = "0:0.5, 20:1.5".parse().expect("valid");
        let target = HeartRateRange::new(19.0, 21.0);
        let spec = BenchmarkSpec::custom(
            target,
            ProcessingUnits(400.0),
            1.8,
            trace.to_phases(20.0, 20.0),
            None,
        );
        // Average of the two equal-length phases is the nominal demand.
        let avg = spec.profiled_demand(CoreClass::Little);
        assert!((avg.value() - 400.0).abs() < 1e-9, "{avg}");
        assert_eq!(spec.label(), "synthetic_c");
        assert!((spec.speedup() - 1.8).abs() < 1e-12);
    }
}
