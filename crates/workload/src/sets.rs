//! Multiprogrammed workload sets (Table 6) and the intensity metric.
//!
//! The paper builds nine six-task sets from the Table 5 benchmarks and
//! classifies them by
//!
//! ```text
//! intensity = (Σ_t d_t^A7  −  S_A7^maxfreq) / S_A7^maxfreq
//! ```
//!
//! — whether the whole set fits in the LITTLE cluster at its top frequency.
//! `intensity ≤ 0` is *light*, `0 < intensity ≤ 0.30` *medium*, `> 0.30`
//! *heavy*.
//!
//! The printed Table 6 is partially garbled in our source text, so the
//! medium/heavy memberships are reconstructed from the same benchmark pool
//! such that each set lands in its intended band (see `DESIGN.md §7`); the
//! light sets follow the table directly.

use std::fmt;

use ppm_platform::core::CoreClass;
use ppm_platform::units::ProcessingUnits;

use crate::benchmarks::{Benchmark, BenchmarkSpec, Input};
use crate::task::{Priority, Task, TaskId};

/// Intensity classification bands from §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Fits in the LITTLE cluster at top frequency (`intensity ≤ 0`).
    Light,
    /// Slightly overflows LITTLE (`0 < intensity ≤ 0.30`).
    Medium,
    /// Substantially overflows LITTLE (`intensity > 0.30`).
    Heavy,
}

impl WorkloadClass {
    /// Classify an intensity value.
    pub fn of(intensity: f64) -> WorkloadClass {
        if intensity <= 0.0 {
            WorkloadClass::Light
        } else if intensity <= 0.30 {
            WorkloadClass::Medium
        } else {
            WorkloadClass::Heavy
        }
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Light => write!(f, "light"),
            WorkloadClass::Medium => write!(f, "medium"),
            WorkloadClass::Heavy => write!(f, "heavy"),
        }
    }
}

/// One multiprogrammed workload set.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    name: String,
    members: Vec<BenchmarkSpec>,
}

impl WorkloadSet {
    /// Build a named set from benchmark variants.
    ///
    /// # Panics
    ///
    /// Panics if any variant is not in Table 5.
    pub fn new(name: &str, members: &[(Benchmark, Input)]) -> WorkloadSet {
        let members = members
            .iter()
            .map(|&(b, i)| BenchmarkSpec::of(b, i).expect("Table 5 variant"))
            .collect();
        WorkloadSet {
            name: name.to_string(),
            members,
        }
    }

    /// Build a set from arbitrary (possibly custom) benchmark specs.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list.
    pub fn from_specs(name: &str, members: Vec<BenchmarkSpec>) -> WorkloadSet {
        assert!(!members.is_empty(), "a workload set needs members");
        WorkloadSet {
            name: name.to_string(),
            members,
        }
    }

    /// Set name (`l1`, `m2`, `h3`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The benchmark variants in the set.
    pub fn members(&self) -> &[BenchmarkSpec] {
        &self.members
    }

    /// Total profiled demand of the set on the LITTLE cluster.
    pub fn total_little_demand(&self) -> ProcessingUnits {
        self.members
            .iter()
            .map(|s| s.profiled_demand(CoreClass::Little))
            .sum()
    }

    /// The §5.2 intensity metric against a LITTLE cluster whose cores can
    /// jointly supply `little_capacity` PU at top frequency.
    pub fn intensity(&self, little_capacity: ProcessingUnits) -> f64 {
        (self.total_little_demand().value() - little_capacity.value()) / little_capacity.value()
    }

    /// Classification band for the given LITTLE capacity.
    pub fn class(&self, little_capacity: ProcessingUnits) -> WorkloadClass {
        WorkloadClass::of(self.intensity(little_capacity))
    }

    /// Instantiate the set as tasks with ids starting at `first_id`, all at
    /// the same priority (as in the comparative study, where "all the tasks
    /// run at the same priority because HPM and HL do not take the
    /// priorities into consideration").
    pub fn spawn(&self, first_id: usize, priority: Priority) -> Vec<Task> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, s)| Task::new(TaskId(first_id + i), s.clone(), priority))
            .collect()
    }
}

impl fmt::Display for WorkloadSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", m.label())?;
        }
        Ok(())
    }
}

/// Total PU the TC2 LITTLE cluster supplies at top frequency
/// (3 × Cortex-A7 × 1000 MHz).
pub const TC2_LITTLE_CAPACITY: ProcessingUnits = ProcessingUnits(3000.0);

/// The nine workload sets of Table 6 (light sets verbatim; medium/heavy
/// reconstructed — see module docs).
pub fn table6_sets() -> Vec<WorkloadSet> {
    use Benchmark as B;
    use Input as I;
    vec![
        WorkloadSet::new(
            "l1",
            &[
                (B::Texture, I::Vga),
                (B::Tracking, I::Vga),
                (B::H264, I::Soccer),
                (B::Swaptions, I::Large),
                (B::X264, I::Large),
                (B::Blackscholes, I::Large),
            ],
        ),
        WorkloadSet::new(
            "l2",
            &[
                (B::Texture, I::Vga),
                (B::Multicnt, I::Vga),
                (B::H264, I::Bluesky),
                (B::Swaptions, I::Large),
                (B::Bodytrack, I::Large),
                (B::Blackscholes, I::Large),
            ],
        ),
        WorkloadSet::new(
            "l3",
            &[
                (B::Tracking, I::Vga),
                (B::Multicnt, I::Vga),
                (B::H264, I::Soccer),
                (B::X264, I::Large),
                (B::Bodytrack, I::Large),
                (B::Blackscholes, I::Large),
            ],
        ),
        WorkloadSet::new(
            "m1",
            &[
                (B::Swaptions, I::Native),
                (B::Bodytrack, I::Native),
                (B::X264, I::Native),
                (B::Tracking, I::Vga),
                (B::Multicnt, I::Vga),
                (B::Blackscholes, I::Native),
            ],
        ),
        WorkloadSet::new(
            "m2",
            &[
                (B::Bodytrack, I::Native),
                (B::Texture, I::FullHd),
                (B::H264, I::Foreman),
                (B::Swaptions, I::Native),
                (B::X264, I::Native),
                (B::Blackscholes, I::Large),
            ],
        ),
        WorkloadSet::new(
            "m3",
            &[
                (B::H264, I::Foreman),
                (B::X264, I::Native),
                (B::Blackscholes, I::Native),
                (B::Texture, I::FullHd),
                (B::Swaptions, I::Native),
                (B::Tracking, I::Vga),
            ],
        ),
        WorkloadSet::new(
            "h1",
            &[
                (B::Texture, I::FullHd),
                (B::Swaptions, I::Native),
                (B::Multicnt, I::FullHd),
                (B::Blackscholes, I::Native),
                (B::X264, I::Native),
                (B::Tracking, I::FullHd),
            ],
        ),
        WorkloadSet::new(
            "h2",
            &[
                (B::Bodytrack, I::Native),
                (B::Texture, I::FullHd),
                (B::Tracking, I::FullHd),
                (B::H264, I::Bluesky),
                (B::Multicnt, I::FullHd),
                (B::X264, I::Native),
            ],
        ),
        WorkloadSet::new(
            "h3",
            &[
                (B::Swaptions, I::Native),
                (B::Bodytrack, I::Native),
                (B::Tracking, I::FullHd),
                (B::X264, I::Native),
                (B::Multicnt, I::FullHd),
                (B::H264, I::Bluesky),
            ],
        ),
    ]
}

/// Look a Table 6 set up by name.
pub fn set_by_name(name: &str) -> Option<WorkloadSet> {
    table6_sets().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_sets_of_six_tasks() {
        let sets = table6_sets();
        assert_eq!(sets.len(), 9);
        for s in &sets {
            assert_eq!(s.members().len(), 6, "{}", s.name());
        }
    }

    #[test]
    fn sets_land_in_their_intensity_bands() {
        for s in table6_sets() {
            let want = match &s.name()[..1] {
                "l" => WorkloadClass::Light,
                "m" => WorkloadClass::Medium,
                "h" => WorkloadClass::Heavy,
                _ => unreachable!(),
            };
            let got = s.class(TC2_LITTLE_CAPACITY);
            assert_eq!(
                got,
                want,
                "{}: intensity {:.3}",
                s.name(),
                s.intensity(TC2_LITTLE_CAPACITY)
            );
        }
    }

    #[test]
    fn class_banding_boundaries() {
        assert_eq!(WorkloadClass::of(0.0), WorkloadClass::Light);
        assert_eq!(WorkloadClass::of(-0.5), WorkloadClass::Light);
        assert_eq!(WorkloadClass::of(0.01), WorkloadClass::Medium);
        assert_eq!(WorkloadClass::of(0.30), WorkloadClass::Medium);
        assert_eq!(WorkloadClass::of(0.31), WorkloadClass::Heavy);
    }

    #[test]
    fn spawn_assigns_sequential_ids_and_priority() {
        let tasks = set_by_name("l1").expect("exists").spawn(10, Priority(3));
        assert_eq!(tasks.len(), 6);
        assert_eq!(tasks[0].id(), TaskId(10));
        assert_eq!(tasks[5].id(), TaskId(15));
        assert!(tasks.iter().all(|t| t.priority() == Priority(3)));
    }

    #[test]
    fn lookup_by_name() {
        assert!(set_by_name("h3").is_some());
        assert!(set_by_name("x9").is_none());
    }

    #[test]
    fn heavier_sets_demand_more() {
        let l1 = set_by_name("l1").expect("l1").total_little_demand();
        let m1 = set_by_name("m1").expect("m1").total_little_demand();
        let h1 = set_by_name("h1").expect("h1").total_little_demand();
        assert!(l1 < m1 && m1 < h1);
    }
}

#[cfg(test)]
mod custom_set_tests {
    use super::*;
    use crate::heartbeat::HeartRateRange;
    use crate::phase::Phase;

    #[test]
    fn custom_specs_form_a_set() {
        let spec = BenchmarkSpec::custom(
            HeartRateRange::new(9.5, 10.5),
            ProcessingUnits(800.0),
            1.7,
            vec![Phase::new(f64::MAX, 1.0)],
            None,
        );
        let set = WorkloadSet::from_specs("mine", vec![spec.clone(), spec]);
        assert_eq!(set.name(), "mine");
        assert_eq!(set.members().len(), 2);
        assert_eq!(set.total_little_demand(), ProcessingUnits(1600.0));
        // 1600 of 3000 LITTLE capacity: a light set.
        assert_eq!(set.class(TC2_LITTLE_CAPACITY), WorkloadClass::Light);
        let tasks = set.spawn(0, Priority(2));
        assert_eq!(tasks[1].id(), TaskId(1));
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_custom_set_panics() {
        let _ = WorkloadSet::from_specs("empty", vec![]);
    }
}
