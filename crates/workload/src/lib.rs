//! # ppm-workload — tasks, heartbeats and synthetic benchmarks
//!
//! The application-side substrate for the PPM reproduction: runtime
//! [`task::Task`]s wrap phase-structured [`benchmarks::BenchmarkSpec`]
//! models of the paper's PARSEC / SPEC 2006 / SD-VBS programs, expose their
//! QoS goal as a heart-rate range, and convert observed heart rates into PU
//! demands exactly as the paper's Table 4 prescribes.
//!
//! ```
//! use ppm_platform::core::CoreClass;
//! use ppm_workload::benchmarks::{Benchmark, BenchmarkSpec, Input};
//! use ppm_workload::task::{Priority, Task, TaskId};
//!
//! # fn main() -> Result<(), ppm_workload::benchmarks::UnknownVariantError> {
//! let spec = BenchmarkSpec::of(Benchmark::Swaptions, Input::Native)?;
//! let task = Task::new(TaskId(0), spec, Priority(2));
//! // A task needs fewer PU on a big core for the same heart rate.
//! assert!(task.spec().profiled_demand(CoreClass::Big)
//!         < task.spec().profiled_demand(CoreClass::Little));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod benchmarks;
pub mod generator;
pub mod heartbeat;
pub mod perclass;
pub mod phase;
pub mod request;
pub mod sets;
pub mod task;
pub mod trace;

pub use crate::arrivals::{ArrivalKind, ArrivalProcess};
pub use crate::benchmarks::{Benchmark, BenchmarkSpec, Input};
pub use crate::generator::{
    bursty_template, openloop_family, openloop_set_by_name, openloop_sets, OpenLoopFamily,
};
pub use crate::heartbeat::{HeartRateRange, HeartbeatMonitor};
pub use crate::perclass::PerClass;
pub use crate::phase::{Phase, PhaseSequence};
pub use crate::request::{OpenLoopSnap, OpenLoopSpec, OpenLoopState, RequestQueue, SloMonitor};
pub use crate::sets::{table6_sets, WorkloadClass, WorkloadSet, TC2_LITTLE_CAPACITY};
pub use crate::task::{Priority, Task, TaskId};
pub use crate::trace::{DemandTrace, TraceSegment};
