//! Random task generation for the scalability study (Table 7).
//!
//! §5.5 of the paper emulates large systems by feeding randomly generated
//! tasks ("supply and demands randomly chosen between 10–50 PUs") to the
//! constrained core, with per-cluster maximum supplies spread over
//! 350–3000 PU. This module reproduces that generator deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppm_platform::units::{Money, ProcessingUnits};

/// Demand/bid snapshot of one emulated remote task, as disseminated to the
/// constrained core for LBT speculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTask {
    /// Priority `r_t`.
    pub priority: u32,
    /// Observed demand in PU.
    pub demand: ProcessingUnits,
    /// Observed supply in PU.
    pub supply: ProcessingUnits,
    /// Steady-state bid.
    pub bid: Money,
}

/// Deterministic generator of [`SyntheticTask`]s and cluster supply
/// snapshots, matching the §5.5 parameter ranges.
#[derive(Debug)]
pub struct ScalabilityWorkload {
    rng: StdRng,
}

impl ScalabilityWorkload {
    /// Paper parameter: smallest random supply/demand (PU).
    pub const MIN_PU: f64 = 10.0;
    /// Paper parameter: largest random supply/demand (PU).
    pub const MAX_PU: f64 = 50.0;

    /// A generator seeded for reproducibility.
    pub fn new(seed: u64) -> ScalabilityWorkload {
        ScalabilityWorkload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate one task with supply/demand in the paper's 10–50 PU range.
    pub fn task(&mut self) -> SyntheticTask {
        let demand = self.rng.gen_range(Self::MIN_PU..=Self::MAX_PU);
        let supply = self.rng.gen_range(Self::MIN_PU..=Self::MAX_PU);
        SyntheticTask {
            priority: self.rng.gen_range(1..=8),
            demand: ProcessingUnits(demand),
            supply: ProcessingUnits(supply),
            bid: Money(self.rng.gen_range(0.1..=2.0)),
        }
    }

    /// Generate `n` tasks.
    pub fn tasks(&mut self, n: usize) -> Vec<SyntheticTask> {
        (0..n).map(|_| self.task()).collect()
    }

    /// Per-core free supply snapshots for a remote cluster of `cores`
    /// cores whose top frequency is `max_supply`.
    pub fn cluster_supplies(
        &mut self,
        cores: usize,
        max_supply: ProcessingUnits,
    ) -> Vec<ProcessingUnits> {
        (0..cores)
            .map(|_| ProcessingUnits(self.rng.gen_range(0.0..=max_supply.value())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = ScalabilityWorkload::new(7);
        let mut b = ScalabilityWorkload::new(7);
        assert_eq!(a.tasks(32), b.tasks(32));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ScalabilityWorkload::new(1);
        let mut b = ScalabilityWorkload::new(2);
        assert_ne!(a.tasks(8), b.tasks(8));
    }

    #[test]
    fn values_stay_in_paper_ranges() {
        let mut g = ScalabilityWorkload::new(42);
        for t in g.tasks(1000) {
            assert!(t.demand.value() >= 10.0 && t.demand.value() <= 50.0);
            assert!(t.supply.value() >= 10.0 && t.supply.value() <= 50.0);
            assert!(t.priority >= 1 && t.priority <= 8);
            assert!(t.bid.value() > 0.0);
        }
    }

    #[test]
    fn cluster_supplies_bounded_by_max() {
        let mut g = ScalabilityWorkload::new(3);
        let sup = g.cluster_supplies(16, ProcessingUnits(3000.0));
        assert_eq!(sup.len(), 16);
        assert!(sup.iter().all(|s| s.value() <= 3000.0));
    }
}
