//! Random task generation: the scalability study (Table 7) and calibrated
//! open-loop scenario families.
//!
//! §5.5 of the paper emulates large systems by feeding randomly generated
//! tasks ("supply and demands randomly chosen between 10–50 PUs") to the
//! constrained core, with per-cluster maximum supplies spread over
//! 350–3000 PU. This module reproduces that generator deterministically.
//!
//! It also grows the repro past fixed tables: [`openloop_family`] builds
//! calibrated open-loop workload sets by splitting a total utilization
//! across tasks with the classic UUniFast recurrence and varying each
//! task's per-request service demand with a mean-normalized Weibull, so
//! scenario *families* (same shape, any seed) replace one hand-written
//! Table 6 row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppm_platform::units::{Money, ProcessingUnits, SimDuration};

use crate::arrivals::ArrivalKind;
use crate::benchmarks::BenchmarkSpec;
use crate::heartbeat::HeartRateRange;
use crate::phase::Phase;
use crate::request::OpenLoopSpec;
use crate::sets::{WorkloadSet, TC2_LITTLE_CAPACITY};

/// Demand/bid snapshot of one emulated remote task, as disseminated to the
/// constrained core for LBT speculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTask {
    /// Priority `r_t`.
    pub priority: u32,
    /// Observed demand in PU.
    pub demand: ProcessingUnits,
    /// Observed supply in PU.
    pub supply: ProcessingUnits,
    /// Steady-state bid.
    pub bid: Money,
}

/// Deterministic generator of [`SyntheticTask`]s and cluster supply
/// snapshots, matching the §5.5 parameter ranges.
#[derive(Debug)]
pub struct ScalabilityWorkload {
    rng: StdRng,
}

impl ScalabilityWorkload {
    /// Paper parameter: smallest random supply/demand (PU).
    pub const MIN_PU: f64 = 10.0;
    /// Paper parameter: largest random supply/demand (PU).
    pub const MAX_PU: f64 = 50.0;

    /// A generator seeded for reproducibility.
    pub fn new(seed: u64) -> ScalabilityWorkload {
        ScalabilityWorkload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate one task with supply/demand in the paper's 10–50 PU range.
    pub fn task(&mut self) -> SyntheticTask {
        let demand = self.rng.gen_range(Self::MIN_PU..=Self::MAX_PU);
        let supply = self.rng.gen_range(Self::MIN_PU..=Self::MAX_PU);
        SyntheticTask {
            priority: self.rng.gen_range(1..=8),
            demand: ProcessingUnits(demand),
            supply: ProcessingUnits(supply),
            bid: Money(self.rng.gen_range(0.1..=2.0)),
        }
    }

    /// Generate `n` tasks.
    pub fn tasks(&mut self, n: usize) -> Vec<SyntheticTask> {
        (0..n).map(|_| self.task()).collect()
    }

    /// Per-core free supply snapshots for a remote cluster of `cores`
    /// cores whose top frequency is `max_supply`.
    pub fn cluster_supplies(
        &mut self,
        cores: usize,
        max_supply: ProcessingUnits,
    ) -> Vec<ProcessingUnits> {
        (0..cores)
            .map(|_| ProcessingUnits(self.rng.gen_range(0.0..=max_supply.value())))
            .collect()
    }
}

/// UUniFast [Bini & Buttazzo]: split `total` utilization across `n` tasks,
/// uniformly over the simplex of valid splits. The workhorse of calibrated
/// real-time task-set generation; deterministic for a given RNG state.
pub fn uunifast(rng: &mut StdRng, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.gen_range(0.0..1.0_f64).powf(1.0 / (n - i) as f64);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

/// The gamma function Γ(x) for positive `x`, via the Lanczos approximation
/// (g = 7, n = 9). Used to mean-normalize Weibull service-time draws:
/// `E[Weibull(k, scale)] = scale · Γ(1 + 1/k)`.
pub fn gamma(x: f64) -> f64 {
    assert!(x > 0.0, "gamma: positive arguments only");
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection for small arguments keeps the approximation accurate.
        return std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x));
    }
    let x = x - 1.0;
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
}

/// Parameters of one calibrated open-loop scenario family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopFamily {
    /// Tasks in the set.
    pub tasks: usize,
    /// Total utilization as a fraction of [`TC2_LITTLE_CAPACITY`]
    /// (UUniFast-split across the tasks).
    pub total_util: f64,
    /// Arrival shape template; per-task rates are scaled so each task's
    /// offered load matches its utilization share.
    pub arrivals: ArrivalKind,
    /// Mean service demand per request, in heartbeats.
    pub service_beats: f64,
    /// Weibull shape of the per-request service variation.
    pub weibull_shape: f64,
    /// p99 latency target shared by the family.
    pub slo: SimDuration,
}

impl OpenLoopFamily {
    /// Pinned seed of the named family sets (`ol1`/`ol2`/`ol3`), chosen
    /// once so goldens, benches, and CI smoke all replay the same tape.
    pub const PINNED_SEED: u64 = 0x0517;
}

/// Scale an arrival shape's rates by `k` (diurnal volume scales alike).
fn scale_arrivals(kind: ArrivalKind, k: f64) -> ArrivalKind {
    match kind {
        ArrivalKind::Poisson { rate } => ArrivalKind::Poisson { rate: rate * k },
        ArrivalKind::Bursty {
            base_rate,
            burst_rate,
            mean_on_s,
            mean_off_s,
        } => ArrivalKind::Bursty {
            base_rate: base_rate * k,
            burst_rate: burst_rate * k,
            mean_on_s,
            mean_off_s,
        },
        ArrivalKind::Diurnal {
            volume,
            period_s,
            depth,
        } => ArrivalKind::Diurnal {
            volume: volume * k,
            period_s,
            depth,
        },
    }
}

/// Per-task utilization ceiling: the SLO pressure can double a task's
/// demand, and even the doubled bid must fit a single LITTLE core
/// (`2 · UTIL_CAP · TC2_LITTLE_CAPACITY ≤ 1000 PU`), or the market has no
/// feasible allocation that drains the queue and the tail diverges.
const UTIL_CAP: f64 = 0.15;

/// Capacity-planning margin: arrivals offer `ARRIVAL_HEADROOM` of the
/// provisioned service rate, so at the nominal grant the queue runs at
/// utilization 0.5 — the steady-state tail sits comfortably below the SLO
/// and the pressure term only engages on bursts — instead of critically
/// loaded at 1.0, where the queue random-walks upward and p99 diverges no
/// matter how the market prices it. The pressure controller equilibrates
/// *at* the SLO (its floor is the provisioned rate), so the acceptance
/// bar `p99 ≤ SLO` is only meetable if the nominal point already meets
/// it with margin.
const ARRIVAL_HEADROOM: f64 = 0.5;

/// Clamp every share to `cap`, redistributing the excess across the
/// still-uncapped shares proportionally. Deterministic; preserves the sum
/// (callers assert feasibility: `sum ≤ n · cap`).
fn cap_shares(utils: &mut [f64], cap: f64) {
    for _ in 0..utils.len() {
        let excess: f64 = utils.iter().map(|u| (u - cap).max(0.0)).sum();
        if excess <= 1e-12 {
            return;
        }
        let room: f64 = utils.iter().filter(|u| **u < cap).map(|u| cap - u).sum();
        let scale = (excess / room).min(1.0);
        for u in utils.iter_mut() {
            if *u >= cap {
                *u = cap;
            } else {
                *u += (cap - *u) * scale;
            }
        }
    }
}

/// Build a calibrated open-loop workload set from `family` at `seed`.
///
/// UUniFast splits `total_util` of the LITTLE cluster across the tasks
/// (shares capped at [`UTIL_CAP`] so a pressure-doubled bid still fits one
/// LITTLE core); each task's heart-rate target is the beat throughput its
/// share provisions, and its mean arrival rate offers
/// [`ARRIVAL_HEADROOM`] of that service rate — which is how the unchanged
/// HPM/HL error terms and the Table 4 demand conversion keep working on
/// request traffic while the queue keeps the headroom a bounded tail
/// needs.
pub fn openloop_family(name: &str, family: OpenLoopFamily, seed: u64) -> WorkloadSet {
    assert!(family.total_util > 0.0, "need positive utilization");
    assert!(
        family.total_util <= family.tasks as f64 * UTIL_CAP,
        "total_util {} infeasible under the {UTIL_CAP} per-task cap with {} tasks",
        family.total_util,
        family.tasks
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut utils = uunifast(&mut rng, family.tasks, family.total_util);
    cap_shares(&mut utils, UTIL_CAP);
    let template_rate = family.arrivals.mean_rate();
    let members = utils
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let demand = ProcessingUnits(u * TC2_LITTLE_CAPACITY.value());
            // Offered beat rate at this utilization share. The demand/PU
            // identity `d = hr · cpb / 1e6` then fixes cycles-per-beat.
            let beat_rate = (20.0 + 180.0 * u / family.total_util).max(1.0);
            let rate = ARRIVAL_HEADROOM * beat_rate / family.service_beats;
            let spec = BenchmarkSpec::custom(
                HeartRateRange::new(beat_rate * 0.95, beat_rate * 1.05),
                demand,
                1.8,
                vec![Phase::new(f64::MAX, 1.0)],
                None,
            );
            let ol = OpenLoopSpec::new(
                scale_arrivals(family.arrivals, rate / template_rate),
                seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1)),
                family.service_beats,
                family.weibull_shape,
                family.slo,
            )
            // ~10-20 s of memory at these arrival rates: long enough for a
            // stable p99, short enough that the startup transient ages out
            // and the pressure term tracks the current tail.
            .with_window(128);
            spec.with_open_loop(ol)
        })
        .collect();
    WorkloadSet::from_specs(name, members)
}

/// The Poisson template behind `ol1`: 4 tasks at 55 % of the LITTLE
/// cluster, 1-beat mean service (≈15 ms at the provisioned beat rates),
/// Weibull shape 1.5, 250 ms p99 SLO. At utilization
/// [`ARRIVAL_HEADROOM`] the M/G/1 p99 sojourn is ≈9× the mean service
/// time — ~140 ms — so the SLO holds at the nominal grant and the
/// pressure term is reserved for bursts and diurnal peaks.
pub fn poisson_template() -> OpenLoopFamily {
    OpenLoopFamily {
        tasks: 4,
        total_util: 0.55,
        arrivals: ArrivalKind::Poisson { rate: 1.0 },
        service_beats: 1.0,
        weibull_shape: 1.5,
        slo: SimDuration::from_millis(250),
    }
}

/// The bursty on/off template behind `ol2`. Public so scaled-out scenarios
/// (the fleet open-loop builder, the V64/C8/T16 acceptance cell) rebuild
/// the same traffic shape at other task counts and seeds.
pub fn bursty_template() -> OpenLoopFamily {
    OpenLoopFamily {
        arrivals: ArrivalKind::Bursty {
            base_rate: 0.7,
            burst_rate: 2.2,
            mean_on_s: 0.5,
            mean_off_s: 2.0,
        },
        ..poisson_template()
    }
}

/// The diurnal template behind `ol3`: a 60 s pseudo-day at depth 0.6.
pub fn diurnal_template() -> OpenLoopFamily {
    OpenLoopFamily {
        arrivals: ArrivalKind::Diurnal {
            volume: 60.0,
            period_s: 60.0,
            depth: 0.6,
        },
        ..poisson_template()
    }
}

/// The three named open-loop scenario families at the pinned seed:
/// `ol1` Poisson, `ol2` bursty on/off, `ol3` diurnal. Light–medium by
/// construction (55 % of the LITTLE cluster) so the market has headroom to
/// price the tail rather than saturate.
pub fn openloop_sets() -> Vec<WorkloadSet> {
    vec![
        openloop_family("ol1", poisson_template(), OpenLoopFamily::PINNED_SEED),
        openloop_family("ol2", bursty_template(), OpenLoopFamily::PINNED_SEED),
        openloop_family("ol3", diurnal_template(), OpenLoopFamily::PINNED_SEED),
    ]
}

/// Look an open-loop family set up by name (`openloop` aliases `ol1`).
pub fn openloop_set_by_name(name: &str) -> Option<WorkloadSet> {
    let name = if name == "openloop" { "ol1" } else { name };
    openloop_sets().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = ScalabilityWorkload::new(7);
        let mut b = ScalabilityWorkload::new(7);
        assert_eq!(a.tasks(32), b.tasks(32));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ScalabilityWorkload::new(1);
        let mut b = ScalabilityWorkload::new(2);
        assert_ne!(a.tasks(8), b.tasks(8));
    }

    #[test]
    fn values_stay_in_paper_ranges() {
        let mut g = ScalabilityWorkload::new(42);
        for t in g.tasks(1000) {
            assert!(t.demand.value() >= 10.0 && t.demand.value() <= 50.0);
            assert!(t.supply.value() >= 10.0 && t.supply.value() <= 50.0);
            assert!(t.priority >= 1 && t.priority <= 8);
            assert!(t.bid.value() > 0.0);
        }
    }

    #[test]
    fn cluster_supplies_bounded_by_max() {
        let mut g = ScalabilityWorkload::new(3);
        let sup = g.cluster_supplies(16, ProcessingUnits(3000.0));
        assert_eq!(sup.len(), 16);
        assert!(sup.iter().all(|s| s.value() <= 3000.0));
    }

    #[test]
    fn uunifast_sums_to_total_and_stays_positive() {
        for seed in [1u64, 7, 165] {
            let mut rng = StdRng::seed_from_u64(seed);
            let u = uunifast(&mut rng, 16, 0.8);
            assert_eq!(u.len(), 16);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.8).abs() < 1e-12, "sum {sum}");
            assert!(u.iter().all(|&x| x > 0.0 && x < 0.8));
        }
    }

    #[test]
    fn gamma_matches_known_values() {
        // Γ(n) = (n-1)!, Γ(1/2) = √π, Γ(1.5) = √π/2.
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn openloop_family_calibrates_total_demand() {
        let sets = openloop_sets();
        assert_eq!(sets.len(), 3);
        for s in &sets {
            assert_eq!(s.members().len(), 4, "{}", s.name());
            // UUniFast calibration: total demand is 55 % of LITTLE capacity.
            let total = s.total_little_demand().value();
            assert!(
                (total - 0.55 * TC2_LITTLE_CAPACITY.value()).abs() < 1e-6,
                "{}: {total}",
                s.name()
            );
            for m in s.members() {
                let ol = m.open_loop().expect("open-loop spec attached");
                // Offered beat throughput is the provisioned heart-rate
                // target times the capacity-planning margin, so the Table 4
                // conversion prices request traffic with bounded-tail
                // headroom built in.
                let hr = m.target_range().target();
                assert!((ol.target_beat_rate() - ARRIVAL_HEADROOM * hr).abs() / hr < 1e-9);
                // No share escapes the per-task cap: even a pressure-doubled
                // bid fits a single LITTLE core.
                let d = m
                    .profiled_demand(ppm_platform::core::CoreClass::Little)
                    .value();
                assert!(d <= UTIL_CAP * TC2_LITTLE_CAPACITY.value() + 1e-6, "{d}");
            }
        }
    }

    #[test]
    fn openloop_family_is_deterministic_and_seed_sensitive() {
        let fam = OpenLoopFamily {
            tasks: 6,
            total_util: 0.5,
            arrivals: ArrivalKind::Poisson { rate: 1.0 },
            service_beats: 4.0,
            weibull_shape: 1.5,
            slo: SimDuration::from_millis(100),
        };
        let a = openloop_family("x", fam, 9);
        let b = openloop_family("x", fam, 9);
        let c = openloop_family("x", fam, 10);
        let demands = |s: &WorkloadSet| -> Vec<f64> {
            s.members()
                .iter()
                .map(|m| {
                    m.profiled_demand(ppm_platform::core::CoreClass::Little)
                        .value()
                })
                .collect()
        };
        assert_eq!(demands(&a), demands(&b));
        assert_ne!(demands(&a), demands(&c));
    }

    #[test]
    fn openloop_lookup_and_alias() {
        assert_eq!(
            openloop_set_by_name("openloop").expect("alias").name(),
            "ol1"
        );
        assert!(openloop_set_by_name("ol2").is_some());
        assert!(openloop_set_by_name("ol9").is_none());
    }
}
