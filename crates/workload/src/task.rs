//! Runtime task instances.
//!
//! A [`Task`] is "a computational entity that can execute on a core" (§2).
//! It wraps a [`BenchmarkSpec`] with run-time state: the phase cursor, the
//! heartbeat monitor, and a user-assigned priority. The scheduler feeds it
//! cycles; it emits heartbeats and exposes the demand estimate the paper's
//! task agents consume.

use std::fmt;

use ppm_platform::core::CoreClass;
use ppm_platform::units::{Cycles, ProcessingUnits, SimTime};

use crate::benchmarks::BenchmarkSpec;
use crate::heartbeat::HeartbeatMonitor;
use crate::phase::PhaseSequence;
use crate::request::{OpenLoopSnap, OpenLoopState};

/// Identifier of a task, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// User-assigned task priority `r_t`; higher values mean higher priority.
///
/// The paper adds a `prio` member to Linux's `task_struct`, settable from
/// user space and fixed for the lifetime of the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// The default priority used when experiments equalise priorities.
    pub const NORMAL: Priority = Priority(1);

    /// Raw value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// A running task: benchmark spec + phase cursor + heartbeat telemetry.
#[derive(Debug, Clone)]
pub struct Task {
    id: TaskId,
    spec: BenchmarkSpec,
    priority: Priority,
    phases: PhaseSequence,
    monitor: HeartbeatMonitor,
    total_cycles: Cycles,
    /// Open-loop request state when the spec carries traffic (boxed: the
    /// common closed-loop task stays small).
    open_loop: Option<Box<OpenLoopState>>,
}

impl Task {
    /// Instantiate `spec` as task `id` with `priority`.
    pub fn new(id: TaskId, spec: BenchmarkSpec, priority: Priority) -> Task {
        let phases = spec.phase_sequence();
        let open_loop = spec.open_loop().map(|ol| Box::new(OpenLoopState::new(*ol)));
        Task {
            id,
            spec,
            priority,
            phases,
            monitor: HeartbeatMonitor::new(),
            total_cycles: Cycles::ZERO,
            open_loop,
        }
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The benchmark variant this task runs.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Human-readable label (`swaptions_n` style).
    pub fn label(&self) -> String {
        self.spec.label()
    }

    /// User priority `r_t`.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Heartbeats emitted so far.
    pub fn total_heartbeats(&self) -> f64 {
        self.monitor.total()
    }

    /// Cycles consumed so far.
    pub fn total_cycles(&self) -> Cycles {
        self.total_cycles
    }

    /// Current observed heart rate (hb/s) over the monitor window.
    pub fn heart_rate(&self) -> f64 {
        self.monitor.heart_rate()
    }

    /// Observed cycles-per-heartbeat over the monitor window, when enough
    /// beats have been seen — the raw signal online estimators consume.
    pub fn measured_cost_per_beat(&self) -> Option<f64> {
        self.monitor.cost_per_beat()
    }

    /// Effective cycles-per-heartbeat right now on `class` (nominal cost
    /// scaled by the current phase).
    pub fn current_cost(&self, class: CoreClass) -> f64 {
        self.spec.cycles_per_heartbeat(class) * self.phases.current().cost_scale
    }

    /// Fraction of its granted supply the task can consume in the current
    /// phase (`1.0` when fully CPU-bound).
    pub fn utilization_cap(&self) -> f64 {
        self.phases.current().utilization_cap
    }

    /// Most PU the task can consume on a core of `class` whose supply is
    /// `supply`: the phase utilization cap, further bounded by the input
    /// pipeline's rate ceiling for rate-limited applications.
    pub fn consumption_cap(&self, class: CoreClass, supply: ProcessingUnits) -> ProcessingUnits {
        let by_util = supply * self.utilization_cap();
        match self.spec.rate_cap() {
            Some(k) => by_util.min(self.analytic_demand(class) * k),
            None => by_util,
        }
    }

    /// Consume `cycles` of compute on a core of `class` ending at `now`.
    /// Returns the (possibly fractional) heartbeats completed.
    ///
    /// Walks phase boundaries so a cheap-phase tail and an expensive-phase
    /// head within one quantum are both priced correctly.
    pub fn execute(&mut self, cycles: Cycles, class: CoreClass, now: SimTime) -> f64 {
        if self.open_loop.is_some() {
            return self.execute_open_loop(cycles, class, now);
        }
        let mut remaining = cycles.value();
        let mut beats = 0.0;
        // Bounded: each iteration either exhausts the cycles or crosses one
        // phase boundary, and phases have positive length.
        for _ in 0..64 {
            if remaining <= 0.0 {
                break;
            }
            let cost = self.current_cost(class);
            let possible = remaining / cost;
            let left_in_phase = self.phases.remaining_in_current();
            if possible <= left_in_phase {
                self.phases.advance(possible);
                beats += possible;
                remaining = 0.0;
            } else {
                self.phases.advance(left_in_phase);
                beats += left_in_phase;
                remaining -= left_in_phase * cost;
            }
        }
        self.total_cycles += cycles;
        self.monitor.record(now, beats, cycles.value());
        beats
    }

    /// Open-loop variant of [`Task::execute`]: admit due arrivals, then
    /// serve queued requests through the same phase walk — but never run
    /// ahead of the queue, and only bill the cycles actually spent so the
    /// measured cost-per-beat stays honest under light traffic.
    fn execute_open_loop(&mut self, cycles: Cycles, class: CoreClass, now: SimTime) -> f64 {
        if let Some(ol) = &mut self.open_loop {
            ol.admit_until(now);
        }
        let work_cap = self.open_loop.as_ref().map_or(0.0, |ol| ol.queued_beats());
        let mut remaining = cycles.value();
        let mut beats = 0.0;
        for _ in 0..64 {
            if remaining <= 0.0 || beats >= work_cap {
                break;
            }
            let cost = self.current_cost(class);
            let possible = (remaining / cost).min(work_cap - beats);
            let left_in_phase = self.phases.remaining_in_current();
            if possible <= left_in_phase {
                self.phases.advance(possible);
                beats += possible;
                remaining -= possible * cost;
            } else {
                self.phases.advance(left_in_phase);
                beats += left_in_phase;
                remaining -= left_in_phase * cost;
            }
        }
        let used = (cycles.value() - remaining).max(0.0);
        if let Some(ol) = &mut self.open_loop {
            ol.serve(beats, now);
        }
        self.total_cycles += cycles;
        self.monitor.record(now, beats, used);
        beats
    }

    /// Record the passage of time without progress (starved or migrating),
    /// so the heart-rate window decays. Open-loop traffic keeps arriving
    /// while the task is starved — exactly the point of open-loop load.
    pub fn record_idle(&mut self, now: SimTime) {
        if let Some(ol) = &mut self.open_loop {
            ol.admit_until(now);
            ol.serve(0.0, now);
        }
        self.monitor.record(now, 0.0, 0.0);
    }

    /// The demand `d_t` in PU on `class` (Table 4 conversion).
    ///
    /// Uses the window-consistent form `d = target_hr · (cycles/beat) / 10⁶`
    /// — identical to the paper's `d = target_hr · s_t / hr_t` with supply
    /// and heart rate averaged over the same interval, and robust against
    /// supply changes mid-window. Falls back to the off-line profile while
    /// no reliable measurement exists (admission, starvation, migration).
    ///
    /// When the measurement was taken on a different core class than
    /// `class`, the profiled cost ratio rescales it.
    pub fn demand(&self, class: CoreClass, measured_on: CoreClass) -> ProcessingUnits {
        let base = 'base: {
            let profiled = self.spec.profiled_demand(class);
            let Some(cost) = self.monitor.cost_per_beat() else {
                break 'base profiled;
            };
            let scale =
                self.spec.cycles_per_heartbeat(class) / self.spec.cycles_per_heartbeat(measured_on);
            let d = ProcessingUnits(self.spec.target_range().target() * cost * scale / 1e6);
            d.min(self.max_reasonable_demand(class))
        };
        // Open-loop tasks bid tail latency into the market: demand scales
        // with the p99/SLO pressure ratio (clamped), so a task blowing its
        // SLO outbids one coasting far under it.
        match &self.open_loop {
            Some(ol) => base * ol.pressure(),
            None => base,
        }
    }

    /// Analytic demand on `class` for the *current* phase: the supply that
    /// would hold the task exactly at its target heart rate.
    pub fn analytic_demand(&self, class: CoreClass) -> ProcessingUnits {
        ProcessingUnits(self.spec.target_range().target() * self.current_cost(class) / 1e6)
    }

    /// Sanity ceiling on inferred demand (2× the most expensive phase):
    /// protects the market from transient division-by-small-heart-rate
    /// spikes right after admission or migration.
    fn max_reasonable_demand(&self, class: CoreClass) -> ProcessingUnits {
        let worst = self
            .spec
            .phases()
            .iter()
            .map(|p| p.cost_scale)
            .fold(1.0_f64, f64::max);
        ProcessingUnits(
            2.0 * worst * self.spec.target_range().target() * self.spec.cycles_per_heartbeat(class)
                / 1e6,
        )
    }

    /// True when the task misses its QoS goal: heart rate below the
    /// reference range (Figures 4 and 6) for closed-loop tasks, p99
    /// latency above the SLO for open-loop tasks (once enough completions
    /// exist to trust the tail).
    pub fn misses_qos(&self) -> bool {
        match &self.open_loop {
            Some(ol) => ol.monitor().completed() >= 20 && ol.monitor().misses_slo(),
            None => self.spec.target_range().misses_below(self.heart_rate()),
        }
    }

    /// Off-line-profiled demand on `class`, scaled by the SLO pressure for
    /// open-loop tasks: the per-class *planning* input the LBT speculates
    /// with. Without the pressure term the load balancer would plan from
    /// nominal demand while the market grants pressure-inflated bids — and
    /// never wake a big cluster for a task drowning in queued requests.
    /// Identical to the raw profile for closed-loop tasks.
    pub fn planning_demand(&self, class: CoreClass) -> ProcessingUnits {
        let base = self.spec.profiled_demand(class);
        match &self.open_loop {
            Some(ol) => base * ol.pressure(),
            None => base,
        }
    }

    /// Live open-loop state, when the spec carries request traffic.
    pub fn open_loop(&self) -> Option<&OpenLoopState> {
        self.open_loop.as_deref()
    }

    /// Copyable open-loop vitals for the system snapshot (`None` for
    /// closed-loop tasks, so existing snapshot digests are untouched).
    pub fn open_loop_snap(&self) -> Option<OpenLoopSnap> {
        self.open_loop.as_ref().map(|ol| ol.snap())
    }

    /// Heart rate normalised to the target (1.0 = exactly on target), as
    /// plotted in Figures 7 and 8.
    pub fn normalized_heart_rate(&self) -> f64 {
        self.heart_rate() / self.spec.target_range().target()
    }

    /// Clear heartbeat history (used across migrations, where the stale
    /// window no longer reflects the new core).
    pub fn reset_monitor_window(&mut self) {
        self.monitor.reset_window();
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.id, self.label(), self.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{Benchmark, Input};
    use ppm_platform::units::SimDuration;

    fn task(b: Benchmark, i: Input) -> Task {
        Task::new(
            TaskId(0),
            BenchmarkSpec::of(b, i).expect("valid variant"),
            Priority::NORMAL,
        )
    }

    #[test]
    fn executing_at_demand_supply_hits_target_rate() {
        let mut t = task(Benchmark::Blackscholes, Input::Native);
        // Supply exactly the profiled demand: 500 PU on LITTLE.
        let supply = t.spec().profiled_demand(CoreClass::Little);
        let dt = SimDuration::from_millis(10);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += dt;
            t.execute(supply.cycles_over(dt), CoreClass::Little, now);
        }
        // Steady benchmark: rate should sit at the target (20 hb/s).
        assert!((t.heart_rate() - 20.0).abs() < 0.2, "hr={}", t.heart_rate());
        assert!(!t.misses_qos());
        assert!((t.normalized_heart_rate() - 1.0).abs() < 0.02);
    }

    #[test]
    fn half_supply_halves_heart_rate() {
        let mut t = task(Benchmark::Blackscholes, Input::Native);
        let supply = t.spec().profiled_demand(CoreClass::Little) * 0.5;
        let dt = SimDuration::from_millis(10);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += dt;
            t.execute(supply.cycles_over(dt), CoreClass::Little, now);
        }
        assert!((t.heart_rate() - 10.0).abs() < 0.2);
        assert!(t.misses_qos());
    }

    #[test]
    fn same_supply_runs_faster_on_big_core() {
        let mut little = task(Benchmark::Swaptions, Input::Native);
        let mut big = task(Benchmark::Swaptions, Input::Native);
        let supply = ProcessingUnits(400.0);
        let dt = SimDuration::from_millis(10);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += dt;
            little.execute(supply.cycles_over(dt), CoreClass::Little, now);
            big.execute(supply.cycles_over(dt), CoreClass::Big, now);
        }
        let ratio = big.heart_rate() / little.heart_rate();
        assert!((ratio - 1.9).abs() < 0.05, "speedup {ratio}");
    }

    #[test]
    fn demand_inference_converges_to_analytic() {
        let mut t = task(Benchmark::Bodytrack, Input::Large);
        let supply = ProcessingUnits(300.0); // below its ~400 PU demand
        let dt = SimDuration::from_millis(10);
        let mut now = SimTime::ZERO;
        for _ in 0..300 {
            now += dt;
            t.execute(supply.cycles_over(dt), CoreClass::Little, now);
        }
        let inferred = t.demand(CoreClass::Little, CoreClass::Little);
        let analytic = t.analytic_demand(CoreClass::Little);
        let rel = (inferred.value() - analytic.value()).abs() / analytic.value();
        assert!(rel < 0.1, "inferred {inferred} vs analytic {analytic}");
    }

    #[test]
    fn demand_before_any_observation_uses_profile() {
        let t = task(Benchmark::Texture, Input::FullHd);
        let d = t.demand(CoreClass::Little, CoreClass::Little);
        assert_eq!(d, t.spec().profiled_demand(CoreClass::Little));
    }

    #[test]
    fn demand_is_capped_against_spikes() {
        let mut t = task(Benchmark::Blackscholes, Input::Large);
        // Observe an absurdly low rate: one beat over a long stretch.
        t.execute(Cycles(1.0), CoreClass::Little, SimTime::from_millis(1));
        t.record_idle(SimTime::from_secs(10));
        let d = t.demand(CoreClass::Little, CoreClass::Little);
        let cap = ProcessingUnits(2.0 * 200.0); // 2x worst-phase demand
        assert!(d <= cap, "demand {d} exceeds cap {cap}");
    }

    #[test]
    fn open_loop_task_keeps_up_given_enough_supply() {
        let mut t = open_loop_task();
        // The 500 PU profiled demand only matches the *mean* offered load;
        // holding a p99 needs queueing headroom well above it (the Weibull
        // service tail alone stretches a 40 ms mean request past 120 ms).
        let supply = ProcessingUnits(2500.0);
        let dt = SimDuration::from_millis(1);
        let mut now = SimTime::ZERO;
        for _ in 0..5000 {
            now += dt;
            t.execute(supply.cycles_over(dt), CoreClass::Little, now);
        }
        let ol = t.open_loop().expect("open-loop state");
        assert!(ol.served() > 100, "served {}", ol.served());
        assert_eq!(ol.shed_total(), 0);
        assert!(!t.misses_qos(), "{}", ol.monitor());
        // Arrival-bound: the beat throughput tracks λ·service_beats
        // (100 hb/s ± Poisson window noise), far below what 2500 PU of
        // supply could sustain on a closed loop (500 hb/s).
        assert!(
            t.heart_rate() > 50.0 && t.heart_rate() < 160.0,
            "hr {}",
            t.heart_rate()
        );
        let snap = t.open_loop_snap().expect("snap");
        assert!(snap.p99_ms < snap.slo_ms);
    }

    #[test]
    fn starved_open_loop_task_sheds_and_bids_up() {
        let mut t = open_loop_task();
        let supply = ProcessingUnits(100.0); // a fifth of the offered load
        let dt = SimDuration::from_millis(1);
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            now += dt;
            t.execute(supply.cycles_over(dt), CoreClass::Little, now);
        }
        let ol = t.open_loop().expect("open-loop state");
        assert!(ol.shed_total() > 0, "saturated queue must shed");
        assert!(t.misses_qos(), "{}", ol.monitor());
        // SLO pressure doubles the bid relative to the closed-loop demand.
        let closed = Task::new(TaskId(9), t.spec().clone(), Priority::NORMAL);
        let base = closed.demand(CoreClass::Little, CoreClass::Little);
        let d = t.demand(CoreClass::Little, CoreClass::Little);
        assert!(d > base, "pressured {d} vs base {base}");
    }

    fn open_loop_task() -> Task {
        use crate::arrivals::ArrivalKind;
        use crate::phase::Phase;
        use crate::request::OpenLoopSpec;
        let ol = OpenLoopSpec::new(
            ArrivalKind::Poisson { rate: 25.0 },
            7,
            4.0,
            1.5,
            SimDuration::from_millis(100),
        );
        let spec = BenchmarkSpec::custom(
            crate::heartbeat::HeartRateRange::new(95.0, 105.0),
            ProcessingUnits(500.0),
            1.8,
            vec![Phase::new(f64::MAX, 1.0)],
            None,
        )
        .with_open_loop(ol);
        Task::new(TaskId(0), spec, Priority::NORMAL)
    }

    #[test]
    fn phase_crossing_prices_cycles_correctly() {
        // Two phases: 10 beats at 1x, then 1e9 beats at 2x cost.
        // Give exactly the cycles for 10 + 5 beats.
        let mut t = task(Benchmark::X264, Input::Large); // dormant 0.45x, active 1.11x
        let cpb = t.spec().cycles_per_heartbeat(CoreClass::Little);
        let dormant_beats = t.spec().phases()[0].heartbeats;
        let cycles_dormant = dormant_beats * cpb * 0.45;
        let cycles_active_5 = 5.0 * cpb * 1.11;
        let beats = t.execute(
            Cycles(cycles_dormant + cycles_active_5),
            CoreClass::Little,
            SimTime::from_millis(1),
        );
        assert!((beats - (dormant_beats + 5.0)).abs() < 1e-6);
    }
}
